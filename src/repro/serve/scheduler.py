"""The asyncio job scheduler behind ``repro.serve``.

Clients ``submit()`` :class:`~repro.api.RunSpec` descriptions and get
back job ids; a bounded pool of workers executes the queue through the
same :func:`repro.api.run` / :func:`repro.api.run_batch` facade a direct
caller would use, so a served result is bit-identical to a local one.
Three mechanisms turn a duplicate-heavy client load into far fewer
solver executions:

- **completed dedup** — a submission whose fingerprint
  (:func:`repro.api.spec_fingerprint`) is already in the
  content-addressed :class:`~repro.serve.cache.ResultCache` completes
  immediately with the cached result;
- **in-flight dedup** — a submission matching a queued or running job
  joins it as a *follower*: one execution, many futures resolved;
- **coalescing** — a worker taking a queued job scans the rest of the
  queue for batch-compatible specs (:func:`repro.api.batch_compatible`)
  and executes up to ``coalesce`` of them as one stacked ensemble via
  :func:`repro.api.run_batch`.

Failure handling: a worker whose execution dies (an
:class:`~repro.ckpt.InjectedFault`, a crashed rank, any exception)
retries the job up to ``retries`` times, resuming from the last good
:mod:`repro.ckpt` generation when the spec (or the environment) carries
a checkpoint store — the fault plan is dropped on the retry, modelling a
transient worker death.  Only when the budget is exhausted does the
client see a :class:`JobFailed`.

Cancellation: cancelling a follower never touches its siblings; the
primary execution proceeds while any member job still wants the result.
Cancelling the *last* queued member drops the entry from the queue;
a running execution is never interrupted (its result is still cached).

Determinism: job ids are sequence numbers, cache keys are content
hashes, and the only clock used is ``time.perf_counter`` for latency
metrics — nothing in the scheduler consults ambient entropy (REP003).
"""

from __future__ import annotations

import asyncio
import dataclasses
import enum
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import repro.config as config_mod
from repro.api import (
    RunResult,
    RunSpec,
    batch_compatible,
    batch_exclusion_reason,
    run,
    run_batch,
    spec_fingerprint,
)
from repro.obs.observer import NULL_OBSERVER, ObserverLike, resolve_observer
from repro.serve.cache import ResultCache

__all__ = [
    "JobCancelled",
    "JobFailed",
    "JobState",
    "JobStatus",
    "Scheduler",
    "serve_many",
]


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class JobFailed(RuntimeError):
    """The job's execution failed after exhausting the retry budget."""

    def __init__(self, job_id: str, error: str):
        super().__init__(f"{job_id} failed: {error}")
        self.job_id = job_id
        self.error = error


class JobCancelled(RuntimeError):
    """The awaited job was cancelled before completing."""

    def __init__(self, job_id: str):
        super().__init__(f"{job_id} was cancelled")
        self.job_id = job_id


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time snapshot of one submission."""

    job_id: str
    state: JobState
    key: str
    #: This submission reused existing work: a cached result or an
    #: in-flight sibling.
    deduped: bool
    #: Execution attempts so far for the entry backing this job (0 while
    #: queued; > 1 means the retry path fired).
    attempts: int
    error: str | None = None


@dataclass
class _Entry:
    """One unit of executable work — all jobs sharing a fingerprint."""

    key: str
    spec: RunSpec
    coalescible: bool
    jobs: list["_Job"] = field(default_factory=list)
    state: JobState = JobState.QUEUED
    attempts: int = 0
    result: RunResult | None = None
    error: str | None = None


@dataclass
class _Job:
    id: str
    spec: RunSpec
    future: asyncio.Future
    submitted_at: float
    entry: _Entry | None = None
    deduped: bool = False
    state: JobState = JobState.QUEUED


def _retrieve_quietly(future: asyncio.Future) -> None:
    """Done callback marking failures as observed, so jobs whose clients
    never call ``result()`` do not trigger the event loop's
    "exception was never retrieved" warning."""
    if not future.cancelled():
        future.exception()


class Scheduler:
    """Bounded-worker asyncio scheduler over the ``repro.api`` facade.

    Parameters left ``None`` fall back to the ``REPRO_SERVE_*``
    environment family (:mod:`repro.config`): ``workers`` ←
    ``REPRO_SERVE_WORKERS``, ``coalesce`` ← ``REPRO_SERVE_COALESCE``,
    ``retries`` ← ``REPRO_SERVE_RETRIES`` and the default cache capacity
    ← ``REPRO_SERVE_CACHE``.

    Use as an async context manager::

        async with Scheduler(workers=2) as sched:
            job = await sched.submit(spec)
            result = await sched.result(job)
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        coalesce: int | None = None,
        retries: int | None = None,
        cache: ResultCache | None = None,
        observer: ObserverLike = NULL_OBSERVER,
        check_every: int = 0,
        tol: float = 0.0,
    ):
        env = config_mod.from_env()
        self.workers = env.serve_workers if workers is None else workers
        self.coalesce = env.serve_coalesce if coalesce is None else coalesce
        self.retries = env.serve_retries if retries is None else retries
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.coalesce < 1:
            raise ValueError(f"coalesce must be >= 1, got {self.coalesce}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        self.check_every = check_every
        self.tol = tol
        self._obs = resolve_observer(observer)
        self.cache = (
            cache
            if cache is not None
            else ResultCache(env.serve_cache, observer=self._obs)
        )
        self._jobs: dict[str, _Job] = {}
        self._inflight: dict[str, _Entry] = {}
        self._pending: deque[_Entry] = deque()
        self._tokens: asyncio.Queue[None] = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._seq = 0
        self._closed = False
        #: Entries actually executed (primary work units, not
        #: submissions) — the denominator of the dedup ratio.
        self.executions = 0
        #: Submissions that joined an in-flight entry instead of
        #: queueing new work (the second dedup channel next to
        #: ``cache.hits``).
        self.dedup_joins = 0

    # ---------------------------------------------------------- lifecycle
    async def __aenter__(self) -> "Scheduler":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close(drain=all(e is None for e in exc))

    async def start(self) -> None:
        """Launch the worker pool (idempotent)."""
        if self._tasks:
            return
        self._closed = False
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]

    async def close(self, *, drain: bool = True) -> None:
        """Stop the pool; with *drain* (default) finish queued work
        first, otherwise abandon it."""
        if drain:
            await self.join()
        self._closed = True
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    async def join(self) -> None:
        """Wait until every submitted job reached a terminal state."""
        while True:
            futures = [
                j.future for j in self._jobs.values() if not j.future.done()
            ]
            if not futures:
                return
            await asyncio.gather(*futures, return_exceptions=True)

    # -------------------------------------------------------------- client
    async def submit(self, spec: RunSpec) -> str:
        """Register *spec* and return its job id.

        Content-addressed admission: a fingerprint already completed is
        answered from the cache; one in flight is joined as a follower;
        anything else becomes a new queue entry.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        if not isinstance(spec, RunSpec):
            raise TypeError(f"submit() takes a RunSpec, got {type(spec)!r}")
        key = spec_fingerprint(spec)
        job_id = f"job-{self._seq:06d}"
        self._seq += 1
        future = asyncio.get_running_loop().create_future()
        future.add_done_callback(_retrieve_quietly)
        job = _Job(
            id=job_id,
            spec=spec,
            future=future,
            submitted_at=time.perf_counter(),
        )
        self._jobs[job_id] = job
        if self._obs.enabled:
            self._obs.counter("serve.jobs.submitted").add()
            self._obs.emit("job", job=job_id, state="queued", key=key[:12])

        cached = self.cache.get(key)
        if cached is not None:
            job.deduped = True
            self._complete_job(job, cached, cache_hit=True)
            return job_id

        entry = self._inflight.get(key)
        if entry is not None:
            job.entry = entry
            job.deduped = True
            job.state = entry.state
            entry.jobs.append(job)
            self.dedup_joins += 1
            if self._obs.enabled:
                self._obs.counter("serve.dedup.joined").add()
            return job_id

        overlaid = config_mod.from_env().overlay(spec)
        entry = _Entry(
            key=key,
            spec=spec,
            coalescible=batch_exclusion_reason(
                overlaid, overlaid.resolved_config()
            )
            is None,
        )
        entry.jobs.append(job)
        job.entry = entry
        self._inflight[key] = entry
        self._pending.append(entry)
        self._tokens.put_nowait(None)
        if self._obs.enabled:
            self._obs.gauge("serve.queue.depth").set(len(self._pending))
        return job_id

    def status(self, job_id: str) -> JobStatus:
        job = self._job(job_id)
        entry = job.entry
        return JobStatus(
            job_id=job.id,
            state=job.state,
            key=entry.key if entry is not None else spec_fingerprint(job.spec),
            deduped=job.deduped,
            attempts=entry.attempts if entry is not None else 0,
            error=entry.error if entry is not None else None,
        )

    async def result(self, job_id: str) -> RunResult:
        """Await the job's :class:`~repro.api.RunResult`.

        Raises :class:`JobFailed` when the retry budget ran out and
        :class:`JobCancelled` when the job was cancelled.
        """
        job = self._job(job_id)
        try:
            return await asyncio.shield(job.future)
        except asyncio.CancelledError:
            if job.future.cancelled():
                raise JobCancelled(job_id) from None
            raise

    def cancel(self, job_id: str) -> bool:
        """Cancel one submission; returns ``False`` once terminal.

        Sibling jobs deduplicated onto the same entry are unaffected;
        the underlying execution is only dropped when this was the last
        member of a still-queued entry.
        """
        job = self._job(job_id)
        if job.state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED):
            return False
        job.state = JobState.CANCELLED
        job.future.cancel()
        if self._obs.enabled:
            self._obs.counter("serve.jobs.cancelled").add()
            self._obs.emit("job", job=job_id, state="cancelled")
        entry = job.entry
        if entry is not None:
            if job in entry.jobs:
                entry.jobs.remove(job)
            if not entry.jobs and entry.state is JobState.QUEUED:
                entry.state = JobState.CANCELLED
                self._inflight.pop(entry.key, None)
                try:
                    self._pending.remove(entry)
                except ValueError:
                    pass
                if self._obs.enabled:
                    self._obs.gauge("serve.queue.depth").set(
                        len(self._pending)
                    )
        return True

    # ------------------------------------------------------------- workers
    async def _worker(self) -> None:
        while True:
            await self._tokens.get()
            batch = self._take_batch()
            if not batch:
                continue
            for entry in batch:
                entry.state = JobState.RUNNING
                for job in entry.jobs:
                    job.state = JobState.RUNNING
                if self._obs.enabled:
                    self._obs.emit(
                        "job_batch" if len(batch) > 1 else "job_exec",
                        key=entry.key[:12],
                        jobs=len(entry.jobs),
                        width=len(batch),
                    )
            # Counted on the event loop, not in the thread, so
            # concurrent workers never race the tally.
            self.executions += len(batch)
            outcomes = await asyncio.to_thread(self._execute, batch)
            for entry, outcome in zip(batch, outcomes):
                self._finish(entry, outcome)

    def _take_batch(self) -> list[_Entry]:
        """Pop the oldest queued entry plus up to ``coalesce - 1``
        batch-compatible companions (single-threaded: runs on the event
        loop only)."""
        primary: _Entry | None = None
        while self._pending:
            candidate = self._pending.popleft()
            if candidate.state is JobState.QUEUED:
                primary = candidate
                break
        if primary is None:
            return []
        batch = [primary]
        if primary.coalescible and self.coalesce > 1:
            kept: deque[_Entry] = deque()
            while self._pending and len(batch) < self.coalesce:
                candidate = self._pending.popleft()
                if (
                    candidate.state is JobState.QUEUED
                    and candidate.coalescible
                    and batch_compatible(primary.spec, candidate.spec)
                ):
                    batch.append(candidate)
                else:
                    kept.append(candidate)
            while kept:
                self._pending.appendleft(kept.pop())
        if self._obs.enabled:
            self._obs.gauge("serve.queue.depth").set(len(self._pending))
            if len(batch) > 1:
                self._obs.counter("serve.coalesced").add(len(batch))
        return batch

    # ------------------------------------------------------ thread section
    def _execute(self, batch: list[_Entry]) -> list[Any]:
        """Run a batch in the worker thread; one outcome (result or
        exception) per entry, never raising itself."""
        if len(batch) > 1:
            try:
                return list(
                    run_batch(
                        [entry.spec for entry in batch],
                        check_every=self.check_every,
                        tol=self.tol,
                    )
                )
            except Exception:
                # A whole-batch failure falls back to per-entry
                # execution so one poisoned spec cannot fail its
                # coalesced neighbours.
                pass
        outcomes: list[Any] = []
        for entry in batch:
            try:
                outcomes.append(self._run_one(entry))
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    def _run_one(self, entry: _Entry) -> RunResult:
        """Execute one entry with the bounded retry budget: a failed
        attempt resumes from the last good checkpoint generation (the
        fault plan is dropped — the death was the worker's, not the
        physics')."""
        spec = entry.spec
        for attempt in range(self.retries + 1):
            entry.attempts = attempt + 1
            try:
                return run(spec)
            except Exception:
                if attempt >= self.retries or not _resumable(spec):
                    raise
                if self._obs.enabled:
                    self._obs.counter("serve.jobs.retried").add()
                spec = dataclasses.replace(spec, resume=True, faults=None)
        raise AssertionError("unreachable")  # pragma: no cover

    # --------------------------------------------------------- completion
    def _finish(self, entry: _Entry, outcome: Any) -> None:
        self._inflight.pop(entry.key, None)
        if isinstance(outcome, BaseException):
            entry.state = JobState.FAILED
            entry.error = f"{type(outcome).__name__}: {outcome}"
            for job in entry.jobs:
                if job.future.done():
                    continue
                job.state = JobState.FAILED
                job.future.set_exception(JobFailed(job.id, entry.error))
                if self._obs.enabled:
                    self._obs.counter("serve.jobs.failed").add()
                    self._obs.emit(
                        "job", job=job.id, state="failed", error=entry.error
                    )
            return
        entry.state = JobState.DONE
        entry.result = outcome
        self.cache.put(entry.key, outcome)
        for job in entry.jobs:
            self._complete_job(job, outcome, cache_hit=False)

    def _complete_job(
        self, job: _Job, result: RunResult, *, cache_hit: bool
    ) -> None:
        if job.future.done():
            return
        job.state = JobState.DONE
        job.future.set_result(result)
        if self._obs.enabled:
            self._obs.counter("serve.jobs.completed").add()
            self._obs.histogram("serve.job.latency").observe(
                time.perf_counter() - job.submitted_at
            )
            self._obs.emit(
                "job", job=job.id, state="done", cache=cache_hit
            )

    # ------------------------------------------------------------ plumbing
    def _job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return job

    @property
    def submissions(self) -> int:
        """Total jobs submitted so far."""
        return self._seq

    def dedup_ratio(self) -> float:
        """Fraction of submissions that did not trigger an execution."""
        submitted = self._seq
        if not submitted:
            return 0.0
        return 1.0 - min(self.executions, submitted) / submitted

    def hit_rate(self) -> float:
        """Fraction of submissions served without new work: completed
        cache hits plus in-flight dedup joins, over all submissions."""
        submitted = self._seq
        if not submitted:
            return 0.0
        return (self.cache.hits + self.dedup_joins) / submitted


def _resumable(spec: RunSpec) -> bool:
    """Whether a retry can resume: the spec (or the environment) carries
    a checkpoint store to restart from."""
    return (
        spec.checkpoint_store is not None
        or spec.checkpoint_dir is not None
        or config_mod.from_env().ckpt_dir is not None
    )


def serve_many(
    specs: list[RunSpec] | tuple[RunSpec, ...],
    *,
    workers: int | None = None,
    coalesce: int | None = None,
    retries: int | None = None,
    observer: ObserverLike = NULL_OBSERVER,
) -> list[RunResult]:
    """Synchronous convenience: run *specs* through a scheduler and
    return their results in input order (the blocking counterpart of
    the async client API, used by the CLI and the benchmark)."""

    async def _main() -> list[RunResult]:
        async with Scheduler(
            workers=workers,
            coalesce=coalesce,
            retries=retries,
            observer=observer,
        ) as sched:
            ids = [await sched.submit(spec) for spec in specs]
            return [await sched.result(job_id) for job_id in ids]

    return asyncio.run(_main())
