"""repro.serve — simulation-as-a-service over the ``repro.api`` facade.

A persistent :class:`Scheduler` accepts :class:`~repro.api.RunSpec`
submissions (``submit`` → job id, ``status`` / ``result`` / ``cancel``),
executes them on a bounded worker pool through
:func:`repro.api.run` / :func:`repro.api.run_batch` (coalescing
batch-compatible queued specs into stacked ensembles), deduplicates
identical physics through a content-addressed :class:`ResultCache`
keyed on :func:`repro.api.spec_fingerprint`, streams job lifecycle
events through :mod:`repro.obs`, and survives worker death by resuming
from the last :mod:`repro.ckpt` generation within a bounded retry
budget.

Quickstart::

    from repro.api import RunSpec
    from repro.serve import Scheduler

    async with Scheduler(workers=2) as sched:
        job = await sched.submit(RunSpec(config=cfg, phases=500))
        print(sched.status(job).state)
        result = await sched.result(job)

``python -m repro.serve`` runs the synthetic client-load benchmark (see
:mod:`repro.serve.bench` and ``BENCH_serve.json``); knob defaults come
from the ``REPRO_SERVE_*`` environment family (:mod:`repro.config`).
"""

from repro.serve.cache import ResultCache
from repro.serve.scheduler import (
    JobCancelled,
    JobFailed,
    JobState,
    JobStatus,
    Scheduler,
    serve_many,
)

__all__ = [
    "JobCancelled",
    "JobFailed",
    "JobState",
    "JobStatus",
    "ResultCache",
    "Scheduler",
    "serve_many",
]
