"""Content-addressed result cache.

Completed :class:`~repro.api.RunResult` objects are stored under the
spec fingerprint (:func:`repro.api.spec_fingerprint`) — a SHA-256 over
the canonical physics document plus the phase target.  Two submissions
whose specs differ only in execution knobs (rank count, transport,
remapping policy, observability) address the same entry, because the
transports and kernel backends are bit-identical by contract: the cached
populations *are* the answer either spec would have produced.

The cache is bounded (``capacity`` entries, least-recently-used
eviction) and instrumented: ``serve.cache.hit`` / ``serve.cache.miss`` /
``serve.cache.evict`` counters plus a ``serve.cache.size`` gauge on the
observer the scheduler shares with it.  Capacity 0 disables caching
entirely (every lookup misses, nothing is stored) — the scheduler then
still deduplicates *in-flight* work, it just re-executes repeats that
arrive after completion.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.obs.observer import NULL_OBSERVER, ObserverLike, resolve_observer


class ResultCache:
    """LRU map ``fingerprint -> RunResult`` with hit/miss accounting."""

    def __init__(
        self,
        capacity: int = 1024,
        *,
        observer: ObserverLike = NULL_OBSERVER,
    ):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._obs = resolve_observer(observer)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any | None:
        """The cached result for *key*, or ``None`` — counting the
        lookup either way and refreshing recency on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if self._obs.enabled:
                self._obs.counter("serve.cache.miss").add()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self._obs.enabled:
            self._obs.counter("serve.cache.hit").add()
        return entry

    def put(self, key: str, result: Any) -> None:
        """Store *result* under *key*, evicting the least recently used
        entry when full (no-op at capacity 0)."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if self._obs.enabled:
                self._obs.counter("serve.cache.evict").add()
        if self._obs.enabled:
            self._obs.gauge("serve.cache.size").set(len(self._entries))

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
