"""``python -m repro.serve`` — drive the scheduler with a synthetic
client load and print the service-level numbers.

    python -m repro.serve --jobs 64 --duplicates 0.9 --workers 2
    python -m repro.serve --json BENCH_serve.json   # full fraction sweep
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.bench import (
    DUPLICATE_FRACTIONS,
    benchmark_serve,
    make_workload,
    run_load,
    sequential_baseline,
    write_bench,
)
from repro.util.tables import format_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Synthetic client load against the job scheduler.",
    )
    parser.add_argument("--jobs", type=int, default=64)
    parser.add_argument(
        "--duplicates",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "duplicate fraction of the stream (default: sweep "
            f"{DUPLICATE_FRACTIONS})"
        ),
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--coalesce", type=int, default=8)
    parser.add_argument("--phases", type=int, default=6)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="also time naive sequential submission for comparison",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the BENCH_serve.json payload (full fraction sweep)",
    )
    args = parser.parse_args(argv)

    if args.json is not None:
        payload = benchmark_serve(
            n_jobs=args.jobs,
            clients=args.clients,
            workers=args.workers,
            coalesce=args.coalesce,
            phases=args.phases,
            seed=args.seed,
        )
        write_bench(payload, args.json)
        print(f"wrote {args.json}")
        fractions = payload["serve"]["duplicates"]
        rows = [
            (
                frac,
                v["jobs_per_second"],
                v["sequential_jobs_per_second"],
                v["speedup_vs_sequential"],
                v["cache_hit_rate"],
                v["dedup_ratio"],
            )
            for frac, v in sorted(fractions.items())
        ]
        print(
            format_table(
                ["dup", "served jobs/s", "sequential jobs/s", "speedup",
                 "hit rate", "dedup"],
                rows,
                title="-- serve benchmark sweep --",
            )
        )
        return 0

    fractions = (
        (args.duplicates,) if args.duplicates is not None
        else DUPLICATE_FRACTIONS
    )
    rows = []
    for fraction in fractions:
        specs = make_workload(
            args.jobs, fraction, seed=args.seed, phases=args.phases
        )
        report, _ = run_load(
            specs,
            clients=args.clients,
            workers=args.workers,
            coalesce=args.coalesce,
            duplicate_fraction=fraction,
        )
        row = list(report.row())
        if args.baseline:
            seq_jps, _ = sequential_baseline(specs)
            row.append(report.jobs_per_second / seq_jps)
        rows.append(tuple(row))
    headers = [
        "dup", "jobs", "execs", "jobs/s", "p50 (ms)", "p99 (ms)",
        "hit rate", "dedup",
    ]
    if args.baseline:
        headers.append("speedup vs seq")
    print(
        format_table(
            headers,
            rows,
            title=(
                f"-- serve load: {args.clients} clients, "
                f"{args.workers} workers, coalesce {args.coalesce} --"
            ),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
