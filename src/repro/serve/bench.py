"""Synthetic client load for the scheduler, and its benchmark payload.

The workload models the related-work parameter studies (rough walls,
patterned slip): hundreds of near-duplicate specs differing in a few
scalars.  :func:`make_workload` draws a stream of small microchannel
specs in which a configurable fraction are exact duplicates;
:func:`run_load` fires them at a :class:`~repro.serve.Scheduler` from
many concurrent async clients and measures sustained jobs/sec, latency
percentiles, cache hit-rate and dedup ratio; :func:`sequential_baseline`
times the naive alternative — every submission executed by a direct
:func:`repro.api.run` call, no dedup, no cache.  :func:`benchmark_serve`
sweeps duplicate fractions and assembles the ``BENCH_serve.json``
payload shared by the ``fig-serve`` experiment, the benchmark suite and
the ``python -m repro.serve`` CLI.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.api import RunSpec, run
from repro.ckpt.io import atomic_write_json
from repro.lbm.components import ComponentSpec
from repro.lbm.forces import WallForceSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9
from repro.lbm.solver import LBMConfig
from repro.obs.observer import NULL_OBSERVER, ObserverLike
from repro.serve.scheduler import Scheduler
from repro.util.rng import make_rng

#: Default benchmark shape/phase budget: small enough that one unique
#: spec completes in tens of milliseconds, so the scheduling overhead is
#: visible rather than drowned by solver time.
DEFAULT_SHAPE = (12, 18)
DEFAULT_PHASES = 6

#: The duplicate fractions the benchmark sweeps.
DUPLICATE_FRACTIONS = (0.0, 0.5, 0.9)


def base_config(shape: tuple[int, int] = DEFAULT_SHAPE) -> LBMConfig:
    """The water/air microchannel every workload spec varies from."""
    return LBMConfig(
        geometry=ChannelGeometry(shape=shape, wall_axes=(1,)),
        components=(
            ComponentSpec("water", tau=1.0, rho_init=1.0),
            ComponentSpec("air", tau=1.0, rho_init=0.03),
        ),
        g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
        lattice=D2Q9,
        wall_force=WallForceSpec(amplitude=0.05, decay_length=2.0),
        body_acceleration=(1e-6, 0.0),
    )


def make_workload(
    n_jobs: int,
    duplicate_fraction: float,
    *,
    seed: int = 1234,
    phases: int = DEFAULT_PHASES,
    shape: tuple[int, int] = DEFAULT_SHAPE,
) -> list[RunSpec]:
    """A deterministic stream of *n_jobs* specs in which roughly
    *duplicate_fraction* of the submissions repeat an earlier spec.

    Unique specs sweep the hydrophobicity amplitude (the patterned-slip
    client shape); duplicates are drawn uniformly from the uniques
    already emitted, interleaved the way independent clients would
    submit them.
    """
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError(
            f"duplicate_fraction must be in [0, 1], got {duplicate_fraction}"
        )
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    rng = make_rng(seed)
    cfg = base_config(shape)
    n_unique = max(1, round(n_jobs * (1.0 - duplicate_fraction)))
    amplitudes = 0.02 + 0.08 * rng.random(n_unique)
    uniques = [
        RunSpec(
            config=dataclasses.replace(
                cfg,
                wall_force=dataclasses.replace(
                    cfg.wall_force, amplitude=float(a)
                ),
            ),
            phases=phases,
        )
        for a in amplitudes
    ]
    specs = list(uniques)
    while len(specs) < n_jobs:
        specs.append(uniques[int(rng.integers(len(uniques)))])
    order = rng.permutation(len(specs))
    return [specs[i] for i in order]


@dataclass
class LoadReport:
    """What one served client load measured."""

    n_jobs: int
    duplicate_fraction: float
    clients: int
    workers: int
    coalesce: int
    wall_seconds: float
    jobs_per_second: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    cache_hit_rate: float
    dedup_ratio: float
    executions: int

    def row(self) -> tuple:
        return (
            f"{self.duplicate_fraction:.1f}",
            self.n_jobs,
            self.executions,
            self.jobs_per_second,
            1e3 * self.p50_latency_seconds,
            1e3 * self.p99_latency_seconds,
            self.cache_hit_rate,
            self.dedup_ratio,
        )


async def _client(
    sched: Scheduler,
    specs: list[RunSpec],
    latencies: list[float],
) -> list[Any]:
    """One async client: submit its slice, await every result, record
    per-job latency."""
    results = []
    for spec in specs:
        start = time.perf_counter()
        job_id = await sched.submit(spec)
        result = await sched.result(job_id)
        latencies.append(time.perf_counter() - start)
        results.append(result)
    return results


async def _run_load_async(
    specs: list[RunSpec],
    *,
    clients: int,
    workers: int,
    coalesce: int,
    observer: ObserverLike,
) -> tuple[list[Any], list[float], dict[str, float]]:
    latencies: list[float] = []
    async with Scheduler(
        workers=workers, coalesce=coalesce, observer=observer
    ) as sched:
        slices = [specs[i::clients] for i in range(clients)]
        gathered = await asyncio.gather(
            *(_client(sched, s, latencies) for s in slices)
        )
        # Reassemble input order from the round-robin slicing.
        results: list[Any] = [None] * len(specs)
        for c, chunk in enumerate(gathered):
            for j, result in enumerate(chunk):
                results[c + j * clients] = result
        stats = {
            "hit_rate": sched.hit_rate(),
            "dedup_ratio": sched.dedup_ratio(),
            "executions": float(sched.executions),
        }
    return results, latencies, stats


def run_load(
    specs: list[RunSpec],
    *,
    clients: int = 8,
    workers: int = 2,
    coalesce: int = 8,
    observer: ObserverLike = NULL_OBSERVER,
    duplicate_fraction: float | None = None,
) -> tuple[LoadReport, list[Any]]:
    """Serve *specs* from *clients* concurrent submitters and measure
    the sustained throughput; returns the report and the per-spec
    results (input order)."""
    start = time.perf_counter()
    results, latencies, stats = asyncio.run(
        _run_load_async(
            specs,
            clients=clients,
            workers=workers,
            coalesce=coalesce,
            observer=observer,
        )
    )
    wall = time.perf_counter() - start
    lat = np.asarray(latencies, dtype=np.float64)
    report = LoadReport(
        n_jobs=len(specs),
        duplicate_fraction=(
            duplicate_fraction if duplicate_fraction is not None else -1.0
        ),
        clients=clients,
        workers=workers,
        coalesce=coalesce,
        wall_seconds=wall,
        jobs_per_second=len(specs) / wall,
        p50_latency_seconds=float(np.percentile(lat, 50)),
        p99_latency_seconds=float(np.percentile(lat, 99)),
        cache_hit_rate=float(stats["hit_rate"]),
        dedup_ratio=float(stats["dedup_ratio"]),
        executions=int(stats["executions"]),
    )
    return report, results


def sequential_baseline(specs: list[RunSpec]) -> tuple[float, list[Any]]:
    """Naive service: every submission is a direct :func:`repro.api.run`
    call, one after another — no dedup, no cache, no coalescing.
    Returns (jobs_per_second, results)."""
    start = time.perf_counter()
    results = [run(spec) for spec in specs]
    wall = time.perf_counter() - start
    return len(specs) / wall, results


def benchmark_serve(
    *,
    n_jobs: int = 64,
    clients: int = 8,
    workers: int = 2,
    coalesce: int = 8,
    fractions: tuple[float, ...] = DUPLICATE_FRACTIONS,
    phases: int = DEFAULT_PHASES,
    seed: int = 1234,
    verify: bool = True,
) -> dict[str, Any]:
    """Sweep duplicate fractions and build the ``BENCH_serve.json``
    payload.  With *verify* every served result is checked bit-identical
    against the sequential baseline's."""
    duplicates: dict[str, Any] = {}
    for fraction in fractions:
        specs = make_workload(
            n_jobs, fraction, seed=seed, phases=phases
        )
        report, results = run_load(
            specs,
            clients=clients,
            workers=workers,
            coalesce=coalesce,
            duplicate_fraction=fraction,
        )
        seq_jps, seq_results = sequential_baseline(specs)
        if verify:
            for served, direct in zip(results, seq_results):
                if not np.array_equal(served.f, direct.f):
                    raise AssertionError(
                        "served result diverged from direct run()"
                    )
        duplicates[f"{fraction:.1f}"] = {
            "jobs_per_second": round(report.jobs_per_second, 2),
            "sequential_jobs_per_second": round(seq_jps, 2),
            "speedup_vs_sequential": round(
                report.jobs_per_second / seq_jps, 2
            ),
            "p50_latency_seconds": round(report.p50_latency_seconds, 5),
            "p99_latency_seconds": round(report.p99_latency_seconds, 5),
            "cache_hit_rate": round(report.cache_hit_rate, 3),
            "dedup_ratio": round(report.dedup_ratio, 3),
            "executions": report.executions,
            "verified_bit_identical": bool(verify),
        }
    return {
        "serve": {
            "n_jobs": n_jobs,
            "clients": clients,
            "workers": workers,
            "coalesce": coalesce,
            "phases": phases,
            "shape": list(DEFAULT_SHAPE),
            "unit": "jobs_per_second",
            "duplicates": duplicates,
        }
    }


def write_bench(payload: dict[str, Any], path: str | Path) -> None:
    """Atomically publish the benchmark payload (REP005 discipline)."""
    atomic_write_json(path, payload)
