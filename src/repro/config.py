"""The single place where ``REPRO_*`` environment variables are read.

Every configuration channel the library honours through the environment
is parsed here into one immutable :class:`EnvConfig` snapshot:

``REPRO_LBM_BACKEND``
    Default kernel backend for configs that do not name one
    (:mod:`repro.lbm.backends.registry`).
``REPRO_LBM_ARRAY_NS``
    Array-API namespace binding for the array-API kernel backends
    (:mod:`repro.lbm.backends.xp`); unset means NumPy.
``REPRO_OBS_TRACE``
    JSONL trace path enabling observability discovery
    (:mod:`repro.obs.observer`).
``REPRO_TRANSPORT``
    Default parallel transport, ``threads`` or ``processes``
    (:mod:`repro.parallel.launch`).
``REPRO_DECOMP``
    Default parallel decomposition for specs that leave ``decomp`` at
    ``"auto"``: ``slab`` (1-D), ``grid`` (most-square 2-D), or an
    explicit ``RxC`` grid such as ``2x2``.
``REPRO_CKPT_DIR`` / ``REPRO_CKPT_EVERY`` / ``REPRO_CKPT_RESUME`` /
``REPRO_CKPT_KEEP``
    Checkpoint store root, snapshot interval, resume flag and retention
    window (:mod:`repro.ckpt.policy`).
``REPRO_SERVE_WORKERS`` / ``REPRO_SERVE_COALESCE`` /
``REPRO_SERVE_RETRIES`` / ``REPRO_SERVE_CACHE``
    Job-scheduler defaults (:mod:`repro.serve`): worker-pool width,
    maximum specs coalesced into one batched execution, retry budget for
    a job whose worker died, and result-cache capacity (0 disables
    caching).

Modules never touch ``os.environ`` themselves — they call
:func:`from_env` (or one of the thin per-subsystem wrappers that do) and
read typed fields.  The REP006 static rule enforces this: any
``os.environ`` / ``os.getenv`` access outside this module fails
``python -m repro.analysis src``.  Entry points that *set* discovery
variables for child layers (the experiments runner CLI) go through
:func:`set_discovery_env` for the same reason.

:meth:`EnvConfig.overlay` applies the snapshot to a
:class:`repro.api.RunSpec`, filling only the fields the spec left
unset — explicit arguments always beat the environment.
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

ENV_BACKEND = "REPRO_LBM_BACKEND"
ENV_ARRAY_NS = "REPRO_LBM_ARRAY_NS"
ENV_TRACE = "REPRO_OBS_TRACE"
ENV_TRANSPORT = "REPRO_TRANSPORT"
ENV_DECOMP = "REPRO_DECOMP"
ENV_CKPT_DIR = "REPRO_CKPT_DIR"
ENV_CKPT_EVERY = "REPRO_CKPT_EVERY"
ENV_CKPT_RESUME = "REPRO_CKPT_RESUME"
ENV_CKPT_KEEP = "REPRO_CKPT_KEEP"
ENV_SERVE_WORKERS = "REPRO_SERVE_WORKERS"
ENV_SERVE_COALESCE = "REPRO_SERVE_COALESCE"
ENV_SERVE_RETRIES = "REPRO_SERVE_RETRIES"
ENV_SERVE_CACHE = "REPRO_SERVE_CACHE"

#: Every variable this module owns, for documentation and tests.
ALL_ENV_VARS = (
    ENV_BACKEND,
    ENV_ARRAY_NS,
    ENV_TRACE,
    ENV_TRANSPORT,
    ENV_DECOMP,
    ENV_CKPT_DIR,
    ENV_CKPT_EVERY,
    ENV_CKPT_RESUME,
    ENV_CKPT_KEEP,
    ENV_SERVE_WORKERS,
    ENV_SERVE_COALESCE,
    ENV_SERVE_RETRIES,
    ENV_SERVE_CACHE,
)

_TRUTHY = {"1", "true", "yes", "on"}


def _clean(environ: Mapping[str, str], var: str) -> str:
    return str(environ.get(var, "")).strip()


@dataclass(frozen=True)
class EnvConfig:
    """Typed snapshot of the ``REPRO_*`` environment family.

    ``None`` / zero-ish defaults mean "the variable is unset"; consumers
    fall back to their own defaults in that case.
    """

    backend: str | None = None
    array_namespace: str | None = None
    trace: str | None = None
    transport: str | None = None
    decomp: str | tuple[int, int] | None = None
    ckpt_dir: str | None = None
    ckpt_every: int = 0
    ckpt_resume: bool = False
    ckpt_keep: int = 3
    serve_workers: int = 2
    serve_coalesce: int = 8
    serve_retries: int = 1
    serve_cache: int = 1024

    def overlay(self, spec: Any) -> Any:
        """Fill a :class:`repro.api.RunSpec`'s unset fields from the
        environment (explicit spec values always win).

        Only run-dispatch fields participate: transport and the
        checkpoint family.  The backend default is resolved where
        configs are built (``LBMConfig.__post_init__``) and the trace
        path where observers are resolved (``resolve_observer``), so a
        spec round-trips through ``overlay`` without duplicating either
        discovery.
        """
        updates: dict[str, Any] = {}
        if spec.transport is None and self.transport is not None:
            updates["transport"] = self.transport
        if (
            self.decomp is not None
            and getattr(spec, "decomp", "auto") == "auto"
            and spec.ranks > 1
            and (
                isinstance(self.decomp, str)
                or self.decomp[0] * self.decomp[1] == spec.ranks
            )
        ):
            # Never changes the rank count: a sequential spec stays
            # sequential, and an explicit grid that contradicts the
            # spec's ranks is ignored rather than raising.
            updates["decomp"] = self.decomp
        if (
            self.ckpt_dir is not None
            and spec.checkpoint_dir is None
            and spec.checkpoint_store is None
        ):
            updates["checkpoint_dir"] = self.ckpt_dir
            if spec.checkpoint_every == 0:
                updates["checkpoint_every"] = self.ckpt_every
            if not spec.resume:
                updates["resume"] = self.ckpt_resume
        if not updates:
            return spec
        return dataclasses.replace(spec, **updates)


def _parse_decomp(raw: str) -> str | tuple[int, int] | None:
    """Parse ``REPRO_DECOMP``: ``slab``, ``grid``, or ``RxC``."""
    if not raw:
        return None
    lowered = raw.lower()
    if lowered in ("slab", "grid"):
        return lowered
    parts = lowered.split("x")
    if len(parts) == 2:
        try:
            rows, cols = int(parts[0]), int(parts[1])
        except ValueError:
            rows = cols = 0
        if rows >= 1 and cols >= 1:
            return (rows, cols)
    raise ValueError(
        f"{ENV_DECOMP} must be 'slab', 'grid' or 'RxC' "
        f"(e.g. '2x2'), got {raw!r}"
    )


def from_env(environ: Mapping[str, str] | None = None) -> EnvConfig:
    """Parse the ``REPRO_*`` family from *environ* (default: the real
    process environment) into an :class:`EnvConfig`."""
    if environ is None:
        environ = os.environ
    return EnvConfig(
        backend=_clean(environ, ENV_BACKEND) or None,
        array_namespace=_clean(environ, ENV_ARRAY_NS) or None,
        trace=_clean(environ, ENV_TRACE) or None,
        transport=_clean(environ, ENV_TRANSPORT) or None,
        decomp=_parse_decomp(_clean(environ, ENV_DECOMP)),
        ckpt_dir=_clean(environ, ENV_CKPT_DIR) or None,
        ckpt_every=int(_clean(environ, ENV_CKPT_EVERY) or 0),
        ckpt_resume=_clean(environ, ENV_CKPT_RESUME).lower() in _TRUTHY,
        ckpt_keep=int(_clean(environ, ENV_CKPT_KEEP) or 3),
        serve_workers=int(_clean(environ, ENV_SERVE_WORKERS) or 2),
        serve_coalesce=int(_clean(environ, ENV_SERVE_COALESCE) or 8),
        serve_retries=int(_clean(environ, ENV_SERVE_RETRIES) or 1),
        serve_cache=int(_clean(environ, ENV_SERVE_CACHE) or 1024),
    )


def set_discovery_env(
    *,
    trace: str | None = None,
    transport: str | None = None,
    ckpt_dir: str | None = None,
    ckpt_every: int | None = None,
    ckpt_resume: bool | None = None,
) -> None:
    """Export discovery variables for the instrumented layers.

    The sanctioned *write* channel: entry points (the experiments
    runner) translate CLI flags into the same environment variables a
    user could have set, so every solver constructed afterwards
    discovers them without plumbing.  ``None`` leaves a variable
    untouched.
    """
    if trace is not None:
        os.environ[ENV_TRACE] = trace
    if transport is not None:
        os.environ[ENV_TRANSPORT] = transport
    if ckpt_dir is not None:
        os.environ[ENV_CKPT_DIR] = ckpt_dir
    if ckpt_every is not None:
        os.environ[ENV_CKPT_EVERY] = str(ckpt_every)
    if ckpt_resume is not None:
        os.environ[ENV_CKPT_RESUME] = "1" if ckpt_resume else "0"
