"""BGK (single-relaxation-time) collision operator.

The LBGK update per component sigma (paper, Section 2.1) is

``f_k^sigma <- f_k^sigma - (f_k^sigma - feq_k^sigma) / tau_sigma``.
"""

from __future__ import annotations

import numpy as np


def collide(f: np.ndarray, feq: np.ndarray, tau: float) -> None:
    """Relax *f* toward *feq* in place with relaxation time *tau*.

    Both arrays have shape ``(Q, *S)``.  Written as in-place numpy so the
    solver's hot loop allocates nothing.
    """
    if f.shape != feq.shape:
        raise ValueError(f"f shape {f.shape} != feq shape {feq.shape}")
    if tau <= 0.5:
        raise ValueError(f"tau must be > 1/2, got {tau}")
    omega = 1.0 / tau
    # f = (1 - omega) * f + omega * feq, in place:
    f *= 1.0 - omega
    f += omega * feq


def collide_masked(
    f: np.ndarray, feq: np.ndarray, tau: float, fluid_mask: np.ndarray
) -> None:
    """Collision restricted to fluid nodes.

    Solid (wall) nodes keep their populations untouched; they are handled
    by bounce-back after streaming.  *fluid_mask* has the spatial shape
    ``(*S,)`` with True at fluid nodes.
    """
    if f.shape != feq.shape:
        raise ValueError(f"f shape {f.shape} != feq shape {feq.shape}")
    if fluid_mask.shape != f.shape[1:]:
        raise ValueError(
            f"fluid_mask shape {fluid_mask.shape} != spatial shape {f.shape[1:]}"
        )
    if tau <= 0.5:
        raise ValueError(f"tau must be > 1/2, got {tau}")
    omega = 1.0 / tau
    delta = feq[:, fluid_mask]
    delta -= f[:, fluid_mask]
    delta *= omega
    f[:, fluid_mask] += delta
