"""Microchannel geometry: solid masks and wall-distance fields.

The paper's channel (Figure 5) is a rectangular duct: flow along x
(periodic in the simulation), side walls normal to y (width 1 micron) and
top/bottom walls normal to z (depth 0.1 micron).  The hydrophobic wall
force depends on the distance from each wall along the inward normal, so
the geometry also exposes per-axis distance fields.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_integer


@dataclass(frozen=True)
class ChannelGeometry:
    """A duct with solid wall planes on the requested axes.

    Parameters
    ----------
    shape:
        Full grid shape, e.g. ``(400, 200, 20)``.  Axis 0 (x) is the flow /
        decomposition direction and is always periodic.
    wall_axes:
        Axes that carry solid wall planes at index 0 and index -1.
        ``None`` (default) means every non-x axis (a duct); pass ``(1,)``
        for a 2-D channel between two plates, or ``()`` for a fully
        periodic box (no walls — used by validation flows like the
        Taylor-Green vortex).
    wall_thickness:
        Number of solid layers on each side (>= 1).
    """

    shape: tuple[int, ...]
    wall_axes: tuple[int, ...] | None = None
    wall_thickness: int = 1

    def __post_init__(self) -> None:
        shape = tuple(check_integer(n, "shape entry", minimum=1) for n in self.shape)
        if len(shape) not in (2, 3):
            raise ValueError(f"shape must be 2-D or 3-D, got {shape}")
        wall_axes = (
            tuple(range(1, len(shape)))
            if self.wall_axes is None
            else tuple(self.wall_axes)
        )
        for ax in wall_axes:
            if not 1 <= ax < len(shape):
                raise ValueError(
                    f"wall axis {ax} invalid; axis 0 is periodic flow direction"
                )
        t = check_integer(self.wall_thickness, "wall_thickness", minimum=1)
        for ax in wall_axes:
            if shape[ax] <= 2 * t + 1:
                raise ValueError(
                    f"axis {ax} of extent {shape[ax]} too small for walls of "
                    f"thickness {t} plus fluid"
                )
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "wall_axes", tuple(sorted(set(wall_axes))))
        object.__setattr__(self, "wall_thickness", t)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def solid_mask(self) -> np.ndarray:
        """Boolean field, True at solid wall nodes."""
        mask = np.zeros(self.shape, dtype=bool)
        t = self.wall_thickness
        for ax in self.wall_axes:
            sl_lo = [slice(None)] * self.ndim
            sl_hi = [slice(None)] * self.ndim
            sl_lo[ax] = slice(0, t)
            sl_hi[ax] = slice(self.shape[ax] - t, self.shape[ax])
            mask[tuple(sl_lo)] = True
            mask[tuple(sl_hi)] = True
        return mask

    def fluid_mask(self) -> np.ndarray:
        """Boolean field, True at fluid nodes."""
        return ~self.solid_mask()

    def wall_distance(self, axis: int) -> np.ndarray:
        """Distance (lattice units) from the nearest wall along *axis*.

        The no-slip surface of full-way bounce-back lies half a spacing
        beyond the outermost fluid node, so the first fluid node is at
        distance 0.5 from the wall.  Solid nodes get distance 0.

        Returns a field of the full grid shape (broadcast from a 1-D
        profile along *axis*).
        """
        if axis not in self.wall_axes:
            raise ValueError(f"axis {axis} has no walls (wall_axes={self.wall_axes})")
        n = self.shape[axis]
        t = self.wall_thickness
        idx = np.arange(n, dtype=np.float64)
        # Wall surfaces sit between the last solid node (t - 1) and the
        # first fluid node (t): surface position t - 1/2; symmetric on top.
        lo_surface = t - 0.5
        hi_surface = (n - 1 - t) + 0.5
        dist = np.minimum(idx - lo_surface, hi_surface - idx)
        dist = np.maximum(dist, 0.0)
        shape = [1] * self.ndim
        shape[axis] = n
        return np.broadcast_to(dist.reshape(shape), self.shape).copy()

    def wall_coordinate(self, axis: int) -> np.ndarray:
        """Signed distance (lattice units) from the *low* wall surface along
        *axis* — a monotone coordinate across the channel, used for profile
        plots ("distance from the side wall", paper Figure 6/7).

        The low wall surface sits half a spacing beyond the outermost solid
        node, so the first fluid node is at coordinate 0.5 and the last at
        ``channel_width(axis) - 0.5``.
        """
        if axis not in self.wall_axes:
            raise ValueError(f"axis {axis} has no walls (wall_axes={self.wall_axes})")
        n = self.shape[axis]
        t = self.wall_thickness
        idx = np.arange(n, dtype=np.float64)
        lo_surface = t - 0.5
        coord = idx - lo_surface
        shape = [1] * self.ndim
        shape[axis] = n
        return np.broadcast_to(coord.reshape(shape), self.shape).copy()

    def channel_width(self, axis: int) -> float:
        """Distance between the two no-slip wall surfaces along *axis*."""
        if axis not in self.wall_axes:
            raise ValueError(f"axis {axis} has no walls (wall_axes={self.wall_axes})")
        return float(self.shape[axis] - 2 * self.wall_thickness)

    def inward_normal(self, axis: int) -> np.ndarray:
        """Sign field (+1 / -1 / 0) pointing from the nearest wall into the
        channel along *axis*; 0 on the centerline and at solid nodes."""
        if axis not in self.wall_axes:
            raise ValueError(f"axis {axis} has no walls (wall_axes={self.wall_axes})")
        n = self.shape[axis]
        idx = np.arange(n, dtype=np.float64)
        center = (n - 1) / 2.0
        sign = np.sign(center - idx)
        t = self.wall_thickness
        sign[:t] = 0.0
        sign[n - t:] = 0.0
        shape = [1] * self.ndim
        shape[axis] = n
        return np.broadcast_to(sign.reshape(shape), self.shape).copy()

    def centerline_index(self, axis: int) -> int:
        """Index of the grid line closest to the channel center on *axis*."""
        return self.shape[axis] // 2
