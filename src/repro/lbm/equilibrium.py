"""Second-order Maxwell-Boltzmann equilibrium distribution.

``feq_k(rho, u) = w_k * rho * (1 + c.u/cs2 + (c.u)^2/(2 cs4) - u^2/(2 cs2))``

which for cs2 = 1/3 is the familiar ``w rho (1 + 3 cu + 4.5 (cu)^2 - 1.5 u^2)``.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice


def equilibrium(
    rho: np.ndarray,
    u: np.ndarray,
    lattice: Lattice,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Compute the equilibrium populations.

    Parameters
    ----------
    rho:
        Density field, shape ``(*S,)`` where S is the spatial grid shape.
    u:
        Velocity field, shape ``(D, *S)``.
    lattice:
        Velocity-set descriptor.
    out:
        Optional preallocated output of shape ``(Q, *S)``; reused to avoid
        per-step allocation in the solver hot loop.

    Returns
    -------
    feq of shape ``(Q, *S)``.
    """
    if u.shape[0] != lattice.D:
        raise ValueError(
            f"u has leading dimension {u.shape[0]}, lattice is {lattice.D}-D"
        )
    if u.shape[1:] != rho.shape:
        raise ValueError(
            f"u spatial shape {u.shape[1:]} != rho shape {rho.shape}"
        )
    inv_cs2 = 1.0 / lattice.cs2
    # cu[k] = c_k . u  -> shape (Q, *S)
    cu = np.tensordot(lattice.cf, u, axes=([1], [0]))
    usq = np.einsum("d...,d...->...", u, u)

    if out is None:
        out = np.empty((lattice.Q,) + rho.shape, dtype=np.float64)
    elif out.shape != (lattice.Q,) + rho.shape:
        raise ValueError(
            f"out has shape {out.shape}, expected {(lattice.Q,) + rho.shape}"
        )

    # out = 1 + cu/cs2 + cu^2/(2 cs4) - u^2/(2 cs2), built in place.
    np.multiply(cu, cu, out=out)
    out *= 0.5 * inv_cs2 * inv_cs2
    out += cu * inv_cs2
    out += 1.0
    out -= (0.5 * inv_cs2) * usq  # broadcasts over Q
    out *= rho  # broadcasts over Q
    out *= lattice.w.reshape((lattice.Q,) + (1,) * rho.ndim)
    return out
