"""Streaming (propagation) step.

Each population f_k moves one lattice link along its velocity c_k:
``f_k(x + c_k, t + 1) = f_k(x, t)``.  On a periodic box this is exactly
``numpy.roll`` along each axis; solid walls are handled afterwards by
bounce-back, and slab decomposition handles the x-wraparound through ghost
planes instead (see :mod:`repro.parallel.halo`).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice


def stream(f: np.ndarray, lattice: Lattice) -> None:
    """Periodic streaming of all populations, in place.

    *f* has shape ``(Q, *S)`` with ``len(S) == lattice.D``.
    """
    if f.ndim != 1 + lattice.D:
        raise ValueError(
            f"f must have {1 + lattice.D} dims (Q + spatial), got shape {f.shape}"
        )
    spatial_axes = tuple(range(lattice.D))
    for k in lattice.moving:
        f[k] = np.roll(f[k], lattice.shifts[k], axis=spatial_axes)


def stream_component_stack(f: np.ndarray, lattice: Lattice) -> None:
    """Stream a stack of components at once: *f* shape ``(C, Q, *S)``."""
    if f.ndim != 2 + lattice.D:
        raise ValueError(
            f"f must have {2 + lattice.D} dims (C, Q + spatial), got {f.shape}"
        )
    for comp in range(f.shape[0]):
        stream(f[comp], lattice)
