"""External forces: the hydrophobic wall force and the driving body force.

The paper models hydrophobic walls by a force that is repulsive to the
water component and neutral to the air component, applied in a region very
close to the walls and decaying exponentially away from them:

``F_1(x) = 0`` (air),
``F_2(x) = a * (0, g2(y), g3(z))`` (water),

with ``g(d) = exp(-d / lambda)`` along the inward wall normal, amplitude
``a = 0.2`` (nondimensional) and decay length 12.5 nm (2.5 lattice
spacings at the paper's 5 nm grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lbm.geometry import ChannelGeometry
from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class WallForceSpec:
    """Hydrophobic wall-force parameters.

    Attributes
    ----------
    amplitude:
        Nondimensional force magnitude ``a`` at the wall surface (the paper
        uses 0.2).
    decay_length:
        Exponential decay length in lattice units (paper: 12.5 nm / 5 nm =
        2.5 spacings).
    component:
        Name of the component the force acts on (the water); all other
        components feel nothing.
    """

    amplitude: float = 0.2
    decay_length: float = 2.5
    component: str = "water"

    def __post_init__(self) -> None:
        check_nonnegative(self.amplitude, "amplitude")
        check_positive(self.decay_length, "decay_length")
        if not self.component:
            raise ValueError("component name must be non-empty")


def wall_force_field(
    geometry: ChannelGeometry, spec: WallForceSpec
) -> np.ndarray:
    """Precompute the static hydrophobic force field.

    Returns an array of shape ``(D, *S)``: for each wall axis the force
    points along the inward normal (pushing water away from the wall) with
    magnitude ``a * exp(-d / lambda)``; contributions from opposite walls
    superpose (and cancel on the centerline by symmetry).  The force is
    zero inside the solid walls.
    """
    ndim = geometry.ndim
    force = np.zeros((ndim,) + geometry.shape, dtype=np.float64)
    if spec.amplitude == 0.0:
        return force
    fluid = geometry.fluid_mask()
    for ax in geometry.wall_axes:
        n = geometry.shape[ax]
        t = geometry.wall_thickness
        idx = np.arange(n, dtype=np.float64)
        lo_surface = t - 0.5
        hi_surface = (n - 1 - t) + 0.5
        d_lo = np.maximum(idx - lo_surface, 0.0)
        d_hi = np.maximum(hi_surface - idx, 0.0)
        # Repulsion from the low wall pushes toward +ax, from the high wall
        # toward -ax; both decay exponentially with their own distance.
        profile = spec.amplitude * (
            np.exp(-d_lo / spec.decay_length) - np.exp(-d_hi / spec.decay_length)
        )
        shape = [1] * ndim
        shape[ax] = n
        force[ax] += profile.reshape(shape)
    force *= fluid  # no force inside the solid
    return force


def body_force_field(
    geometry: ChannelGeometry, acceleration: tuple[float, ...] | np.ndarray
) -> np.ndarray:
    """Uniform driving body force per unit density (e.g. a pressure
    gradient along x), zeroed on solid nodes.

    Returns shape ``(D, *S)``.
    """
    acc = np.asarray(acceleration, dtype=np.float64)
    if acc.shape != (geometry.ndim,):
        raise ValueError(
            f"acceleration must have shape ({geometry.ndim},), got {acc.shape}"
        )
    fluid = geometry.fluid_mask()
    force = np.zeros((geometry.ndim,) + geometry.shape, dtype=np.float64)
    for d in range(geometry.ndim):
        force[d] = acc[d] * fluid
    return force
