"""Batched ensembles: many microchannel runs as one stacked array pass.

The paper's parameter studies — slip length versus wall-interaction
strength ``a``, versus driving force, versus coupling ``g`` — are
embarrassingly parallel: the same channel, the same lattice, different
scalar knobs.  Running them one solver at a time pays the full
Python/NumPy kernel dispatch cost per member per step.  This module
stacks N such members into the ``(N, C, Q, *S)`` layout of the
``batched`` kernel backend and advances the whole ensemble with one
sequence of array passes per step, so the dispatch cost is amortised
across the batch (the intra-node analogue of the paper's cluster-level
scaling study).

Bitwise contract: member ``b`` of a batched run is **exactly** the
standalone run of ``spec.member_config(b)`` under the ``reference``
backend — same initial populations, same step arithmetic, same
convergence snapshots.  :class:`EnsembleSpec.member_config` is the
single source of truth for per-member configurations: both the engine
(stacked coefficients) and any standalone cross-check build from it.

Ragged convergence: with a tolerance set, the engine samples each
member's mixture velocity every ``check_every`` steps, snapshots and
retires members whose residual dropped below the tolerance, and
**repacks** the surviving members into a smaller batch (all per-member
kernel arithmetic is batch-width independent, so repacking does not
perturb the remaining trajectories).  The pass thus narrows as members
converge instead of dragging finished simulations along.

Usage::

    spec = EnsembleSpec.wall_force_sweep(base_config, [0.05, 0.1, 0.2])
    result = run_ensemble(spec, n_steps=2000, check_every=50, tol=1e-9)
    for member in result.members:
        solver = member.solver()          # full solver at the final state

See :func:`repro.api.run_batch` for the spec-level facade.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.lbm.backends.batched import BatchedBackend
from repro.lbm.equilibrium import equilibrium
from repro.lbm.forces import body_force_field, wall_force_field
from repro.lbm.macroscopic import mixture_velocity
from repro.lbm.solver import LBMConfig, MulticomponentLBM
from repro.obs.observer import NULL_OBSERVER, ObserverLike, resolve_observer

if TYPE_CHECKING:  # repro.scenarios imports repro.lbm; never the reverse
    from repro.scenarios.base import Scenario


@dataclass(frozen=True)
class MemberParams:
    """Per-member scalar knobs of one ensemble member.

    Every field is optional; unset fields inherit the base config.

    Attributes
    ----------
    g_scale:
        Multiplier applied to the base Shan-Chen coupling matrix.
    g_matrix:
        Full replacement coupling matrix (wins over ``g_scale``).
    wall_amplitude:
        Replacement hydrophobic wall-force amplitude ``a`` (requires the
        base config to carry a ``wall_force`` spec).
    body_acceleration:
        Replacement driving body acceleration.
    scenario:
        Replacement wall-physics scenario (requires the base config to
        carry a scenario whose geometry signature matches — the batch
        shares one stacked solid mask; see :mod:`repro.scenarios`).
    """

    g_scale: float = 1.0
    g_matrix: np.ndarray | None = None
    wall_amplitude: float | None = None
    body_acceleration: tuple[float, ...] | None = None
    scenario: "Scenario | None" = None


@dataclass(frozen=True)
class EnsembleSpec:
    """A base configuration plus one :class:`MemberParams` per member."""

    base: LBMConfig
    members: tuple[MemberParams, ...]

    def __post_init__(self) -> None:
        members = tuple(self.members)
        if not members:
            raise ValueError("an ensemble needs at least one member")
        if self.base.collision != "bgk":
            raise ValueError(
                f"batched ensembles support BGK collision only, base "
                f"config uses {self.base.collision!r}"
            )
        if self.base.adhesion is not None:
            raise ValueError(
                "batched ensembles do not support wall adhesion; use the "
                "explicit wall_force channel for wettability sweeps"
            )
        for i, params in enumerate(members):
            if params.wall_amplitude is not None and self.base.wall_force is None:
                raise ValueError(
                    f"member {i} sets wall_amplitude but the base config "
                    f"has no wall_force spec"
                )
            if params.scenario is not None:
                if self.base.scenario is None:
                    raise ValueError(
                        f"member {i} sets a scenario but the base config "
                        f"has none"
                    )
                if (
                    params.scenario.geometry_signature()
                    != self.base.scenario.geometry_signature()
                ):
                    raise ValueError(
                        f"member {i}'s scenario reshapes the solid walls "
                        f"differently from the base scenario; a batch "
                        f"shares one stacked solid mask"
                    )
        object.__setattr__(self, "members", members)

    @property
    def size(self) -> int:
        return len(self.members)

    def member_config(self, i: int) -> LBMConfig:
        """The standalone :class:`LBMConfig` of member *i* — the single
        source of truth both the batched engine and differential
        cross-checks build from."""
        params = self.members[i]
        updates: dict = {}
        if params.g_matrix is not None:
            updates["g_matrix"] = np.asarray(params.g_matrix, dtype=np.float64)
        elif params.g_scale != 1.0:
            updates["g_matrix"] = (
                np.asarray(self.base.g_matrix, dtype=np.float64)
                * params.g_scale
            )
        if params.wall_amplitude is not None:
            updates["wall_force"] = dataclasses.replace(
                self.base.wall_force, amplitude=float(params.wall_amplitude)
            )
        if params.body_acceleration is not None:
            updates["body_acceleration"] = tuple(params.body_acceleration)
        if params.scenario is not None:
            updates["scenario"] = params.scenario
        if not updates:
            return self.base
        return dataclasses.replace(self.base, **updates)

    # ------------------------------------------------------------- sweeps
    @classmethod
    def wall_force_sweep(
        cls, base: LBMConfig, amplitudes: Sequence[float]
    ) -> "EnsembleSpec":
        """Sweep the hydrophobic wall-force amplitude ``a`` (the paper's
        slip-length control parameter, Figure 7)."""
        return cls(
            base=base,
            members=tuple(
                MemberParams(wall_amplitude=float(a)) for a in amplitudes
            ),
        )

    @classmethod
    def g_sweep(
        cls, base: LBMConfig, scales: Sequence[float]
    ) -> "EnsembleSpec":
        """Sweep the Shan-Chen coupling strength by scaling the base
        coupling matrix."""
        return cls(
            base=base,
            members=tuple(MemberParams(g_scale=float(s)) for s in scales),
        )


@dataclass
class MemberResult:
    """Final state of one ensemble member."""

    index: int
    config: LBMConfig
    params: MemberParams
    f: np.ndarray
    steps: int
    converged: bool
    residual: float | None

    def solver(self) -> MulticomponentLBM:
        """A full solver at this member's final state (derived fields
        recomputed exactly as after an uninterrupted run)."""
        solver = MulticomponentLBM(self.config)
        solver.restore_state(self.f, self.steps)
        return solver


@dataclass
class EnsembleResult:
    """All member results plus aggregate throughput accounting."""

    spec: EnsembleSpec
    members: tuple[MemberResult, ...]
    elapsed_s: float
    #: Total member-steps advanced (each step of a width-B pass counts B).
    member_steps: int
    metrics: dict = field(default_factory=dict)

    @property
    def us_per_point(self) -> float:
        """Aggregate cost per lattice point per member step."""
        points = self.member_steps * int(
            np.prod(self.spec.base.geometry.shape)
        )
        return self.elapsed_s / max(points, 1) * 1e6


class BatchedEnsemble:
    """The stacked-ensemble engine (construct once, :meth:`run` once).

    State arrays carry a leading batch axis over the *active* members:
    ``f (B, C, Q, *S)``, ``rho (B, C, *S)``, ``mom/force/u_eq
    (B, C, D, *S)``, plus the stacked per-member acceleration field.
    ``self._active`` maps batch row -> original member index and shrinks
    as members converge and the batch is repacked.
    """

    def __init__(
        self, spec: EnsembleSpec, observer: ObserverLike = NULL_OBSERVER
    ):
        self.spec = spec
        self.observer = resolve_observer(observer)
        base = spec.base
        lat = base.lattice
        geo = base.geometry
        shape = geo.shape
        B, C, D, Q = spec.size, base.n_components, lat.D, lat.Q

        self.solid = (
            base.scenario.solid_mask(geo)
            if base.scenario is not None
            else geo.solid_mask()
        )
        self.fluid = ~self.solid
        self._fluid_f = self.fluid.astype(np.float64)
        self.shape = shape
        self.n_points = int(np.prod(shape))

        # Stacked per-member coefficient fields, built from the same
        # member_config the standalone solver would see.
        self._accel = np.zeros((B, C, D) + shape, dtype=np.float64)
        g_matrices = np.empty((B, C, C), dtype=np.float64)
        for b in range(B):
            cfg = spec.member_config(b)
            g_matrices[b] = np.asarray(cfg.g_matrix, dtype=np.float64)
            if cfg.wall_force is not None:
                target = cfg.component_index(cfg.wall_force.component)
                self._accel[b, target] += wall_force_field(geo, cfg.wall_force)
            if cfg.scenario is not None:
                target = cfg.component_index(cfg.scenario.component)
                self._accel[b, target] += cfg.scenario.wall_accel(geo)
            if cfg.body_acceleration is not None:
                body = body_force_field(geo, cfg.body_acceleration)
                for c in range(C):
                    self._accel[b, c] += body

        # Member state, initialised exactly as MulticomponentLBM.__init__:
        # rest equilibrium on fluid nodes, zero inside the solid.
        self.f = np.zeros((B, C, Q) + shape, dtype=np.float64)
        zero_u = np.zeros((D,) + shape, dtype=np.float64)
        for ci, comp in enumerate(base.components):
            rho_init = np.where(self.fluid, comp.rho_init / comp.mass, 0.0)
            for b in range(B):
                equilibrium(rho_init, zero_u, lat, out=self.f[b, ci])
        self.rho = np.zeros((B, C) + shape, dtype=np.float64)
        self.mom = np.zeros((B, C, D) + shape, dtype=np.float64)
        self.force = np.zeros_like(self.mom)
        self.u_eq = np.zeros_like(self.mom)

        self._active = list(range(B))
        self._g_matrices = g_matrices
        self.backend = self._build_backend(B, g_matrices)
        self.step_count = 0
        self.member_steps = 0
        self._update_moments_and_forces()

    # ------------------------------------------------------------ plumbing
    def _build_backend(self, batch: int, g_matrices: np.ndarray):
        backend = BatchedBackend(
            self.spec.base, self.shape, self.solid,
            batch=batch, g_matrices=g_matrices,
        )
        if self.observer.enabled:
            from repro.lbm.backends.instrumented import InstrumentedBackend

            return InstrumentedBackend(backend, self.observer)
        return backend

    @property
    def active_size(self) -> int:
        return len(self._active)

    def _update_moments_and_forces(self) -> None:
        self.backend.moments(self.f, self.rho, self.mom)
        self.backend.forces_and_velocities(
            self.rho,
            self.mom,
            self.force,
            self.u_eq,
            accel=self._accel,
            psi_mask=self._fluid_f,
            vel_mask=self._fluid_f,
        )

    def step(self) -> None:
        """One LBM phase for every active member (collide, stream,
        bounce-back, moments/forces) — the batched mirror of
        ``MulticomponentLBM._step_once``."""
        self.backend.collide_bgk(self.f, self.rho, self.u_eq, self._fluid_f)
        self.f = self.backend.stream(self.f)
        self.backend.bounce_back(self.f)
        self._update_moments_and_forces()
        self.step_count += 1
        self.member_steps += self.active_size

    def _repack(self, keep_rows: list[int]) -> None:
        """Shrink the batch to *keep_rows* (batch-row indices).  Kernel
        arithmetic is batch-width independent, so survivors continue
        bit-identically in the narrower pass."""
        idx = np.asarray(keep_rows, dtype=np.intp)
        self._active = [self._active[r] for r in keep_rows]
        self.f = np.ascontiguousarray(self.f[idx])
        self.rho = np.ascontiguousarray(self.rho[idx])
        self.mom = np.ascontiguousarray(self.mom[idx])
        self.force = np.ascontiguousarray(self.force[idx])
        self.u_eq = np.ascontiguousarray(self.u_eq[idx])
        self._accel = np.ascontiguousarray(self._accel[idx])
        self._g_matrices = np.ascontiguousarray(self._g_matrices[idx])
        self.backend = self._build_backend(len(keep_rows), self._g_matrices)

    # ----------------------------------------------------------------- run
    def run(
        self,
        n_steps: int,
        *,
        check_every: int = 0,
        tol: float = 0.0,
    ) -> EnsembleResult:
        """Advance up to *n_steps* phases, retiring members early once
        their mixture-velocity residual drops below *tol* (checked every
        *check_every* steps; 0 disables convergence checks)."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        if check_every < 0:
            raise ValueError(f"check_every must be >= 0, got {check_every}")
        obs = self.observer
        spec = self.spec
        B = spec.size
        final_f: list[np.ndarray | None] = [None] * B
        final_steps = [0] * B
        converged = [False] * B
        residuals: list[float | None] = [None] * B
        u_prev: np.ndarray | None = None
        active_gauge = obs.gauge("ensemble.active_members") if obs.enabled else None

        start = time.perf_counter()
        start_member_steps = self.member_steps
        for _ in range(n_steps):
            if not self._active:
                break
            self.step()
            if obs.enabled:
                obs.counter("ensemble.steps").add()
                obs.counter("ensemble.member_steps").add(self.active_size)
                if active_gauge is not None:
                    active_gauge.set(self.active_size)
            if check_every and self.step_count % check_every == 0:
                u_prev = self._convergence_pass(
                    u_prev, tol, final_f, final_steps, converged, residuals
                )
        elapsed = time.perf_counter() - start

        # Members still active at the step budget: snapshot as-is.
        for row, member in enumerate(self._active):
            final_f[member] = self.f[row].copy()
            final_steps[member] = self.step_count
        members = tuple(
            MemberResult(
                index=b,
                config=spec.member_config(b),
                params=spec.members[b],
                f=final_f[b],
                steps=final_steps[b],
                converged=converged[b],
                residual=residuals[b],
            )
            for b in range(B)
        )
        member_steps = self.member_steps - start_member_steps
        result = EnsembleResult(
            spec=spec,
            members=members,
            elapsed_s=elapsed,
            member_steps=member_steps,
        )
        if obs.enabled:
            obs.emit(
                "ensemble.run",
                members=B,
                steps=self.step_count,
                member_steps=member_steps,
                converged=sum(converged),
                us_per_point=result.us_per_point,
                per_member_steps=list(final_steps),
            )
            obs.emit_metrics()
            result.metrics = {
                "ensemble.us_per_point": result.us_per_point,
                "ensemble.member_steps": member_steps,
            }
        return result

    def _convergence_pass(
        self,
        u_prev: np.ndarray | None,
        tol: float,
        final_f: list,
        final_steps: list,
        converged: list,
        residuals: list,
    ) -> np.ndarray:
        """Sample per-member mixture velocities, retire members whose
        residual fell below *tol*, repack the batch if any retired.
        Returns the new previous-velocity sample (active rows only)."""
        B = self.active_size
        u_now = np.stack(
            [
                mixture_velocity(self.rho[b], self.mom[b], self.force[b])
                for b in range(B)
            ]
        )
        keep: list[int] = []
        if u_prev is not None and u_prev.shape == u_now.shape:
            for row in range(B):
                member = self._active[row]
                res = float(np.max(np.abs(u_now[row] - u_prev[row])))
                residuals[member] = res
                if res < tol:
                    final_f[member] = self.f[row].copy()
                    final_steps[member] = self.step_count
                    converged[member] = True
                    if self.observer.enabled:
                        self.observer.emit(
                            "ensemble.member_converged",
                            member=member,
                            step=self.step_count,
                            residual=res,
                        )
                else:
                    keep.append(row)
        else:
            keep = list(range(B))
        if len(keep) < B:
            if keep:
                self._repack(keep)
                u_now = np.ascontiguousarray(u_now[np.asarray(keep)])
            else:
                self._active = []
        return u_now


def run_ensemble(
    spec: EnsembleSpec,
    n_steps: int,
    *,
    check_every: int = 0,
    tol: float = 0.0,
    observer: ObserverLike = NULL_OBSERVER,
) -> EnsembleResult:
    """Construct a :class:`BatchedEnsemble` for *spec* and run it."""
    return BatchedEnsemble(spec, observer=observer).run(
        n_steps, check_every=check_every, tol=tol
    )
