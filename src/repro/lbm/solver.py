"""The single-process multicomponent LBM solver.

One :meth:`MulticomponentLBM.step` performs the computational phase of the
paper's Figure 2 pseudocode (lines 4-17):

1. collision of every component toward its forced equilibrium (using the
   velocity computed at the end of the previous phase),
2. streaming,
3. bounce-back at the solid walls,
4. moment update (densities and momenta),
5. interparticle (Shan-Chen) + hydrophobic wall + body forces,
6. common velocity and per-component equilibrium velocities for the next
   collision.

The parallel driver in :mod:`repro.parallel.driver` runs the same sequence
on x-slabs, inserting halo exchanges where the pseudocode has its two
communication points.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.lbm.backends import create_backend, resolve_backend_name
from repro.lbm.components import ComponentSpec
from repro.lbm.equilibrium import equilibrium
from repro.lbm.forces import WallForceSpec, body_force_field, wall_force_field
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import Lattice, D3Q19
from repro.lbm.macroscopic import mixture_velocity
from repro.lbm.obstacles import momentum_exchange
from repro.lbm.shan_chen import (
    PsiFunction,
    psi_identity,
    validate_g_matrix,
)
from repro.obs.observer import NULL_OBSERVER, ObserverLike, resolve_observer

if TYPE_CHECKING:  # repro.scenarios imports repro.lbm; never the reverse
    from repro.scenarios.base import Scenario


@dataclass(frozen=True)
class LBMConfig:
    """Full configuration of a multicomponent LBM run.

    Attributes
    ----------
    geometry:
        Channel geometry (grid shape, wall axes).
    components:
        One :class:`ComponentSpec` per fluid component.
    g_matrix:
        Symmetric S-C coupling matrix, shape ``(C, C)``.  A positive
        off-diagonal entry makes the components mutually repulsive
        (immiscible), as in the paper's water/air system.
    lattice:
        Velocity set; must match the geometry dimension.
    wall_force:
        Optional hydrophobic wall force applied (as an acceleration) to the
        named component.  ``None`` disables it (the paper's "no wall
        forces" control in Figure 7).
    body_acceleration:
        Uniform driving acceleration (pressure-gradient surrogate), applied
        to every component; typically along +x.
    psi:
        Pseudopotential function for the S-C force.
    collision:
        ``"bgk"`` (the paper's LBGK, default) or ``"mrt"`` (multiple
        relaxation times, D2Q9 only; shear rate taken from each
        component's tau so the viscosity is unchanged).
    adhesion:
        Optional Shan-Chen wall-adhesion couplings, one per component
        (``g_ads > 0`` repels from the walls, ``< 0`` wets them) — the
        standard S-C wettability mechanism, as an alternative to the
        paper's explicit ``wall_force`` (see :mod:`repro.lbm.adhesion`).
    scenario:
        Optional pluggable wall physics (see :mod:`repro.scenarios`):
        supplies the solid mask and the per-site wall acceleration for
        its target component.  Mutually exclusive with ``wall_force`` —
        the ``homogeneous`` scenario reproduces that path bit-for-bit.
    backend:
        Kernel-backend name (``"reference"``, ``"fused"``, ``"arrayapi"``
        or ``"batched"``; see :mod:`repro.lbm.backends`).  ``None``
        (default) consults the
        ``REPRO_LBM_BACKEND`` environment variable and falls back to
        ``"reference"``; the resolved name is stored, so parallel ranks
        built from the same config always agree on the backend.
    """

    geometry: ChannelGeometry
    components: tuple[ComponentSpec, ...]
    g_matrix: np.ndarray
    lattice: Lattice = D3Q19
    wall_force: WallForceSpec | None = None
    body_acceleration: tuple[float, ...] | None = None
    psi: PsiFunction = field(default=psi_identity)
    collision: str = "bgk"
    adhesion: tuple[float, ...] | None = None
    scenario: "Scenario | None" = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.lattice.D != self.geometry.ndim:
            raise ValueError(
                f"lattice {self.lattice.name} is {self.lattice.D}-D but the "
                f"geometry is {self.geometry.ndim}-D"
            )
        if not self.components:
            raise ValueError("at least one component is required")
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names: {names}")
        g = validate_g_matrix(np.asarray(self.g_matrix), len(self.components))
        object.__setattr__(self, "g_matrix", g)
        if self.wall_force is not None and self.wall_force.component not in names:
            raise ValueError(
                f"wall force targets unknown component "
                f"{self.wall_force.component!r}; have {names}"
            )
        if self.body_acceleration is not None:
            acc = tuple(float(a) for a in self.body_acceleration)
            if len(acc) != self.geometry.ndim:
                raise ValueError(
                    f"body_acceleration must have {self.geometry.ndim} entries"
                )
            object.__setattr__(self, "body_acceleration", acc)
        if self.collision not in ("bgk", "mrt"):
            raise ValueError(
                f"collision must be 'bgk' or 'mrt', got {self.collision!r}"
            )
        if self.collision == "mrt" and (self.lattice.D, self.lattice.Q) != (2, 9):
            raise ValueError("MRT collision is implemented for D2Q9 only")
        if self.adhesion is not None:
            adh = tuple(float(a) for a in self.adhesion)
            if len(adh) != len(self.components):
                raise ValueError(
                    f"adhesion needs one coupling per component "
                    f"({len(self.components)}), got {len(adh)}"
                )
            object.__setattr__(self, "adhesion", adh)
        if self.scenario is not None:
            if self.wall_force is not None:
                raise ValueError(
                    "pass either wall_force or scenario, not both — the "
                    "scenario owns the wall physics"
                )
            if self.scenario.component not in names:
                raise ValueError(
                    f"scenario targets unknown component "
                    f"{self.scenario.component!r}; have {names}"
                )
        object.__setattr__(self, "backend", resolve_backend_name(self.backend))

    @property
    def n_components(self) -> int:
        return len(self.components)

    def component_index(self, name: str) -> int:
        for i, c in enumerate(self.components):
            if c.name == name:
                return i
        raise KeyError(name)


class MulticomponentLBM:
    """Single-process solver for the configured multicomponent system.

    State arrays (all float64):

    - ``f``:      populations, shape ``(C, Q, *S)``
    - ``rho``:    component densities, ``(C, *S)``
    - ``mom``:    component momenta, ``(C, D, *S)``
    - ``force``:  total force on each component, ``(C, D, *S)``
    - ``u_eq``:   per-component equilibrium velocities, ``(C, D, *S)``
    """

    def __init__(
        self, config: LBMConfig, observer: ObserverLike = NULL_OBSERVER
    ):
        self.config = config
        #: Observability handle (:data:`repro.obs.NULL_OBSERVER` unless a
        #: real observer is passed or ``REPRO_OBS_TRACE`` is set); a
        #: disabled observer keeps the step loop untouched.
        self.observer = resolve_observer(observer)
        lat = config.lattice
        geo = config.geometry
        shape = geo.shape
        n_comp = config.n_components

        scenario = config.scenario
        self.solid = (
            scenario.solid_mask(geo) if scenario is not None else geo.solid_mask()
        )
        self.fluid = ~self.solid
        self._fluid_f = self.fluid.astype(np.float64)

        self.taus = np.array([c.tau for c in config.components])
        self.masses = np.array([c.mass for c in config.components])

        # Static acceleration fields (force per unit density), per component.
        self._accel = np.zeros((n_comp, lat.D) + shape, dtype=np.float64)
        if config.wall_force is not None:
            target = config.component_index(config.wall_force.component)
            self._accel[target] += wall_force_field(geo, config.wall_force)
        if scenario is not None:
            target = config.component_index(scenario.component)
            self._accel[target] += scenario.wall_accel(geo)
        if config.body_acceleration is not None:
            body = body_force_field(geo, config.body_acceleration)
            for c in range(n_comp):
                self._accel[c] += body

        # Population arrays: uniform rest equilibrium on fluid nodes,
        # zero inside the solid (so total fluid mass is exactly conserved).
        self.f = np.zeros((n_comp, lat.Q) + shape, dtype=np.float64)
        zero_u = np.zeros((lat.D,) + shape, dtype=np.float64)
        for ci, comp in enumerate(config.components):
            rho_init = np.where(self.fluid, comp.rho_init / comp.mass, 0.0)
            equilibrium(rho_init, zero_u, lat, out=self.f[ci])

        self.rho = np.zeros((n_comp,) + shape, dtype=np.float64)
        self.mom = np.zeros((n_comp, lat.D) + shape, dtype=np.float64)
        self.force = np.zeros_like(self.mom)
        self.u_eq = np.zeros_like(self.mom)

        #: Kernel backend (owns the hot-loop scratch; see
        #: :mod:`repro.lbm.backends`).  With an enabled observer it is
        #: wrapped for per-kernel timing; disabled runs get the raw
        #: backend, so the hot path pays nothing.
        self.backend = create_backend(
            config, shape, self.solid, observer=self.observer
        )

        self._wall_field: np.ndarray | None = None
        if config.adhesion is not None:
            from repro.lbm.adhesion import wall_indicator_field

            self._wall_field = wall_indicator_field(geo, lat)

        self._mrt: list | None = None
        if config.collision == "mrt":
            from repro.lbm.mrt import MRTCollision, MRTRelaxationRates

            self._mrt = [
                MRTCollision(MRTRelaxationRates.from_tau(comp.tau), lat)
                for comp in config.components
            ]

        #: Hooks called after streaming + bounce-back, before the moment
        #: update — the insertion point for open boundary conditions
        #: (see :mod:`repro.lbm.open_boundary`).  Each receives the solver.
        self.post_stream_hooks: list[Callable[["MulticomponentLBM"], None]] = []

        #: When True, :attr:`last_wall_momentum` is updated every step
        #: with the momentum-exchange force on all solid nodes (used for
        #: obstacle drag; see :mod:`repro.lbm.obstacles`).
        self.track_wall_momentum = False
        self.last_wall_momentum: np.ndarray | None = None

        self.step_count = 0
        self.update_moments_and_forces()

    # ----------------------------------------------------------- (re)init
    def initialize_equilibrium(
        self, rhos: np.ndarray, u: np.ndarray
    ) -> None:
        """Reset the populations to the equilibrium of the given
        macroscopic state (used for validation flows like the Taylor-Green
        vortex, and by checkpoint restore).

        Parameters
        ----------
        rhos:
            Component mass densities, shape ``(C, *S)``; zeroed at solid
            nodes internally.
        u:
            Shared initial velocity, shape ``(D, *S)``.
        """
        lat = self.config.lattice
        rhos = np.asarray(rhos, dtype=np.float64)
        u = np.asarray(u, dtype=np.float64)
        if rhos.shape != self.rho.shape:
            raise ValueError(f"rhos must have shape {self.rho.shape}")
        if u.shape != (lat.D,) + self.config.geometry.shape:
            raise ValueError(
                f"u must have shape {(lat.D,) + self.config.geometry.shape}"
            )
        for ci, comp in enumerate(self.config.components):
            n = np.where(self.fluid, rhos[ci] / comp.mass, 0.0)
            equilibrium(n, u * self._fluid_f, lat, out=self.f[ci])
        self.step_count = 0
        self.update_moments_and_forces()

    def restore_state(self, f: np.ndarray, step: int) -> None:
        """Adopt checkpointed populations and step counter.

        All derived fields (densities, momenta, forces, equilibrium
        velocities) are recomputed from *f*, exactly as at the end of a
        phase — so the next :meth:`step` continues bit-identically to a
        run that was never interrupted (see :mod:`repro.ckpt`).
        """
        f = np.asarray(f, dtype=np.float64)
        if f.shape != self.f.shape:
            raise ValueError(
                f"checkpointed f has shape {f.shape}, solver expects "
                f"{self.f.shape}"
            )
        step = int(step)
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        self.f = f.copy()
        self.step_count = step
        self.update_moments_and_forces()

    # ------------------------------------------------------------ energy
    def kinetic_energy(self) -> float:
        """Total kinetic energy ``sum rho |u|^2 / 2`` over fluid nodes."""
        u = self.velocity()
        rho = self.mixture_density()
        usq = np.einsum("d...,d...->...", u, u)
        return float(0.5 * (rho * usq)[self.fluid].sum())

    # ------------------------------------------------------------------ steps
    def step(self) -> None:
        """Advance one LBM phase (collision, streaming, walls, moments,
        forces, velocities)."""
        if self.observer.enabled:
            # Histogram-only span: per-step durations are summarized in
            # the metrics snapshot, not spelled out event-by-event.
            with self.observer.span("solver.step", emit=False):
                self._step_once()
        else:
            self._step_once()

    def _step_once(self) -> None:
        self.collide()
        self.stream_and_bounce()
        self.update_moments_and_forces()
        self.step_count += 1

    def run(
        self,
        n_steps: int,
        *,
        callback: Callable[["MulticomponentLBM"], None] | None = None,
        check_interval: int = 0,
        checkpoint_every: int = 0,
        checkpoint_store=None,
    ) -> None:
        """Run *n_steps* phases; optionally call *callback(self)* after each
        and check numerical health every *check_interval* steps (0 = never).

        Checkpointing: with *checkpoint_store* (a
        :class:`repro.ckpt.CheckpointStore`) and ``checkpoint_every > 0``,
        the full state is snapshotted whenever the absolute step count hits
        a multiple of the interval.  When neither is given, the
        ``REPRO_CKPT_*`` environment variables are consulted (see
        :mod:`repro.ckpt.policy`); with ``REPRO_CKPT_RESUME`` set the run
        restores the latest good checkpoint and treats *n_steps* as the
        TOTAL step target, executing only the remainder.
        """
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every and checkpoint_store is None:
            raise ValueError("checkpoint_every > 0 needs a checkpoint_store")
        store = checkpoint_store
        every = checkpoint_every
        target = self.step_count + n_steps
        if store is None:
            # Lazy import: repro.ckpt is only paid for when enabled.
            from repro.ckpt.policy import policy_from_env

            policy = policy_from_env()
            if policy is not None:
                policy_store = policy.store_for(
                    self.config, observer=self.observer
                )
                store = policy_store
                every = policy.every
                if policy.resume:
                    manifest = policy_store.latest_good()
                    if manifest is not None:
                        policy_store.restore_solver(self, manifest=manifest)
                        target = n_steps  # resumed: n_steps is the total
        remaining = max(0, target - self.step_count)
        for i in range(remaining):
            self.step()
            if check_interval and (i + 1) % check_interval == 0:
                self.check_health()
            if callback is not None:
                callback(self)
            if every and store is not None and self.step_count % every == 0:
                store.save_solver(self)

    def collide(self) -> None:
        """Relax every component toward its forced equilibrium (BGK or
        MRT per the configuration), restricted to fluid nodes."""
        if self._mrt is not None:
            for ci, comp in enumerate(self.config.components):
                self._mrt[ci].collide(
                    self.f[ci],
                    self.rho[ci] / comp.mass,
                    self.u_eq[ci],
                    fluid_mask=self._fluid_f,
                )
            return
        self.backend.collide_bgk(self.f, self.rho, self.u_eq, self._fluid_f)

    def stream_and_bounce(self) -> None:
        """Streaming plus full-way bounce-back at the solid walls, then any
        registered open-boundary hooks."""
        lat = self.config.lattice
        self.f = f = self.backend.stream(self.f)
        if self.track_wall_momentum:
            # Momentum exchange reads the post-stream, pre-bounce state.
            wall_momentum = np.zeros(lat.D, dtype=np.float64)
            for ci, comp in enumerate(self.config.components):
                wall_momentum += comp.mass * momentum_exchange(
                    f[ci], self.solid, lat
                )
            self.last_wall_momentum = wall_momentum
        self.backend.bounce_back(f)
        for hook in self.post_stream_hooks:
            hook(self)

    def update_moments_and_forces(self) -> None:
        """Recompute densities, momenta, forces and equilibrium velocities
        from the current populations."""
        cfg = self.config
        self.backend.moments(self.f, self.rho, self.mom)
        self.backend.forces_and_velocities(
            self.rho,
            self.mom,
            self.force,
            self.u_eq,
            accel=self._accel,
            psi_mask=self._fluid_f,  # neutral walls: psi = 0 inside the solid
            vel_mask=self._fluid_f,  # keep solid nodes at rest
            adhesion=cfg.adhesion if self._wall_field is not None else None,
            wall_field=self._wall_field,
        )

    # ------------------------------------------------------------ diagnostics
    def mixture_density(self) -> np.ndarray:
        """Total mass density, shape ``(*S,)``."""
        return self.rho.sum(axis=0)

    def velocity(self) -> np.ndarray:
        """Physical mixture velocity (with half-force correction),
        shape ``(D, *S)``."""
        return mixture_velocity(self.rho, self.mom, self.force)

    def total_mass(self, component: int | None = None) -> float:
        """Total mass of one component (or all) — conserved by the update."""
        if component is None:
            return float(self.rho.sum())
        return float(self.rho[component].sum())

    def check_health(self, max_velocity: float = 0.4) -> None:
        """Raise ``FloatingPointError`` if the state went non-finite or the
        flow became supersonic-ish (|u| approaching lattice sound speed)."""
        if not np.isfinite(self.f).all():
            raise FloatingPointError(
                f"non-finite populations at step {self.step_count}"
            )
        u = self.velocity()
        # Solid nodes transiently hold bounced-back populations whose formal
        # "velocity" is meaningless; health only concerns fluid nodes.
        umax = float(np.abs(u[:, self.fluid]).max()) if self.fluid.any() else 0.0
        if umax > max_velocity:
            raise FloatingPointError(
                f"velocity {umax:.3f} exceeds stability bound {max_velocity} "
                f"at step {self.step_count}"
            )
