"""Solid-wall boundary condition: full-way bounce-back.

After streaming, populations that propagated *into* a solid node are
reversed in place (f_k <- f_opp(k) at solid nodes); on the next streaming
step they travel back into the fluid.  The effective no-slip surface sits
half a lattice spacing outside the first fluid node, which is the standard
interpretation used when extracting wall distances (see
:mod:`repro.lbm.geometry`).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice


def bounce_back(f: np.ndarray, solid_mask: np.ndarray, lattice: Lattice) -> None:
    """Reverse all populations at solid nodes, in place.

    Parameters
    ----------
    f:
        Populations, shape ``(Q, *S)``.
    solid_mask:
        Boolean field of shape ``(*S,)``, True at solid (wall) nodes.
    """
    if solid_mask.shape != f.shape[1:]:
        raise ValueError(
            f"solid_mask shape {solid_mask.shape} != spatial shape {f.shape[1:]}"
        )
    if not solid_mask.any():
        return
    # Only the moving directions change under reflection (the rest
    # population is its own opposite), so gather/scatter just those.
    rows = lattice.moving[:, None]
    at_solid = f[rows, solid_mask]  # (Q_moving, n_solid) copy
    f[rows, solid_mask] = at_solid[lattice.moving_opp]


def bounce_back_component_stack(
    f: np.ndarray, solid_mask: np.ndarray, lattice: Lattice
) -> None:
    """Bounce-back for a component stack ``(C, Q, *S)``."""
    for comp in range(f.shape[0]):
        bounce_back(f[comp], solid_mask, lattice)
