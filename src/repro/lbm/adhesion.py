"""Shan-Chen wall adhesion: the standard wettability mechanism.

The paper models hydrophobicity by an *explicit* exponentially decaying
wall force.  The S-C literature's usual alternative couples the fluid to
the solid through the same interaction kernel, with the wall acting as a
phantom phase:

    F_ads,σ(x) = -g_ads,σ ψ_σ(x) Σ_k w_k s(x + c_k) c_k

where ``s`` is the solid indicator.  ``g_ads > 0`` repels the component
from the wall (hydrophobic for the water), ``g_ads < 0`` attracts it
(hydrophilic/wetting).  Because ``s`` is static, the lattice sum is a
precomputable vector field supported on the first fluid layer.

This module provides the field and the force; the solver applies it when
``LBMConfig.adhesion`` is set.  The ``ext`` benchmark compares slip from
this mechanism against the paper's explicit force.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import Lattice
from repro.lbm.shan_chen import shifted_psi_sum


def wall_indicator_field(
    geometry: ChannelGeometry, lattice: Lattice
) -> np.ndarray:
    """``S(x) = Σ_k w_k s(x + c_k) c_k`` — the lattice gradient of the
    solid indicator; nonzero only on fluid nodes adjacent to a wall,
    pointing *toward* the wall.  Shape ``(D, *S)``."""
    solid = geometry.solid_mask().astype(np.float64)
    field = shifted_psi_sum(solid, lattice)
    field *= geometry.fluid_mask()  # only meaningful on fluid nodes
    return field


def adhesion_force(
    psi: np.ndarray,
    g_ads: float,
    wall_field: np.ndarray,
) -> np.ndarray:
    """``F = -g_ads * psi(x) * S(x)``, shape ``(D, *S)``.

    Positive *g_ads* pushes the component away from the wall (the wall
    indicator points toward the wall and the sign flips it).
    """
    return -g_ads * psi[None] * wall_field


def contact_density_ratio(
    rho: np.ndarray, geometry: ChannelGeometry, axis: int = 1
) -> float:
    """Wall-adjacent density over centerline density along *axis* —
    the scalar wettability observable: < 1 for a repelled (non-wetting)
    component, > 1 for an attracted (wetting) one."""
    n = geometry.shape[axis]
    t = geometry.wall_thickness
    first_fluid = [slice(None)] * geometry.ndim
    first_fluid[axis] = t
    center = [slice(None)] * geometry.ndim
    center[axis] = n // 2
    wall_rho = float(rho[tuple(first_fluid)].mean())
    center_rho = float(rho[tuple(center)].mean())
    if center_rho == 0.0:
        raise ValueError("zero centerline density")
    return wall_rho / center_rho
