"""Checkpointing: save and restore a solver's full state.

The paper's production runs take days to weeks; any such code needs
restartability.  A checkpoint stores the populations (the complete state
— moments and forces are derived) plus enough configuration fingerprint
to refuse restoring into an incompatible solver.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.ckpt.io import atomic_savez
from repro.lbm.solver import LBMConfig, MulticomponentLBM

#: Bumped when the on-disk layout changes.
CHECKPOINT_FORMAT = 1


def _config_fingerprint(config: LBMConfig) -> dict:
    """The compatibility-relevant part of a configuration."""
    return {
        "format": CHECKPOINT_FORMAT,
        "lattice": config.lattice.name,
        "shape": list(config.geometry.shape),
        "wall_axes": list(config.geometry.wall_axes),
        "wall_thickness": config.geometry.wall_thickness,
        "components": [
            {"name": c.name, "tau": c.tau, "mass": c.mass}
            for c in config.components
        ],
    }


def save_checkpoint(solver: MulticomponentLBM, path: str | Path) -> None:
    """Write the solver state to *path* (``.npz``)."""
    path = Path(path)
    meta = _config_fingerprint(solver.config)
    atomic_savez(
        path,
        f=solver.f,
        step_count=np.int64(solver.step_count),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )


def load_checkpoint(solver: MulticomponentLBM, path: str | Path) -> None:
    """Restore the state saved by :func:`save_checkpoint` into *solver*.

    Raises ``ValueError`` if the checkpoint was written by an incompatible
    configuration (different lattice, grid, or components).
    """
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        expected = _config_fingerprint(solver.config)
        if meta != expected:
            raise ValueError(
                f"checkpoint incompatible with this solver:\n"
                f"  checkpoint: {meta}\n  solver:     {expected}"
            )
        f = data["f"]
        if f.shape != solver.f.shape:
            raise ValueError(
                f"population shape {f.shape} != solver {solver.f.shape}"
            )
        solver.f[:] = f
        solver.step_count = int(data["step_count"])
    solver.update_moments_and_forces()


def roundtrip_equal(a: MulticomponentLBM, b: MulticomponentLBM) -> bool:
    """True when two solvers hold bitwise-identical states (test helper)."""
    return (
        a.step_count == b.step_count
        and bool(np.array_equal(a.f, b.f))
        and bool(np.array_equal(a.rho, b.rho))
    )
