"""Per-kernel timing instrumentation for any kernel backend.

:class:`InstrumentedBackend` wraps a concrete backend (``reference``,
``fused``, or any future registration) and times every hot-kernel call
into the observer's metrics registry, without the backends themselves
knowing about observability:

- ``kernel.<backend>.<kernel>`` — duration histogram (per call), whose
  harmonic mean mirrors the remapper's load-index filter;
- ``kernel.<backend>.<kernel>.points`` — counter of lattice points
  processed, so ``total / points`` yields the µs/point unit of
  ``BENCH_kernels.json`` and the report CLI's kernel table.

The wrapper is only ever constructed for an *enabled* observer (see
:func:`repro.lbm.backends.registry.create_backend`); a disabled run gets
the raw backend and pays nothing.
"""

from __future__ import annotations

import time

import numpy as np

from repro.lbm.backends.registry import KernelBackend

#: The hot kernels the wrapper times (method names of the backend ABC).
KERNEL_NAMES = (
    "stream",
    "bounce_back",
    "equilibrium",
    "collide_bgk",
    "shan_chen_force",
    "moments",
    "forces_and_velocities",
)


class InstrumentedBackend:
    """Duck-typed :class:`KernelBackend` proxy adding per-kernel timing.

    Exposes the wrapped backend's attributes (lattice, shape, masks, …)
    so diagnostics that poke at backend internals keep working; only the
    kernel methods are intercepted.
    """

    def __init__(self, inner: KernelBackend, observer) -> None:
        if not observer.enabled:
            raise ValueError(
                "InstrumentedBackend requires an enabled observer; "
                "disabled runs should use the raw backend"
            )
        self.inner = inner
        self.observer = observer
        prefix = f"kernel.{inner.name}"
        # Pre-resolve instruments so per-call overhead is two lookups.
        self._hists = {
            k: observer.histogram(f"{prefix}.{k}") for k in KERNEL_NAMES
        }
        self._points = {
            k: observer.counter(f"{prefix}.{k}.points") for k in KERNEL_NAMES
        }
        # Points processed per call: every kernel sweeps the full local
        # grid once per component (stream/bounce/collide/moments), or once
        # total (equilibrium over one field, S-C force over all C fields).
        n = inner.n_points
        c = inner.n_components
        self._call_points = {
            "stream": n * c,
            "bounce_back": n * c,
            "equilibrium": n,
            "collide_bgk": n * c,
            "shan_chen_force": n * c,
            "moments": n * c,
            "forces_and_velocities": n * c,
        }

    @property
    def name(self) -> str:
        return self.inner.name

    def __getattr__(self, attr: str):
        return getattr(self.inner, attr)

    def _timed(self, kernel: str, fn, *args, **kwargs):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        self._hists[kernel].observe(time.perf_counter() - t0)
        self._points[kernel].add(self._call_points[kernel])
        return result

    # ------------------------------------------------------------- kernels
    def stream(self, f: np.ndarray) -> np.ndarray:
        return self._timed("stream", self.inner.stream, f)

    def bounce_back(self, f: np.ndarray) -> None:
        return self._timed("bounce_back", self.inner.bounce_back, f)

    def equilibrium(self, rho_n, u, out=None):
        return self._timed("equilibrium", self.inner.equilibrium, rho_n, u, out)

    def collide_bgk(self, f, rho, u_eq, mask) -> None:
        return self._timed("collide_bgk", self.inner.collide_bgk, f, rho,
                           u_eq, mask)

    def shan_chen_force(self, psis, out=None):
        return self._timed("shan_chen_force", self.inner.shan_chen_force,
                           psis, out)

    def moments(self, f, rho_out, mom_out) -> None:
        return self._timed("moments", self.inner.moments, f, rho_out, mom_out)

    def forces_and_velocities(self, rho, mom, force, u_eq, **kwargs):
        return self._timed(
            "forces_and_velocities", self.inner.forces_and_velocities,
            rho, mom, force, u_eq, **kwargs,
        )
