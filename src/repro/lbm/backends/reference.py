"""The ``reference`` backend: the original, readable NumPy kernels.

This backend reproduces the pre-backend solver code paths exactly — the
same functions, the same operation order, the same floating-point
results.  It is the differential-testing baseline for every optimised
backend and the implementation of record for the physics.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.backends.registry import KernelBackend, register_backend
from repro.lbm.boundary import bounce_back
from repro.lbm.equilibrium import equilibrium
from repro.lbm.macroscopic import (
    common_velocity,
    component_density,
    component_momentum,
)
from repro.lbm.shan_chen import interaction_force
from repro.lbm.streaming import stream


@register_backend
class ReferenceBackend(KernelBackend):
    """Per-component loops over the module-level kernels."""

    name = "reference"

    def __init__(self, config, shape, solid_mask):
        super().__init__(config, shape, solid_mask)
        self._feq = np.zeros((self.lattice.Q,) + self.shape, dtype=np.float64)

    def stream(self, f: np.ndarray) -> np.ndarray:
        for ci in range(f.shape[0]):
            stream(f[ci], self.lattice)
        return f

    def bounce_back(self, f: np.ndarray) -> None:
        for ci in range(f.shape[0]):
            bounce_back(f[ci], self.solid_mask, self.lattice)

    def equilibrium(
        self, rho_n: np.ndarray, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        return equilibrium(rho_n, u, self.lattice, out=out)

    def collide_bgk(
        self,
        f: np.ndarray,
        rho: np.ndarray,
        u_eq: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        lat = self.lattice
        for ci in range(self.n_components):
            feq = equilibrium(
                rho[ci] / self.masses[ci], u_eq[ci], lat, out=self._feq
            )
            omega = 1.0 / self.taus[ci]
            # f += omega * (feq - f) on masked nodes only; vectorised with a
            # float mask to avoid fancy-indexing copies in the hot loop.
            feq -= f[ci]
            feq *= omega * mask
            f[ci] += feq

    def shan_chen_force(
        self, psis: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        forces = interaction_force(psis, self.g_matrix, self.lattice)
        if out is None:
            return forces
        out[:] = forces
        return out

    def moments(
        self, f: np.ndarray, rho_out: np.ndarray, mom_out: np.ndarray
    ) -> None:
        lat = self.lattice
        for ci in range(self.n_components):
            rho_out[ci] = component_density(f[ci], self.masses[ci])
            mom_out[ci] = component_momentum(f[ci], lat, self.masses[ci])

    def forces_and_velocities(
        self,
        rho: np.ndarray,
        mom: np.ndarray,
        force: np.ndarray,
        u_eq: np.ndarray,
        *,
        accel: np.ndarray,
        psi_mask: np.ndarray,
        vel_mask: np.ndarray,
        adhesion: tuple[float, ...] | None = None,
        wall_field: np.ndarray | None = None,
    ) -> np.ndarray:
        psis = np.stack([self.psi(rho[ci]) for ci in range(self.n_components)])
        psis *= psi_mask
        sc = self.shan_chen_force(psis)

        force[:] = sc
        force += accel * rho[:, None]
        if adhesion is not None and wall_field is not None:
            for ci, g_ads in enumerate(adhesion):
                if g_ads != 0.0:
                    force[ci] -= g_ads * psis[ci][None] * wall_field

        u_common = common_velocity(rho, mom, self.taus)
        for ci in range(self.n_components):
            safe_rho = np.maximum(rho[ci], 1e-300)
            u_eq[ci] = u_common + self.taus[ci] * force[ci] / safe_rho
            u_eq[ci] *= vel_mask
        return psis
