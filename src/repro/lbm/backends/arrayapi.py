"""The ``arrayapi`` backend: reference kernels on the array-API standard.

Every kernel — moments, equilibrium, Shan-Chen force, collision,
streaming, bounce-back — is written against the array-API namespace
handle from :mod:`repro.lbm.backends.xp` (bound to ``xp`` throughout),
using only operations the standard specifies: ``tensordot``, ``roll``,
``take``, ``where``, ``stack``, ``sum``, ``maximum``, elementwise
arithmetic and in-place operators.  Under the default NumPy binding the
arithmetic is the *same operation sequence* as the ``reference``
backend, so the results are bit-identical (pinned by the exact-equality
differential tests in ``tests/lbm/test_backends.py``); under a CuPy or
torch binding the identical kernel source runs on the accelerator.

Two reference idioms have no array-API spelling and are replaced by
exact equivalents:

- ``np.einsum("d...,d...->...", u, u)`` becomes the explicit
  ``u[0]*u[0] + u[1]*u[1] (+ u[2]*u[2])`` — einsum accumulates the
  contracted axis in index order, so the left-to-right sum is the same
  float sequence;
- the boolean-mask gather/scatter of bounce-back becomes
  ``take`` + ``where`` — pure data movement, no arithmetic.

This backend favours portability over allocation discipline (it keeps
the reference's fresh temporaries); the ``batched`` backend is the
allocation-free ensemble fast path.
"""

from __future__ import annotations

from repro.lbm.backends.registry import KernelBackend, register_backend
from repro.lbm.backends.xp import get_namespace


@register_backend
class ArrayAPIBackend(KernelBackend):
    """Reference operation order, array-API namespace operations."""

    name = "arrayapi"

    def __init__(self, config, shape, solid_mask, *, namespace=None):
        super().__init__(config, shape, solid_mask)
        xp = get_namespace(namespace)
        self.xp = xp
        lat = self.lattice
        # Lattice constants as namespace arrays (no-op copies on NumPy).
        self._cf = xp.asarray(lat.cf, dtype=xp.float64)
        self._cfT = xp.asarray(lat.cf.T, dtype=xp.float64)
        self._w_col = xp.reshape(
            xp.asarray(lat.w, dtype=xp.float64),
            (lat.Q,) + (1,) * len(self.shape),
        )
        self._opp = xp.asarray(lat.opp)
        self._solid = xp.asarray(self.solid_mask)
        self._has_solid = bool(self.solid_mask.any())
        self._inv_cs2 = 1.0 / lat.cs2
        self._spatial_axes = tuple(range(lat.D))
        self._moving = [int(k) for k in lat.moving]
        self._shifts = {
            k: tuple(int(s) for s in lat.shifts[k]) for k in range(lat.Q)
        }
        # (k, shift-of-opp, [(d, w_k * c_k[d]) for nonzero c_k[d]]) per
        # moving direction, in lattice.moving order — the accumulation
        # order of shifted_psi_sum, which the bitwise contract mirrors.
        self._psi_terms = [
            (
                self._shifts[int(lat.opp[k])],
                [
                    (d, float(lat.w[k]) * float(lat.c[k, d]))
                    for d in range(lat.D)
                    if lat.c[k, d] != 0
                ],
            )
            for k in self._moving
        ]
        self._g_rows = xp.asarray(self.g_matrix, dtype=xp.float64)
        self._taus_f = [float(t) for t in self.taus]
        self._masses_f = [float(m) for m in self.masses]
        inv_tau = 1.0 / self.taus
        self._inv_tau_col = xp.reshape(
            xp.asarray(inv_tau, dtype=xp.float64),
            (self.n_components,) + (1,) * len(self.shape),
        )
        self._feq = xp.zeros((lat.Q,) + self.shape, dtype=xp.float64)

    # ------------------------------------------------------------ streaming
    def stream(self, f):
        xp = self.xp
        for ci in range(f.shape[0]):
            fc = f[ci]
            for k in self._moving:
                fc[k, ...] = xp.roll(
                    fc[k], self._shifts[k], axis=self._spatial_axes
                )
        return f

    def bounce_back(self, f):
        if not self._has_solid:
            return
        xp = self.xp
        for ci in range(f.shape[0]):
            fc = f[ci]
            # f_k <- f_opp(k) at solid nodes: a full reversed copy
            # selected through the solid mask (the rest population is its
            # own opposite, so row 0 passes through unchanged).
            reversed_f = xp.take(fc, self._opp, axis=0)
            fc[...] = xp.where(self._solid, reversed_f, fc)

    # ---------------------------------------------------------- equilibrium
    def equilibrium(self, rho_n, u, out=None):
        xp = self.xp
        lat = self.lattice
        if u.shape != (lat.D,) + tuple(rho_n.shape):
            raise ValueError(
                f"u shape {u.shape} != {(lat.D,) + tuple(rho_n.shape)}"
            )
        inv_cs2 = self._inv_cs2
        cu = xp.tensordot(self._cf, u, axes=([1], [0]))
        usq = u[0] * u[0]
        for d in range(1, lat.D):
            usq = usq + u[d] * u[d]
        if out is None:
            out = xp.empty((lat.Q,) + tuple(rho_n.shape), dtype=xp.float64)
        out[...] = cu * cu
        out *= 0.5 * inv_cs2 * inv_cs2
        out += cu * inv_cs2
        out += 1.0
        out -= (0.5 * inv_cs2) * usq
        out *= rho_n
        out *= self._w_col
        return out

    # ------------------------------------------------------------ collision
    def collide_bgk(self, f, rho, u_eq, mask):
        for ci in range(self.n_components):
            feq = self.equilibrium(
                rho[ci] / self._masses_f[ci], u_eq[ci], out=self._feq
            )
            omega = 1.0 / self._taus_f[ci]
            feq -= f[ci]
            feq *= omega * mask
            f[ci] += feq

    # ------------------------------------------------------------ Shan-Chen
    def _shifted_psi_sum(self, psi):
        """``sum_k w_k psi(x + c_k) c_k`` in ``lattice.moving`` order."""
        xp = self.xp
        out = xp.zeros((self.lattice.D,) + tuple(psi.shape), dtype=xp.float64)
        for shift_opp, terms in self._psi_terms:
            shifted = xp.roll(psi, shift_opp, axis=self._spatial_axes)
            for d, coeff in terms:
                out[d, ...] += coeff * shifted
        return out

    def shan_chen_force(self, psis, out=None):
        xp = self.xp
        sums = xp.stack(
            [self._shifted_psi_sum(psis[c]) for c in range(self.n_components)]
        )
        forces = xp.zeros_like(sums)
        for sigma in range(self.n_components):
            coupled = xp.tensordot(self._g_rows[sigma], sums, axes=([0], [0]))
            forces[sigma, ...] = -psis[sigma][None, ...] * coupled
        if out is None:
            return forces
        out[...] = forces
        return out

    # -------------------------------------------------------------- moments
    def moments(self, f, rho_out, mom_out):
        xp = self.xp
        for ci in range(self.n_components):
            mass = self._masses_f[ci]
            rho_out[ci, ...] = mass * xp.sum(f[ci], axis=0)
            mom_out[ci, ...] = mass * xp.tensordot(
                self._cfT, f[ci], axes=([1], [0])
            )

    def forces_and_velocities(
        self,
        rho,
        mom,
        force,
        u_eq,
        *,
        accel,
        psi_mask,
        vel_mask,
        adhesion=None,
        wall_field=None,
    ):
        xp = self.xp
        psis = xp.stack(
            [self.psi(rho[ci]) for ci in range(self.n_components)]
        )
        psis *= psi_mask
        sc = self.shan_chen_force(psis)

        force[...] = sc
        force += accel * rho[:, None]
        if adhesion is not None and wall_field is not None:
            for ci, g_ads in enumerate(adhesion):
                if g_ads != 0.0:
                    force[ci, ...] -= g_ads * psis[ci][None] * wall_field

        inv_tau = self._inv_tau_col
        denom = xp.sum(rho * inv_tau, axis=0)
        numer = xp.sum(mom * inv_tau[:, None], axis=0)
        u_common = numer / xp.maximum(denom, 1e-300)
        for ci in range(self.n_components):
            safe_rho = xp.maximum(rho[ci], 1e-300)
            u_eq[ci, ...] = u_common + self._taus_f[ci] * force[ci] / safe_rho
            u_eq[ci, ...] *= vel_mask
        return psis
