"""Kernel-backend abstraction and registry.

A :class:`KernelBackend` owns the *implementation* of the five LBM hot
kernels — streaming, equilibrium, collision (BGK), Shan-Chen force, and
the moment/force/velocity update — for one solver instance.  The physics
(update order, boundary handling, remapping) stays in
:class:`~repro.lbm.solver.MulticomponentLBM` and
:class:`~repro.parallel.driver.ParallelLBM`; backends only decide *how*
each kernel touches memory.

Four backends ship with the package:

``reference``
    The original NumPy kernels, unchanged — per-component loops,
    ``np.roll`` streaming, fresh temporaries.  Always correct, easy to
    read, the baseline every optimisation is differentially tested
    against.

``fused``
    Allocation-free hot path: double-buffered slice streaming, fused
    in-place collide+equilibrium, batched BLAS moments, and pair-folded
    Shan-Chen central differences over a preallocated scratch pool
    (see :mod:`repro.lbm.backends.fused`).

``arrayapi``
    The reference operation order written against the array-API
    namespace handle (:mod:`repro.lbm.backends.xp`) — bit-identical to
    ``reference`` under the default NumPy binding, portable to
    accelerator namespaces (see :mod:`repro.lbm.backends.arrayapi`).

``batched``
    Stacked-ensemble kernels: N independent simulations as one
    ``(N, C, Q, *S)`` array pass with per-member coupling/forcing
    parameters; also usable as a single-run backend at batch size 1
    (see :mod:`repro.lbm.backends.batched` and
    :mod:`repro.lbm.ensemble`).

Selection: ``LBMConfig(backend="fused")`` explicitly, or the
``REPRO_LBM_BACKEND`` environment variable as the default for configs
that do not name a backend.  All validation (g-matrix symmetry, shape
checks) happens at configuration/construction time, never per step:
``LBMConfig.__post_init__`` validates the coupling matrix and resolves
the backend name once, so :func:`create_backend` and the
:class:`KernelBackend` constructor trust the config — the ensemble
engine can rebuild backends inside a sweep without re-paying
validation or environment reads.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, ClassVar

import numpy as np

from repro.config import ENV_BACKEND, from_env
from repro.lbm.lattice import Lattice
from repro.obs.observer import NULL_OBSERVER, ObserverLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (solver imports us)
    from repro.lbm.solver import LBMConfig

#: Environment variable consulted when a config does not name a backend.
#: Parsed by :mod:`repro.config`; re-exported here for compatibility.
BACKEND_ENV_VAR = ENV_BACKEND

#: Fallback when neither the config nor the environment chooses.
DEFAULT_BACKEND = "reference"

_REGISTRY: dict[str, type["KernelBackend"]] = {}


def register_backend(cls: type["KernelBackend"]) -> type["KernelBackend"]:
    """Class decorator: add *cls* to the registry under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"backend class {cls.__name__} needs a `name` string")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def available_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve an explicit/None backend name to a registered one.

    Resolution order: explicit *name* -> ``$REPRO_LBM_BACKEND`` ->
    ``"reference"``.  Raises ``ValueError`` for unknown names so typos in
    either channel fail loudly at configuration time.
    """
    if name is None:
        name = from_env().backend or DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown LBM backend {name!r}; available: {available_backends()}"
        )
    return name


def get_backend_class(name: str | None = None) -> type["KernelBackend"]:
    """Look up a backend class by (resolved) name."""
    return _REGISTRY[resolve_backend_name(name)]


def create_backend(
    config: "LBMConfig",
    shape: tuple[int, ...],
    solid_mask: np.ndarray,
    observer: ObserverLike = NULL_OBSERVER,
) -> "KernelBackend":
    """Instantiate the backend the config selects, for a (local) grid.

    Parameters
    ----------
    config:
        The run configuration; supplies the lattice, component taus and
        masses, the coupling matrix and the psi function.
    shape:
        *Local* spatial grid shape — the full channel for the sequential
        solver, the slab (with ghost planes) for a parallel rank.  Scratch
        buffers are sized for it, so parallel ranks rebuild their backend
        after plane migration.
    solid_mask:
        Boolean solid-node field of that shape (bounce-back support).
    observer:
        :class:`repro.obs.Observer` or the default
        :data:`~repro.obs.NULL_OBSERVER`.  When enabled, the backend is
        wrapped in an :class:`~repro.lbm.backends.instrumented.
        InstrumentedBackend` that times every kernel call; when disabled
        the raw backend is returned and the hot path is untouched.
    """
    # Fast path: configs built through LBMConfig.__post_init__ carry an
    # already-resolved backend name, so skip the environment read that
    # resolve_backend_name would repeat (hoisted out of ensemble loops).
    name = getattr(config, "backend", None)
    cls = _REGISTRY.get(name) if name is not None else None
    if cls is None:
        cls = get_backend_class(name)
    backend = cls(config, shape, solid_mask)
    if observer is not None and observer.enabled:
        from repro.lbm.backends.instrumented import InstrumentedBackend

        return InstrumentedBackend(backend, observer)
    return backend


class KernelBackend(abc.ABC):
    """The five hot kernels of one LBM solver instance.

    Array-shape conventions (C components, Q directions, S spatial grid):

    - populations ``f``: ``(C, Q, *S)``
    - densities ``rho``: ``(C, *S)``, momenta/forces/velocities:
      ``(C, D, *S)``
    - masks are float64 fields of shape broadcastable to ``(*S,)``
      (1.0 on active nodes, 0.0 elsewhere)

    Construction performs **all** validation; per-step methods assume
    well-shaped inputs.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""

    def __init__(
        self,
        config: "LBMConfig",
        shape: tuple[int, ...],
        solid_mask: np.ndarray,
    ):
        lat: Lattice = config.lattice
        if len(shape) != lat.D:
            raise ValueError(
                f"shape {shape} is {len(shape)}-D but lattice {lat.name} "
                f"is {lat.D}-D"
            )
        solid_mask = np.asarray(solid_mask, dtype=bool)
        if solid_mask.shape != tuple(shape):
            raise ValueError(
                f"solid_mask shape {solid_mask.shape} != grid shape {shape}"
            )
        self.lattice = lat
        self.shape = tuple(shape)
        self.n_points = int(np.prod(shape))
        self.solid_mask = solid_mask
        self.n_components = config.n_components
        self.taus = np.array([c.tau for c in config.components], dtype=np.float64)
        self.masses = np.array(
            [c.mass for c in config.components], dtype=np.float64
        )
        # Hoisted validation: ``LBMConfig.__post_init__`` already ran
        # ``validate_g_matrix`` when the config was built, so backend
        # (re)construction — per ensemble member, per migration rebuild —
        # does not re-pay the symmetry/shape checks.
        self.g_matrix = np.asarray(config.g_matrix, dtype=np.float64)
        self.psi: Callable[[np.ndarray], np.ndarray] = config.psi

    # ------------------------------------------------------------- kernels
    @abc.abstractmethod
    def stream(self, f: np.ndarray) -> np.ndarray:
        """Periodic streaming of all components.

        May operate in place *or* return a different (backend-owned)
        buffer; callers must rebind: ``self.f = backend.stream(self.f)``.
        """

    @abc.abstractmethod
    def bounce_back(self, f: np.ndarray) -> None:
        """Full-way bounce-back at the construction-time solid nodes,
        in place, for all components."""

    @abc.abstractmethod
    def equilibrium(
        self, rho_n: np.ndarray, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Equilibrium populations for one number-density field
        (``(*S,)``) and velocity field (``(D, *S)``) -> ``(Q, *S)``."""

    @abc.abstractmethod
    def collide_bgk(
        self,
        f: np.ndarray,
        rho: np.ndarray,
        u_eq: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        """BGK collision of every component toward its forced equilibrium,
        in place, restricted to ``mask`` nodes."""

    @abc.abstractmethod
    def shan_chen_force(
        self, psis: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Shan-Chen interparticle force from pseudopotentials ``(C, *S)``
        -> ``(C, D, *S)`` using the construction-time g matrix."""

    @abc.abstractmethod
    def moments(
        self, f: np.ndarray, rho_out: np.ndarray, mom_out: np.ndarray
    ) -> None:
        """Densities and momenta of all components, written into the given
        output arrays."""

    @abc.abstractmethod
    def forces_and_velocities(
        self,
        rho: np.ndarray,
        mom: np.ndarray,
        force: np.ndarray,
        u_eq: np.ndarray,
        *,
        accel: np.ndarray,
        psi_mask: np.ndarray,
        vel_mask: np.ndarray,
        adhesion: tuple[float, ...] | None = None,
        wall_field: np.ndarray | None = None,
    ) -> np.ndarray:
        """The force + velocity half of the moment update.

        Computes pseudopotentials (masked by *psi_mask*), the S-C force,
        adds the static acceleration field ``accel * rho``, optionally the
        S-C wall-adhesion term, then the common velocity and every
        component's forced equilibrium velocity (masked by *vel_mask*).
        Writes ``force`` and ``u_eq`` in place and returns the psi fields
        (shape ``(C, *S)``) for diagnostics / adhesion bookkeeping.
        """
