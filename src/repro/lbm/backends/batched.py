"""The ``batched`` backend: N independent channels in one array pass.

The CPU analogue of the paper's cluster-level amortisation: instead of
spreading one lattice over many nodes, this backend stacks **many
independent simulations** into one ``(B, C, Q, *S)`` population array
and sweeps every kernel across the whole ensemble at once, so the
Python/NumPy dispatch overhead of a step is paid once per *batch*
instead of once per *member*.  Per-member scalar parameters — the
Shan-Chen coupling matrix, the hydrophobic wall-force amplitude, the
driving body force — enter as per-member coefficient arrays
(``g_matrices``) and a stacked acceleration field, so a slip-length
sweep over wall-interaction strength runs as a single batched pass.

Bitwise contract: slicing member ``b`` out of a batched run reproduces
a standalone ``reference``-backend run of that member's configuration
**exactly** (pinned by exact-equality differential tests).  Three
ingredients make that possible:

- the batch axis leads, so every member slice is a contiguous array
  with the same layout the reference kernels see;
- elementwise arithmetic and slice-copy data movement are per-element
  identical no matter how many members share the pass;
- the two contractions (``c . u`` and the moment sums) go through the
  same BLAS GEMM per 2-D slice whether called via ``dot`` on one member
  or stacked ``matmul`` on the batch, and the per-member Shan-Chen
  coupling is an explicit per-member ``dot`` with ``out=`` — the exact
  call ``np.tensordot`` makes internally.

Allocation discipline: every kernel is ``@hot_path`` and writes through
scratch preallocated in ``__init__`` (REP001 statically, tracemalloc at
runtime).  Broadcast (stride-0) operands are avoided by materialising
the per-component ``omega * mask`` and mask fields once and looping
rows, the same idiom as the ``fused`` backend.

Array access goes through the :mod:`repro.lbm.backends.xp` namespace
handle (REP007); note this backend additionally relies on ``out=``
semantics and ``dot``, which the NumPy binding provides — it is the
ensemble fast path, not the portability layer (that is ``arrayapi``).
"""

from __future__ import annotations

from itertools import product

from repro.lbm.backends.fused import _axis_roll_segments
from repro.lbm.backends.registry import KernelBackend, register_backend
from repro.lbm.backends.xp import get_namespace
from repro.lbm.shan_chen import psi_identity
from repro.util.hotpath import hot_path

_FULL = slice(None)
_LEAD = (_FULL, _FULL)  # the (batch, component) axes of a roll plan


def _roll_plan(shape, shift):
    """(dst, src) slice-pair plan implementing ``roll`` by *shift* over
    the spatial axes of a ``(B, C, *S)`` slab."""
    per_axis = [_axis_roll_segments(n, s) for n, s in zip(shape, shift)]
    return [
        (
            _LEAD + tuple(p[0] for p in combo),
            _LEAD + tuple(p[1] for p in combo),
        )
        for combo in product(*per_axis)
    ]


def _root_base(arr):
    """The ultimate memory owner of *arr* (itself if not a view)."""
    while arr.base is not None:
        arr = arr.base
    return arr


@register_backend
class BatchedBackend(KernelBackend):
    """Stacked-ensemble kernels; also a registry backend at batch = 1.

    Parameters beyond the :class:`KernelBackend` contract:

    batch:
        ``None`` (registry/single mode — the solver's ``(C, Q, *S)``
        arrays are viewed as a one-member batch) or the ensemble size B
        (arrays are expected pre-stacked as ``(B, C, Q, *S)`` etc.).
    g_matrices:
        Optional per-member coupling matrices ``(B, C, C)``; defaults to
        ``config.g_matrix`` for every member.
    """

    name = "batched"

    def __init__(
        self, config, shape, solid_mask, *, batch=None,
        g_matrices=None, namespace=None,
    ):
        super().__init__(config, shape, solid_mask)
        xp = get_namespace(namespace)
        self.xp = xp
        lat = self.lattice
        if xp.max(xp.abs(xp.asarray(lat.c))) > 1:
            raise ValueError(
                f"batched backend requires single-link velocities, "
                f"lattice {lat.name} has |c| > 1"
            )
        self._single = batch is None
        B = 1 if batch is None else int(batch)
        if B < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.batch = B
        C, Q, D, S = self.n_components, lat.Q, lat.D, self.shape
        N = self.n_points

        if g_matrices is None:
            g = xp.empty((B, C, C), dtype=xp.float64)
            g[...] = xp.asarray(self.g_matrix, dtype=xp.float64)
        else:
            g = xp.asarray(g_matrices, dtype=xp.float64)
            if g.shape != (B, C, C):
                raise ValueError(
                    f"g_matrices must have shape {(B, C, C)}, got {g.shape}"
                )
        self._g_rows = g

        # --- streaming ----------------------------------------------------
        self._rest = [int(k) for k in range(Q) if k not in set(lat.moving)]
        self._stream_plans = [
            (int(k), _roll_plan(S, lat.shifts[k])) for k in lat.moving
        ]
        self._fbuf = xp.empty((B, C, Q) + S, dtype=xp.float64)

        # --- bounce-back (flat gather/scatter, as in fused) ---------------
        solid_flat = xp.reshape(xp.asarray(self.solid_mask), (-1,))
        self._solid_idx = xp.nonzero(solid_flat)[0]
        self._n_solid = int(self._solid_idx.shape[0])
        moving = xp.asarray(lat.moving)
        rows = xp.reshape(moving * N, (-1, 1))
        opp_rows = xp.reshape(xp.asarray(lat.opp)[moving] * N, (-1, 1))
        self._gather_idx = xp.reshape(rows + self._solid_idx, (-1,))
        self._scatter_idx = xp.reshape(opp_rows + self._solid_idx, (-1,))
        self._bounce_scratch = xp.empty(
            int(moving.shape[0]) * self._n_solid, dtype=xp.float64
        )
        self._opp = xp.asarray(lat.opp)
        self._solid = xp.asarray(self.solid_mask)

        # --- equilibrium / collision --------------------------------------
        self._inv_cs2 = 1.0 / lat.cs2
        self._half_inv4 = 0.5 * self._inv_cs2 * self._inv_cs2
        self._half_inv2 = 0.5 * self._inv_cs2
        self._cf = xp.asarray(lat.cf, dtype=xp.float64)  # (Q, D)
        self._cfT = xp.asarray(lat.cf.T, dtype=xp.float64)  # (D, Q)
        self._w_list = [float(wk) for wk in lat.w]
        self._cu_mat = xp.empty((B, Q, N), dtype=xp.float64)
        self._feq = xp.empty((B, Q) + S, dtype=xp.float64)
        self._feq_mat = self._feq.reshape(B, Q, N)
        self._usq = xp.empty((B,) + S, dtype=xp.float64)
        self._sq = xp.empty((B,) + S, dtype=xp.float64)
        self._n = xp.empty((B,) + S, dtype=xp.float64)
        self._om = xp.empty((C, B) + S, dtype=xp.float64)
        self._omega_key = None

        # --- Shan-Chen ----------------------------------------------------
        # Per moving direction (lattice.moving order — the accumulation
        # order of the reference shifted_psi_sum): the roll plan reading
        # psi(x + c_k) and the (axis, w_k c_k[d]) terms it feeds.
        self._psi_terms = [
            (
                _roll_plan(S, lat.shifts[int(lat.opp[k])]),
                [
                    (d, float(lat.w[k]) * float(lat.c[k, d]))
                    for d in range(D)
                    if lat.c[k, d] != 0
                ],
            )
            for k in lat.moving
        ]
        self._psis = xp.empty((B, C) + S, dtype=xp.float64)
        self._npsis = xp.empty((B, C) + S, dtype=xp.float64)
        self._shifted = xp.empty((B, C) + S, dtype=xp.float64)
        self._term = xp.empty((B, C) + S, dtype=xp.float64)
        self._sums = xp.empty((B, C, D) + S, dtype=xp.float64)
        self._crow = xp.empty((1, D * N), dtype=xp.float64)

        # --- moments / forces / velocities --------------------------------
        self._tmp = xp.empty((B,) + S, dtype=xp.float64)
        self._denom = xp.empty((B,) + S, dtype=xp.float64)
        self._srho = xp.empty((B,) + S, dtype=xp.float64)
        self._ucom = xp.empty((B, D) + S, dtype=xp.float64)
        self._maskb_psi = xp.empty((B,) + S, dtype=xp.float64)
        self._maskb_vel = xp.empty((B,) + S, dtype=xp.float64)
        self._psi_mask_key = None
        self._vel_mask_key = None

    # ------------------------------------------------------------- lifting
    def _lift(self, arr):
        """View a single-mode array as a one-member batch (no copy)."""
        return arr.reshape((1,) + arr.shape) if self._single else arr

    # ------------------------------------------------------------ streaming
    @hot_path
    def stream(self, f):
        xp = self.xp
        fl = self._lift(f)
        buf = self._fbuf
        if buf.shape != fl.shape or _root_base(buf) is _root_base(fl):
            # repro: allow[REP001] -- cold fallback: the grid was resized
            # (plane migration) or the caller re-passed our own buffer, so
            # the double buffer must be rebuilt
            buf = xp.empty(fl.shape, dtype=xp.float64)
        for k in self._rest:
            buf[:, :, k] = fl[:, :, k]
        for k, plan in self._stream_plans:
            fk = fl[:, :, k]
            bk = buf[:, :, k]
            for dst, src in plan:
                bk[dst] = fk[src]
        self._fbuf = fl  # the old populations become next step's target
        return buf[0] if self._single else buf

    @hot_path
    def bounce_back(self, f):
        if self._n_solid == 0:
            return
        xp = self.xp
        fl = self._lift(f)
        B, C = fl.shape[:2]
        Q, N = self.lattice.Q, self.n_points
        try:
            fv = fl.view()
            fv.shape = (B * C, Q * N)
        except AttributeError:
            # Non-contiguous populations: direction-reversal via a full
            # reversed copy per member/component (cold fallback).
            for b in range(B):
                for c in range(C):
                    fc = fl[b, c]
                    # repro: allow[REP001] -- cold fallback for
                    # non-contiguous populations; the step loop always
                    # passes contiguous state
                    rev = xp.take(fc, self._opp, axis=0)
                    # repro: allow[REP001] -- same cold fallback as above
                    fc[...] = xp.where(self._solid, rev, fc)
            return
        scratch = self._bounce_scratch
        for i in range(B * C):
            row = fv[i]
            xp.take(row, self._gather_idx, out=scratch, mode="clip")
            # f_new[opp(k), s] = f_old[k, s] <=> f_k <- f_opp(k) at solids.
            row[self._scatter_idx] = scratch

    # ---------------------------------------------------------- equilibrium
    @hot_path
    def _equilibrium_into(self, n, u, feq):
        """Reference-ordered equilibrium of one component across the
        batch: *n* is number density ``(B, *S)``, *u* velocity
        ``(B, D, *S)``, *feq* the output ``(B, Q, *S)``; all per-element
        operations in the exact reference sequence."""
        xp = self.xp
        B = self.batch
        D, Q, N = self.lattice.D, self.lattice.Q, self.n_points
        u_mat = u.reshape(B, D, N)
        cu_mat = self._cu_mat
        xp.matmul(self._cf, u_mat, out=cu_mat)  # c . u, one stacked GEMM
        # usq in einsum index order: u0*u0 + u1*u1 (+ u2*u2)
        xp.multiply(u[:, 0], u[:, 0], out=self._usq)
        for d in range(1, D):
            xp.multiply(u[:, d], u[:, d], out=self._sq)
            self._usq += self._sq
        feq_mat = feq.reshape(B, Q, N)
        xp.multiply(cu_mat, cu_mat, out=feq_mat)
        feq_mat *= self._half_inv4
        cu_mat *= self._inv_cs2  # out += cu * inv_cs2, scaled in place
        feq_mat += cu_mat
        feq_mat += 1.0
        self._usq *= self._half_inv2  # out -= (0.5/cs2) * usq
        usq, nbuf = self._usq, n
        for k, wk in enumerate(self._w_list):  # row-wise: no broadcasts
            row = feq[:, k]
            row -= usq
            row *= nbuf
            row *= wk

    @hot_path
    def equilibrium(self, rho_n, u, out=None):
        xp = self.xp
        rho_l = self._lift(rho_n)
        u_l = u.reshape((1,) + u.shape) if self._single else u
        if rho_l.shape != (self.batch,) + self.shape:
            raise ValueError(
                f"rho shape {rho_n.shape} != backend grid {self.shape}"
            )
        if out is None:
            # repro: allow[REP001] -- out=None is the cold convenience form
            # (diagnostics, tests); the step loop always passes a buffer
            out = xp.empty(
                (self.batch, self.lattice.Q) + self.shape, dtype=xp.float64
            )
            out_l = out
        else:
            out_l = self._lift(out)
        self._n[...] = rho_l
        self._equilibrium_into(self._n, u_l, out_l)
        return out_l[0] if self._single else out_l

    # ------------------------------------------------------------ collision
    @hot_path
    def collide_bgk(self, f, rho, u_eq, mask):
        xp = self.xp
        fl = self._lift(f)
        rho_l = self._lift(rho)
        u_l = self._lift(u_eq)
        if mask is not self._omega_key:
            # Masks are long-lived solver/ensemble arrays; rebuild the
            # materialised omega*mask fields only when identity changes.
            for c in range(self.n_components):
                self._om[c, ...] = (1.0 / self.taus[c]) * mask
            self._omega_key = mask
        feq = self._feq
        for c in range(self.n_components):
            xp.divide(rho_l[:, c], self.masses[c], out=self._n)
            self._equilibrium_into(self._n, u_l[:, c], feq)
            fc = fl[:, c]
            xp.subtract(feq, fc, out=feq)  # feq -= f
            om = self._om[c]
            for k in range(self.lattice.Q):  # feq *= omega * mask
                feq[:, k] *= om
            fc += feq  # f += omega * (feq - f) on masked nodes

    # ------------------------------------------------------------ Shan-Chen
    @hot_path
    def shan_chen_force(self, psis, out=None):
        xp = self.xp
        psis_l = self._lift(psis)
        if out is None:
            # repro: allow[REP001] -- out=None is the cold convenience form
            # (diagnostics, tests); the step loop always passes a buffer
            out = xp.empty(
                (self.batch, self.n_components, self.lattice.D) + self.shape,
                dtype=xp.float64,
            )
            out_l = out
        else:
            out_l = self._lift(out)
        B, C, D, N = (
            self.batch, self.n_components, self.lattice.D, self.n_points,
        )
        sums = self._sums
        sums.fill(0.0)
        shifted, term = self._shifted, self._term
        for plan, terms in self._psi_terms:  # lattice.moving order
            for dst, src in plan:
                shifted[dst] = psis_l[src]
            for d, coeff in terms:
                xp.multiply(shifted, coeff, out=term)
                sums[:, :, d] += term
        xp.negative(psis_l, out=self._npsis)
        crow = self._crow
        for b in range(B):  # per-member coupling: the exact tensordot GEMM
            smat = sums[b].reshape(C, D * N)
            for sigma in range(C):
                xp.dot(self._g_rows[b, sigma:sigma + 1], smat, out=crow)
                coupled = crow.reshape((D,) + self.shape)
                npsi = self._npsis[b, sigma]
                for d in range(D):
                    xp.multiply(npsi, coupled[d], out=out_l[b, sigma, d])
        return out_l[0] if self._single else out_l

    # -------------------------------------------------------------- moments
    @hot_path
    def moments(self, f, rho_out, mom_out):
        xp = self.xp
        fl = self._lift(f)
        rho_l = self._lift(rho_out)
        mom_l = self._lift(mom_out)
        B, C = fl.shape[:2]
        Q, D, N = self.lattice.Q, self.lattice.D, self.n_points
        for c in range(C):
            fv = fl[:, c].reshape(B, Q, N)
            rv = rho_l[:, c].reshape(B, N)
            mv = mom_l[:, c].reshape(B, D, N)
            xp.sum(fv, axis=1, out=rv)
            xp.matmul(self._cfT, fv, out=mv)
            rv *= self.masses[c]
            mv *= self.masses[c]

    # ----------------------------------------------- forces and velocities
    def _mask_field(self, mask, cache, key_attr):
        """Materialise a mask as a contiguous ``(B, *S)`` field, cached on
        the mask's identity (masks are long-lived arrays)."""
        if getattr(self, key_attr) is not mask:
            cache[...] = mask
            setattr(self, key_attr, mask)
        return cache

    @hot_path
    def forces_and_velocities(
        self,
        rho,
        mom,
        force,
        u_eq,
        *,
        accel,
        psi_mask,
        vel_mask,
        adhesion=None,
        wall_field=None,
    ):
        xp = self.xp
        rho_l = self._lift(rho)
        mom_l = self._lift(mom)
        force_l = self._lift(force)
        u_l = self._lift(u_eq)
        accel_l = self._lift(accel)
        B, C, D = self.batch, self.n_components, self.lattice.D
        psi_m = self._mask_field(psi_mask, self._maskb_psi, "_psi_mask_key")
        vel_m = self._mask_field(vel_mask, self._maskb_vel, "_vel_mask_key")

        psis = self._psis
        if self.psi is psi_identity:
            for c in range(C):
                xp.multiply(rho_l[:, c], psi_m, out=psis[:, c])
        else:
            for c in range(C):
                # Arbitrary psi callables allocate (invisible to REP001's
                # numpy sets); the identity fast path above is the hot loop.
                psis[:, c, ...] = self.psi(rho_l[:, c])
                psis[:, c] *= psi_m

        self.shan_chen_force(
            psis[0] if self._single else psis, out=force
        )
        tmp = self._tmp
        for c in range(C):  # force += accel * rho
            for d in range(D):
                xp.multiply(accel_l[:, c, d], rho_l[:, c], out=tmp)
                force_l[:, c, d] += tmp
        if adhesion is not None and wall_field is not None:
            for ci, g_ads in enumerate(adhesion):
                if g_ads != 0.0:
                    for d in range(D):
                        # reference order: (g_ads * psi) * wall_field
                        xp.multiply(psis[:, ci], float(g_ads), out=tmp)
                        tmp *= wall_field[d]
                        force_l[:, ci, d] -= tmp

        # Common velocity: sequential component sums (= np.sum over C).
        denom, ucom = self._denom, self._ucom
        xp.multiply(rho_l[:, 0], 1.0 / self.taus[0], out=denom)
        for c in range(1, C):
            xp.multiply(rho_l[:, c], 1.0 / self.taus[c], out=tmp)
            denom += tmp
        for d in range(D):
            ud = ucom[:, d]
            xp.multiply(mom_l[:, 0, d], 1.0 / self.taus[0], out=ud)
            for c in range(1, C):
                xp.multiply(mom_l[:, c, d], 1.0 / self.taus[c], out=tmp)
                ud += tmp
        xp.maximum(denom, 1e-300, out=denom)
        for d in range(D):
            ucom[:, d] /= denom

        srho = self._srho
        for c in range(C):
            xp.maximum(rho_l[:, c], 1e-300, out=srho)
            for d in range(D):
                # u_eq = u_common + tau * F / safe_rho, then *= vel_mask
                xp.multiply(force_l[:, c, d], self.taus[c], out=tmp)
                tmp /= srho
                xp.add(ucom[:, d], tmp, out=u_l[:, c, d])
                u_l[:, c, d] *= vel_m
        return psis[0] if self._single else psis
