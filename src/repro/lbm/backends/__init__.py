"""Pluggable kernel backends for the LBM hot path.

See :mod:`repro.lbm.backends.registry` for the backend contract,
:mod:`repro.lbm.backends.reference` for the baseline NumPy kernels,
:mod:`repro.lbm.backends.fused` for the allocation-free fast path,
:mod:`repro.lbm.backends.arrayapi` for the portable array-API kernels
and :mod:`repro.lbm.backends.batched` for the stacked-ensemble engine.

Select a backend with ``LBMConfig(backend="fused")`` or the
``REPRO_LBM_BACKEND`` environment variable; the array-API namespace
binding is chosen via ``REPRO_LBM_ARRAY_NS``
(:mod:`repro.lbm.backends.xp`).
"""

from repro.lbm.backends.registry import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    create_backend,
    get_backend_class,
    register_backend,
    resolve_backend_name,
)

# Importing the implementation modules registers the built-in backends.
from repro.lbm.backends.reference import ReferenceBackend
from repro.lbm.backends.fused import FusedBackend
from repro.lbm.backends.arrayapi import ArrayAPIBackend
from repro.lbm.backends.batched import BatchedBackend
from repro.lbm.backends.instrumented import KERNEL_NAMES, InstrumentedBackend
from repro.lbm.backends.xp import get_namespace

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "KERNEL_NAMES",
    "KernelBackend",
    "InstrumentedBackend",
    "ReferenceBackend",
    "FusedBackend",
    "ArrayAPIBackend",
    "BatchedBackend",
    "available_backends",
    "create_backend",
    "get_backend_class",
    "get_namespace",
    "register_backend",
    "resolve_backend_name",
]
