"""The array-API namespace handle for the portable kernel backends.

The ``arrayapi`` and ``batched`` backends never spell ``import numpy``;
they call :func:`get_namespace` and route every array operation through
the returned module object (conventionally bound to a local ``xp``).
With the default binding that object *is* NumPy — whose main namespace
is array-API compatible since NumPy 2 — so today the backends are
bit-identical to the NumPy reference kernels.  When accelerator
namespaces (CuPy, torch via ``array_api_compat``) are installed, the
same kernel source runs on them by flipping one knob.

Selection order: an explicit *name* argument, then the
``REPRO_LBM_ARRAY_NS`` environment variable (parsed by
:mod:`repro.config`), then NumPy.

This module is the **only** file under ``repro/lbm/backends/`` outside
the classic ``reference``/``fused`` pair that may import numpy directly;
the REP007 static rule enforces that every other backend module obtains
its namespace here.
"""

from __future__ import annotations

from types import ModuleType

import numpy as np

from repro.config import from_env

#: Canonical spellings of the default (NumPy) binding.
_NUMPY_NAMES = frozenset({"numpy", "np"})

#: Namespaces we know how to import when present; each maps the public
#: name to the module path tried at resolution time.
_OPTIONAL_NAMESPACES = {
    "array_api_compat.numpy": "array_api_compat.numpy",
    "cupy": "cupy",
    "torch": "torch",
}


def default_namespace() -> ModuleType:
    """The pure-NumPy binding (always available)."""
    return np


def get_namespace(name: str | None = None) -> ModuleType:
    """Resolve the array-API namespace the backends should compute in.

    Parameters
    ----------
    name:
        Explicit namespace name (``"numpy"``, ``"array_api_compat.numpy"``,
        ``"cupy"``, ``"torch"``); ``None`` consults ``REPRO_LBM_ARRAY_NS``
        and falls back to NumPy.

    Raises
    ------
    ImportError
        If a non-NumPy namespace is requested but not installed, with a
        message saying which package is missing (nothing is installed on
        demand — the environment is immutable at run time).
    ValueError
        For names this module does not know how to resolve.
    """
    if name is None:
        name = from_env().array_namespace or "numpy"
    key = name.strip().lower()
    if key in _NUMPY_NAMES:
        return np
    module_path = _OPTIONAL_NAMESPACES.get(key)
    if module_path is None:
        known = sorted(_NUMPY_NAMES | set(_OPTIONAL_NAMESPACES))
        raise ValueError(
            f"unknown array namespace {name!r}; known: {known}"
        )
    try:
        import importlib

        return importlib.import_module(module_path)
    except ImportError as exc:
        raise ImportError(
            f"array namespace {name!r} requested (REPRO_LBM_ARRAY_NS or "
            f"explicit) but {module_path!r} is not installed in this "
            f"environment; unset the knob to use the NumPy binding"
        ) from exc


def is_numpy_namespace(xp: ModuleType) -> bool:
    """True when *xp* computes with NumPy arrays (the binding under which
    the array-API backends are bit-identical to ``reference``)."""
    return xp is np or getattr(xp, "__name__", "").startswith(
        ("numpy", "array_api_compat.numpy")
    )
