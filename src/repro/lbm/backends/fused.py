"""The ``fused`` backend: an allocation-free LBM hot path.

Four memory-level optimisations over the reference kernels, all verified
bit-compatible (<= 1e-12) by the differential tests in
``tests/lbm/test_backends.py``:

1. **Double-buffered streaming.**  Instead of 19 (Q-1) full-grid
   ``np.roll`` temporaries per component per step, streaming writes
   wrap-decomposed slice blocks straight into a preallocated second
   population buffer and swaps buffers (callers rebind:
   ``f = backend.stream(f)``).

2. **Fused collide+equilibrium.**  The equilibrium is built in place in a
   scratch ``(Q, *S)`` array (the ``c . u`` products go through one BLAS
   ``matmul`` into scratch), immediately turned into the BGK increment
   and added to ``f`` — one pass, zero temporaries.  The per-component
   ``omega * mask`` product is cached keyed on the mask's identity.

3. **Batched moments.**  ``rho`` and ``mom`` for *all* components come
   from a single ``np.sum`` and a single broadcast ``matmul`` sweep over
   the ``(C, Q, N)``-flattened populations.

4. **Pair-folded Shan-Chen differences.**  The lattice is antisymmetric
   (``c_opp(k) = -c_k``), so the psi gradient needs only one central
   difference per *direction pair* over the stacked ``(C, *S)`` psi
   field — 9 subtractions for D3Q19 instead of 36 per-component rolls —
   accumulated with pure ``+=``/``-=`` (velocity components are all
   0/±1).  The shifted fields are materialised into contiguous scratch
   by slice assignment first, because NumPy's ufunc machinery allocates
   a transfer buffer for every non-contiguous operand.

Bounce-back gathers/scatters precomputed flat solid indices through a
fixed scratch block, so the steady-state ``step()`` performs no
full-grid allocation at all (see the tracemalloc regression test).
For the same reason every in-place ufunc in this module runs over
same-shape contiguous operands (row-wise loops instead of stride-0
broadcasts): with NumPy >= 2 those broadcasts also buffer.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.lbm.backends.registry import KernelBackend, register_backend
from repro.lbm.boundary import bounce_back as _masked_bounce_back
from repro.lbm.shan_chen import psi_identity
from repro.util.hotpath import hot_path

_FULL = slice(None)


def _axis_roll_segments(n: int, s: int) -> list[tuple[slice, slice]]:
    """(dst, src) slice pairs so that ``dst_block = src_block`` implements
    ``np.roll`` by *s* along one axis of extent *n*."""
    s %= n
    if s == 0:
        return [(_FULL, _FULL)]
    return [
        (slice(s, None), slice(0, n - s)),
        (slice(0, s), slice(n - s, None)),
    ]


def _roll_plan(
    shape: tuple[int, ...], shift: tuple[int, ...]
) -> list[tuple[tuple[slice, ...], tuple[slice, ...]]]:
    """Block-copy plan: ``buf[dst] = f[src]`` over all returned pairs
    equals ``buf = np.roll(f, shift)`` on the spatial axes (periodic wrap),
    applied to a ``(C, *S)`` slab — the leading slice spans components."""
    per_axis = [_axis_roll_segments(n, s) for n, s in zip(shape, shift)]
    return [
        (
            (_FULL,) + tuple(p[0] for p in combo),
            (_FULL,) + tuple(p[1] for p in combo),
        )
        for combo in product(*per_axis)
    ]


@register_backend
class FusedBackend(KernelBackend):
    """Preallocated-scratch, fused-kernel implementation."""

    name = "fused"

    def __init__(self, config, shape, solid_mask):
        super().__init__(config, shape, solid_mask)
        lat = self.lattice
        C, Q, D, S = self.n_components, lat.Q, lat.D, self.shape
        N = self.n_points
        if np.abs(lat.c).max() > 1:
            raise ValueError(
                f"fused backend requires single-link velocities, "
                f"lattice {lat.name} has |c| > 1"
            )

        # --- streaming ----------------------------------------------------
        self._rest = [int(k) for k in range(Q) if k not in set(lat.moving)]
        self._stream_plans = [
            (int(k), _roll_plan(S, lat.shifts[k])) for k in lat.moving
        ]
        self._fbuf = np.empty((C, Q) + S, dtype=np.float64)

        # --- bounce-back --------------------------------------------------
        # Flat gather/scatter indices into one component's (Q*N,) raveled
        # populations, restricted to the moving directions (the rest
        # population is its own mirror): scratch[k, i] = f[k, s_i], then
        # f[opp(k), s_i] = scratch[k, i].  Precomputed intp indices with
        # ``mode="clip"`` on the gather keep NumPy from allocating its
        # bounds-checking buffer.
        self._solid_flat = np.flatnonzero(self.solid_mask.ravel())
        self._n_solid = int(self._solid_flat.size)
        moving = lat.moving.astype(np.intp)
        rows = moving[:, None] * N
        opp_rows = lat.opp[moving].astype(np.intp)[:, None] * N
        self._gather_idx = np.ascontiguousarray(
            (rows + self._solid_flat).ravel(), dtype=np.intp
        )
        self._scatter_idx = np.ascontiguousarray(
            (opp_rows + self._solid_flat).ravel(), dtype=np.intp
        )
        self._bounce_scratch = np.empty(
            moving.size * self._n_solid, dtype=np.float64
        )

        # --- equilibrium / collision --------------------------------------
        self._inv_cs2 = 1.0 / lat.cs2
        self._half_inv4 = 0.5 * self._inv_cs2 * self._inv_cs2
        self._half_inv2 = 0.5 * self._inv_cs2
        # The quadratic term is evaluated as s(s + gamma) with
        # s = sqrt(1/(2 cs4)) c . u  (the 1/(2 cs4) factor pre-folded into
        # the matmul matrix) and gamma = (1/cs2)/sqrt(1/(2 cs4)) — one
        # fewer full (Q, *S) pass than the plain Horner form.
        sqrt_h4 = float(np.sqrt(self._half_inv4))
        self._gamma = self._inv_cs2 / sqrt_h4
        self._c_scaled = np.ascontiguousarray(lat.cf * sqrt_h4)  # (Q, D)
        # Per-direction scalar weights: a python loop of scalar multiplies
        # is measurably faster than one broadcast by a (Q, 1, ..) column.
        self._w_list = [float(wk) for wk in lat.w]
        self._feq = np.empty((Q,) + S, dtype=np.float64)
        self._cu = np.empty((Q,) + S, dtype=np.float64)
        self._cu_flat = self._cu.reshape(Q, N)
        self._usq = np.empty(S, dtype=np.float64)
        self._sq = np.empty(S, dtype=np.float64)
        self._nbuf = np.empty(S, dtype=np.float64)
        self._omega = np.empty((C,) + S, dtype=np.float64)
        self._one_minus_omega = np.empty((C,) + S, dtype=np.float64)
        self._omega_key: object = None

        # --- Shan-Chen ----------------------------------------------------
        # One representative per +/- direction pair (k < opp(k)); each
        # entry carries the weight, the nonzero velocity components as
        # (axis, sign) with sign in {-1, +1}, and the roll plans that
        # materialise psi(x + c_k) / psi(x - c_k) into contiguous scratch
        # (plain slice assignments never hit NumPy's ufunc buffering, so
        # the subtraction then runs fully contiguous and allocation-free).
        # Single-axis pairs subtract straight into svec[d] (then scale in
        # place); multi-axis (diagonal) pairs accumulate via diff scratch.
        self._axis_pairs = []  # (signed_weight, d, plan_plus, plan_minus)
        self._diag_pairs = []  # (weight, [(d, sign), ...], plan_p, plan_m)
        axis_dims = set()
        for k in lat.moving:
            k = int(k)
            ko = int(lat.opp[k])
            if k >= ko:
                continue
            dims = [
                (d, 1 if lat.c[k, d] > 0 else -1)
                for d in range(D)
                if lat.c[k, d] != 0
            ]
            # buf = roll(psi, shifts[opp(k)]) reads psi(x + c_k) at x.
            plan_p = _roll_plan(S, lat.shifts[ko])
            plan_m = _roll_plan(S, lat.shifts[k])
            if len(dims) == 1:
                d, sign = dims[0]
                if d in axis_dims:  # two axis pairs on one dim: accumulate
                    self._diag_pairs.append(
                        (float(lat.w[k]), dims, plan_p, plan_m)
                    )
                else:
                    axis_dims.add(d)
                    self._axis_pairs.append(
                        (sign * float(lat.w[k]), d, plan_p, plan_m)
                    )
            else:
                self._diag_pairs.append(
                    (float(lat.w[k]), dims, plan_p, plan_m)
                )
        self._zero_dims = [d for d in range(D) if d not in axis_dims]
        self._psis = np.empty((C,) + S, dtype=np.float64)
        self._roll_p = np.empty((C,) + S, dtype=np.float64)
        self._roll_m = np.empty((C,) + S, dtype=np.float64)
        self._diff = np.empty((C,) + S, dtype=np.float64)
        # Direction-major layout: svec[d] / coupled[d] are contiguous
        # (C, *S) slabs, so every in-place op on them stays buffer-free.
        self._svec = np.empty((D, C) + S, dtype=np.float64)
        self._svec_mat = self._svec.reshape(D, C, N)
        self._coupled = np.empty((D, C) + S, dtype=np.float64)
        self._coupled_mat = self._coupled.reshape(D, C, N)
        # F = -psi (g . S): fold the minus sign into the coupling matrix
        # (IEEE negation is exact, so this is bitwise identical) and save
        # a full negation pass.
        self._neg_g = np.ascontiguousarray(-self.g_matrix, dtype=np.float64)

        # --- moments / forces / velocities --------------------------------
        self._cfT = np.ascontiguousarray(lat.cf.T)  # (D, Q)
        self._inv_tau_row = (1.0 / self.taus).reshape(1, C)
        self._tmp_cd = np.empty((C, D) + S, dtype=np.float64)
        self._tmp_d = np.empty((D,) + S, dtype=np.float64)
        self._denom = np.empty(S, dtype=np.float64)
        self._denom_flat = self._denom.reshape(1, N)
        self._ucommon = np.empty((D,) + S, dtype=np.float64)
        self._ucommon_flat = self._ucommon.reshape(1, D * N)
        self._srho = np.empty(S, dtype=np.float64)

    # ------------------------------------------------------------ streaming
    @hot_path
    def stream(self, f: np.ndarray) -> np.ndarray:
        buf = self._fbuf
        if buf.shape != f.shape or buf is f:
            # repro: allow[REP001] -- cold fallback: the slab was resized by
            # plane migration, so next step's double buffer must be rebuilt
            buf = np.empty_like(f)
        for k in self._rest:
            buf[:, k] = f[:, k]
        for k, plan in self._stream_plans:
            fk = f[:, k]
            bk = buf[:, k]
            for dst, src in plan:
                bk[dst] = fk[src]
        self._fbuf = f  # the old buffer becomes next step's target
        return buf

    @hot_path
    def bounce_back(self, f: np.ndarray) -> None:
        if self._n_solid == 0:
            return
        lat = self.lattice
        try:
            fv = f.view()
            fv.shape = (f.shape[0], lat.Q, self.n_points)
        except AttributeError:
            # Non-contiguous populations: generic masked fallback.
            for ci in range(f.shape[0]):
                _masked_bounce_back(f[ci], self.solid_mask, lat)
            return
        scratch = self._bounce_scratch
        for ci in range(f.shape[0]):
            f1 = fv[ci].reshape(-1)
            np.take(f1, self._gather_idx, out=scratch, mode="clip")
            # f_new[opp(k), s] = f_old[k, s]  <=>  f_k <- f_opp(k) at solids.
            f1[self._scatter_idx] = scratch

    # ---------------------------------------------------------- equilibrium
    @hot_path
    def _feq_poly_into(self, u: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Velocity polynomial of the equilibrium, row-unscaled:
        ``out_k <- s_k (s_k + gamma)`` with ``s = sqrt(1/(2 cs4)) c . u``,
        which equals ``cu/cs2 + cu^2/(2 cs4)``.  Returns ``base =
        1 - u^2/(2 cs2)`` in a spatial-size scratch buffer; callers add it
        per row and apply the ``w n`` scaling (see the row-wise note in
        the module docstring)."""
        cu = self._cu
        np.matmul(
            self._c_scaled, u.reshape(self.lattice.D, -1), out=self._cu_flat
        )
        np.multiply(u[0], u[0], out=self._usq)
        for d in range(1, self.lattice.D):
            np.multiply(u[d], u[d], out=self._sq)
            self._usq += self._sq
        base = self._usq
        base *= -self._half_inv2
        base += 1.0
        np.add(cu, self._gamma, out=out)
        out *= cu
        return base

    @hot_path
    def equilibrium(
        self, rho_n: np.ndarray, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if rho_n.shape != self.shape:
            raise ValueError(
                f"rho shape {rho_n.shape} != backend grid {self.shape}"
            )
        if u.shape != (self.lattice.D,) + self.shape:
            raise ValueError(
                f"u shape {u.shape} != {(self.lattice.D,) + self.shape}"
            )
        if out is None:
            # repro: allow[REP001] -- out=None is the cold convenience form
            # (diagnostics, tests); the step loop always passes a buffer
            out = np.empty((self.lattice.Q,) + self.shape, dtype=np.float64)
        base = self._feq_poly_into(u, out)
        n = self._nbuf
        n[:] = rho_n
        for k, wk in enumerate(self._w_list):
            row = out[k]
            row += base
            row *= n
            row *= wk
        return out

    # ------------------------------------------------------------ collision
    @hot_path
    def collide_bgk(
        self,
        f: np.ndarray,
        rho: np.ndarray,
        u_eq: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        if mask is not self._omega_key:
            # Masks are long-lived solver arrays; rebuild the cached
            # omega*mask products only when the identity changes.
            for ci in range(self.n_components):
                np.multiply(mask, 1.0 / self.taus[ci], out=self._omega[ci])
                np.subtract(
                    1.0, self._omega[ci], out=self._one_minus_omega[ci]
                )
            self._omega_key = mask
        # BGK in the relaxed form f <- (1 - omega) f + omega feq: folding
        # omega n into the equilibrium's row scaling saves the full-grid
        # ``feq -= f`` pass of the incremental form.  Masked (solid) nodes
        # have omega = 0, so f passes through unchanged there.
        feq = self._feq
        for ci in range(self.n_components):
            base = self._feq_poly_into(u_eq[ci], feq)
            nom = self._nbuf
            np.divide(rho[ci], self.masses[ci], out=nom)
            nom *= self._omega[ci]
            om1 = self._one_minus_omega[ci]
            fci = f[ci]
            for k, wk in enumerate(self._w_list):
                row = feq[k]
                row += base
                row *= nom
                row *= wk
                frow = fci[k]
                frow *= om1
                frow += row

    # ------------------------------------------------------------ Shan-Chen
    @hot_path
    def shan_chen_force(
        self, psis: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            # repro: allow[REP001] -- out=None is the cold convenience form
            # (diagnostics, tests); the step loop always passes a buffer
            out = np.empty(
                (self.n_components, self.lattice.D) + self.shape,
                dtype=np.float64,
            )
        svec = self._svec
        diff = self._diff
        rp, rm = self._roll_p, self._roll_m
        for swk, d, plan_p, plan_m in self._axis_pairs:
            for dst, src in plan_p:
                rp[dst] = psis[src]
            for dst, src in plan_m:
                rm[dst] = psis[src]
            target = svec[d]
            np.subtract(rp, rm, out=target)
            target *= swk
        for d in self._zero_dims:
            svec[d] = 0.0
        for wk, dims, plan_p, plan_m in self._diag_pairs:
            for dst, src in plan_p:
                rp[dst] = psis[src]
            for dst, src in plan_m:
                rm[dst] = psis[src]
            np.subtract(rp, rm, out=diff)
            diff *= wk
            for d, sign in dims:
                if sign > 0:
                    svec[d] += diff
                else:
                    svec[d] -= diff
        # coupled[d] = -g . S[d]  (one batched matmul over the D stack)
        np.matmul(self._neg_g, self._svec_mat, out=self._coupled_mat)
        coupled = self._coupled
        for d in range(self.lattice.D):
            cd = coupled[d]
            cd *= psis
            out[:, d] = cd
        return out

    # -------------------------------------------------------------- moments
    @hot_path
    def moments(
        self, f: np.ndarray, rho_out: np.ndarray, mom_out: np.ndarray
    ) -> None:
        C, Q = f.shape[:2]
        fv = f.reshape(C, Q, -1)
        rho_flat = rho_out.reshape(C, -1)
        mom_flat = mom_out.reshape(C, self.lattice.D, -1)
        np.sum(fv, axis=1, out=rho_flat)
        np.matmul(self._cfT, fv, out=mom_flat)
        # Non-contiguous outs (the overlapped driver's edge/interior
        # pieces) reshape to fresh copies, so the reductions above land in
        # a buffer the caller never sees: write them back through the
        # views.  Contiguous outs reshape to views and skip this.
        if not np.may_share_memory(rho_flat, rho_out):
            rho_out[...] = rho_flat.reshape(rho_out.shape)
        if not np.may_share_memory(mom_flat, mom_out):
            mom_out[...] = mom_flat.reshape(mom_out.shape)
        for ci in range(C):  # scalar scale per component: buffer-free
            rho_out[ci] *= self.masses[ci]
            mom_out[ci] *= self.masses[ci]

    @hot_path
    def forces_and_velocities(
        self,
        rho: np.ndarray,
        mom: np.ndarray,
        force: np.ndarray,
        u_eq: np.ndarray,
        *,
        accel: np.ndarray,
        psi_mask: np.ndarray,
        vel_mask: np.ndarray,
        adhesion: tuple[float, ...] | None = None,
        wall_field: np.ndarray | None = None,
    ) -> np.ndarray:
        C, D = self.n_components, self.lattice.D
        psis = self._psis
        if self.psi is psi_identity:
            for ci in range(C):  # row-wise: see _feq_into
                np.multiply(rho[ci], psi_mask, out=psis[ci])
        else:
            for ci in range(C):
                psis[ci] = self.psi(rho[ci])
                psis[ci] *= psi_mask

        self.shan_chen_force(psis, out=force)
        tmp = self._tmp_cd
        for ci in range(C):
            for d in range(D):
                np.multiply(accel[ci, d], rho[ci], out=tmp[ci, d])
        force += tmp
        if adhesion is not None and wall_field is not None:
            for ci, g_ads in enumerate(adhesion):
                if g_ads != 0.0:
                    for d in range(D):
                        np.multiply(psis[ci], wall_field[d], out=self._tmp_d[d])
                    self._tmp_d *= g_ads
                    force[ci] -= self._tmp_d

        np.matmul(self._inv_tau_row, rho.reshape(C, -1), out=self._denom_flat)
        np.matmul(self._inv_tau_row, mom.reshape(C, -1), out=self._ucommon_flat)
        np.maximum(self._denom, 1e-300, out=self._denom)
        ucommon = self._ucommon
        for d in range(D):
            ucommon[d] /= self._denom
        for ci in range(C):
            np.maximum(rho[ci], 1e-300, out=self._srho)
            np.multiply(force[ci], self.taus[ci], out=u_eq[ci])
            ue = u_eq[ci]
            for d in range(D):
                ued = ue[d]
                ued /= self._srho
                ued += ucommon[d]
                ued *= vel_mask
            # (row-wise to stay buffer-free; ucommon add is same-shape)
        return psis
