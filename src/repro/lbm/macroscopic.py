"""Macroscopic moments of the distribution functions.

Connecting relations (paper, Section 2.1):

``rho_sigma(x) = m_sigma * sum_k f_k^sigma(x)``
``rho u      = sum_sigma m_sigma sum_k f_k^sigma c_k + (1/2) sum_sigma dp_sigma/dt``

and the common (composite) velocity used in the equilibrium of every
component,

``u' = (sum_sigma p_sigma / tau_sigma) / (sum_sigma rho_sigma / tau_sigma)``,

with each component's forced equilibrium velocity

``u_sigma^eq = u' + tau_sigma * F_sigma / rho_sigma``.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice


def component_density(f: np.ndarray, mass: float = 1.0) -> np.ndarray:
    """Mass density of one component: ``m * sum_k f_k``; *f* is ``(Q, *S)``."""
    return mass * f.sum(axis=0)


def component_momentum(
    f: np.ndarray, lattice: Lattice, mass: float = 1.0
) -> np.ndarray:
    """Momentum density ``m * sum_k f_k c_k`` of shape ``(D, *S)``."""
    # tensordot over the Q axis: c.T (D, Q) x f (Q, *S) -> (D, *S)
    return mass * np.tensordot(lattice.cf.T, f, axes=([1], [0]))


def common_velocity(
    rhos: np.ndarray,
    momenta: np.ndarray,
    taus: np.ndarray,
    *,
    floor: float = 1e-300,
) -> np.ndarray:
    """The S-C composite velocity u'.

    Parameters
    ----------
    rhos:
        Component densities, shape ``(C, *S)``.
    momenta:
        Component momenta, shape ``(C, D, *S)``.
    taus:
        Relaxation times, shape ``(C,)``.
    floor:
        Denominator floor to keep solid / vacuum nodes finite; their
        velocity is irrelevant (they never collide) but must not be NaN.
    """
    taus = np.asarray(taus, dtype=np.float64)
    if taus.shape != (rhos.shape[0],):
        raise ValueError(f"taus must have shape ({rhos.shape[0]},), got {taus.shape}")
    inv_tau = (1.0 / taus).reshape((-1,) + (1,) * (rhos.ndim - 1))
    denom = (rhos * inv_tau).sum(axis=0)
    numer = (momenta * inv_tau[:, None]).sum(axis=0)
    return numer / np.maximum(denom, floor)


def equilibrium_velocity(
    u_common: np.ndarray,
    force: np.ndarray,
    rho: np.ndarray,
    tau: float,
    *,
    floor: float = 1e-300,
) -> np.ndarray:
    """Forced equilibrium velocity for one component:
    ``u_eq = u' + tau * F / rho`` (Shan-Chen forcing)."""
    if force.shape != u_common.shape:
        raise ValueError(
            f"force shape {force.shape} != u_common shape {u_common.shape}"
        )
    return u_common + tau * force / np.maximum(rho, floor)


def mixture_velocity(
    rhos: np.ndarray,
    momenta: np.ndarray,
    forces: np.ndarray,
    *,
    floor: float = 1e-300,
) -> np.ndarray:
    """Physical (output) velocity of the mixture, with the half-force
    correction: ``u = (sum p_sigma + 1/2 sum F_sigma) / sum rho_sigma``."""
    total_rho = rhos.sum(axis=0)
    total_mom = momenta.sum(axis=0) + 0.5 * forces.sum(axis=0)
    return total_mom / np.maximum(total_rho, floor)
