"""Lattice Boltzmann substrate: multicomponent Shan-Chen LBM with
hydrophobic wall forces, as used by the paper's fluid-slip simulation.

The package is organised as small, dimension-agnostic numpy kernels
(:mod:`repro.lbm.collision`, :mod:`repro.lbm.streaming`, ...) composed by a
single-process solver (:class:`repro.lbm.solver.MulticomponentLBM`).  The
parallel driver in :mod:`repro.parallel` reuses the same kernels on x-slabs
with ghost planes.
"""

from repro.lbm.analytic import (
    navier_slip_poiseuille,
    poiseuille_velocity,
    slip_fraction_to_slip_length,
    slip_length_to_slip_fraction,
    taylor_green_velocity,
)
from repro.lbm.adhesion import contact_density_ratio, wall_indicator_field
from repro.lbm.checkpoint import load_checkpoint, save_checkpoint
from repro.lbm.export import export_fields_npz, export_profile_csv, export_vtk
from repro.lbm.lattice import Lattice, D2Q9, D3Q19, get_lattice
from repro.lbm.mrt import MRTCollision, MRTRelaxationRates
from repro.lbm.multiphase import (
    phase_separation_config,
    run_phase_separation,
    measure_coexistence,
)
from repro.lbm.obstacles import MaskedGeometry, cylinder_mask, momentum_exchange
from repro.lbm.open_boundary import PressureBoundary2D
from repro.lbm.components import ComponentSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.forces import WallForceSpec
from repro.lbm.solver import LBMConfig, MulticomponentLBM
from repro.lbm.units import UnitSystem, PAPER_UNITS
from repro.lbm.diagnostics import (
    Profile,
    apparent_slip_fraction,
    apparent_slip_gain,
    density_profile,
    effective_apparent_slip_fraction,
    effective_slip_fraction,
    first_node_velocity_fraction,
    normalized_velocity_profile,
    slip_fraction,
    streamwise_slip_profile,
    velocity_profile,
)

__all__ = [
    "Lattice",
    "D2Q9",
    "D3Q19",
    "get_lattice",
    "ComponentSpec",
    "ChannelGeometry",
    "WallForceSpec",
    "LBMConfig",
    "MulticomponentLBM",
    "UnitSystem",
    "PAPER_UNITS",
    "navier_slip_poiseuille",
    "poiseuille_velocity",
    "slip_fraction_to_slip_length",
    "slip_length_to_slip_fraction",
    "taylor_green_velocity",
    "load_checkpoint",
    "save_checkpoint",
    "export_fields_npz",
    "export_profile_csv",
    "export_vtk",
    "MRTCollision",
    "MRTRelaxationRates",
    "phase_separation_config",
    "run_phase_separation",
    "measure_coexistence",
    "PressureBoundary2D",
    "MaskedGeometry",
    "cylinder_mask",
    "momentum_exchange",
    "contact_density_ratio",
    "wall_indicator_field",
    "Profile",
    "apparent_slip_fraction",
    "apparent_slip_gain",
    "density_profile",
    "effective_apparent_slip_fraction",
    "effective_slip_fraction",
    "first_node_velocity_fraction",
    "normalized_velocity_profile",
    "slip_fraction",
    "streamwise_slip_profile",
    "velocity_profile",
]
