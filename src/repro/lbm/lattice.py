"""Lattice descriptors (velocity sets) for the LBM.

The paper uses the D3Q19 model (Figure 1: "each node has 19 different
possible movement directions").  We also provide D2Q9 for fast validation
runs and tests; every kernel in this package is written against the generic
:class:`Lattice` descriptor and works for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Lattice:
    """A discrete velocity set.

    Attributes
    ----------
    name:
        Conventional DdQq name, e.g. ``"D3Q19"``.
    c:
        Integer velocity vectors, shape ``(Q, D)``.
    w:
        Quadrature weights, shape ``(Q,)``; sum to 1.
    cs2:
        Squared lattice speed of sound (1/3 for both supported sets).
    opp:
        Index of the opposite direction for each direction, shape ``(Q,)``.
    cf:
        ``c`` as float64 (precomputed so hot kernels never pay a per-call
        ``astype`` copy), shape ``(Q, D)``.
    shifts:
        Per-direction integer shift tuples for ``np.roll``-style
        propagation, precomputed once (tuple of Q tuples of D ints).
    moving:
        Indices of the directions with a nonzero velocity, shape
        ``(Q - n_rest,)`` — the only directions streaming has to touch.
    moving_opp:
        Permutation *within* :attr:`moving`: ``moving[moving_opp[i]]`` is
        the opposite of ``moving[i]`` (used by bounce-back to skip the
        rest population entirely).
    """

    name: str
    c: np.ndarray
    w: np.ndarray
    cs2: float = 1.0 / 3.0
    opp: np.ndarray = field(init=False)
    cf: np.ndarray = field(init=False)
    shifts: tuple[tuple[int, ...], ...] = field(init=False)
    moving: np.ndarray = field(init=False)
    moving_opp: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        c = np.asarray(self.c, dtype=np.int64)
        w = np.asarray(self.w, dtype=np.float64)
        if c.ndim != 2:
            raise ValueError(f"c must be 2-D (Q, D), got shape {c.shape}")
        if w.shape != (c.shape[0],):
            raise ValueError(f"w must have shape ({c.shape[0]},), got {w.shape}")
        if not np.isclose(w.sum(), 1.0):
            raise ValueError(f"weights must sum to 1, got {w.sum()!r}")
        opp = _opposite_indices(c)
        cf = c.astype(np.float64)
        shifts = tuple(tuple(int(s) for s in ck) for ck in c)
        moving = np.flatnonzero(c.any(axis=1))
        # Position of each moving direction's opposite inside `moving`.
        pos = {int(k): i for i, k in enumerate(moving)}
        moving_opp = np.array([pos[int(opp[k])] for k in moving], dtype=np.int64)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "w", w)
        object.__setattr__(self, "opp", opp)
        object.__setattr__(self, "cf", cf)
        object.__setattr__(self, "shifts", shifts)
        object.__setattr__(self, "moving", moving)
        object.__setattr__(self, "moving_opp", moving_opp)
        for arr in (c, w, opp, cf, moving, moving_opp):
            arr.setflags(write=False)

    @property
    def Q(self) -> int:
        """Number of discrete velocities."""
        return self.c.shape[0]

    @property
    def D(self) -> int:
        """Spatial dimension."""
        return self.c.shape[1]

    def directions_with(self, axis: int, sign: int) -> np.ndarray:
        """Indices k with ``sign(c[k, axis]) == sign`` (sign in {-1, 0, +1}).

        Used by the halo-exchange plan: the populations that must be sent to
        the right neighbour are exactly those with ``c_x > 0`` (the paper's
        directions 1..5 for its numbering), and to the left those with
        ``c_x < 0``.
        """
        if sign not in (-1, 0, 1):
            raise ValueError(f"sign must be -1, 0 or +1, got {sign}")
        if not 0 <= axis < self.D:
            raise ValueError(f"axis must be in [0, {self.D}), got {axis}")
        return np.flatnonzero(np.sign(self.c[:, axis]) == sign)


def _opposite_indices(c: np.ndarray) -> np.ndarray:
    """For each velocity, find the index of its negation."""
    q = c.shape[0]
    opp = np.full(q, -1, dtype=np.int64)
    for k in range(q):
        matches = np.flatnonzero((c == -c[k]).all(axis=1))
        if matches.size != 1:
            raise ValueError(f"velocity set is not symmetric at index {k}")
        opp[k] = matches[0]
    return opp


def _build_d2q9() -> Lattice:
    c = [
        (0, 0),
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (-1, -1), (1, -1), (-1, 1),
    ]
    w = [4 / 9] + [1 / 9] * 4 + [1 / 36] * 4
    return Lattice("D2Q9", np.array(c), np.array(w))


def _build_d3q19() -> Lattice:
    axis = [
        (1, 0, 0), (-1, 0, 0),
        (0, 1, 0), (0, -1, 0),
        (0, 0, 1), (0, 0, -1),
    ]
    diag = [
        (1, 1, 0), (-1, -1, 0), (1, -1, 0), (-1, 1, 0),
        (1, 0, 1), (-1, 0, -1), (1, 0, -1), (-1, 0, 1),
        (0, 1, 1), (0, -1, -1), (0, 1, -1), (0, -1, 1),
    ]
    c = [(0, 0, 0)] + axis + diag
    w = [1 / 3] + [1 / 18] * 6 + [1 / 36] * 12
    return Lattice("D3Q19", np.array(c), np.array(w))


D2Q9 = _build_d2q9()
D3Q19 = _build_d3q19()

_REGISTRY = {"D2Q9": D2Q9, "D3Q19": D3Q19}


def get_lattice(name: str) -> Lattice:
    """Look up a lattice descriptor by name (``"D2Q9"`` or ``"D3Q19"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown lattice {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
