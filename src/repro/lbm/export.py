"""Field export for post-processing: NPZ snapshots, CSV profiles, and a
minimal legacy-VTK structured-points writer (readable by ParaView) — all
dependency-free.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.ckpt.io import atomic_open, atomic_savez, atomic_write_text
from repro.lbm.diagnostics import Profile
from repro.lbm.solver import MulticomponentLBM


def export_fields_npz(solver: MulticomponentLBM, path: str | Path) -> None:
    """Save the macroscopic fields (densities per component, mixture
    velocity, fluid mask) to a compressed ``.npz``."""
    names = [c.name for c in solver.config.components]
    atomic_savez(
        Path(path),
        component_names=np.array(names),
        rho=solver.rho,
        velocity=solver.velocity(),
        fluid_mask=solver.fluid,
        step_count=np.int64(solver.step_count),
    )


def export_profile_csv(
    profile: Profile, path: str | Path, *, value_name: str = "value"
) -> None:
    """Write a 1-D profile as a two-column CSV."""
    with atomic_open(Path(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["position", value_name])
        for d, v in zip(profile.positions, profile.values):
            writer.writerow([f"{d:.6g}", f"{v:.10g}"])


def read_profile_csv(path: str | Path) -> Profile:
    """Read a profile written by :func:`export_profile_csv`."""
    positions, values = [], []
    with open(Path(path), newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if len(header) != 2 or header[0] != "position":
            raise ValueError(f"not a profile CSV: header {header!r}")
        for row in reader:
            positions.append(float(row[0]))
            values.append(float(row[1]))
    return Profile(np.array(positions), np.array(values))


def export_vtk(solver: MulticomponentLBM, path: str | Path) -> None:
    """Write the density and velocity fields as a legacy-VTK
    STRUCTURED_POINTS file (ASCII).

    Works for 2-D (written as a 1-layer 3-D grid) and 3-D solvers.
    """
    path = Path(path)
    shape = solver.config.geometry.shape
    ndim = len(shape)
    dims = shape + (1,) * (3 - ndim)
    n_points = int(np.prod(dims))

    u = solver.velocity()
    if ndim == 2:
        u3 = np.zeros((3,) + dims, dtype=np.float64)
        u3[0, :, :, 0] = u[0]
        u3[1, :, :, 0] = u[1]
        rho = solver.rho[..., None]
    else:
        u3 = np.zeros((3,) + dims, dtype=np.float64)
        u3[:ndim] = u
        rho = solver.rho

    lines = [
        "# vtk DataFile Version 3.0",
        f"repro LBM snapshot step {solver.step_count}",
        "ASCII",
        "DATASET STRUCTURED_POINTS",
        f"DIMENSIONS {dims[0]} {dims[1]} {dims[2]}",
        "ORIGIN 0 0 0",
        "SPACING 1 1 1",
        f"POINT_DATA {n_points}",
    ]
    # VTK expects x varying fastest: transpose to (z, y, x) then ravel.
    for ci, comp in enumerate(solver.config.components):
        lines.append(f"SCALARS rho_{comp.name} double 1")
        lines.append("LOOKUP_TABLE default")
        flat = np.transpose(rho[ci], (2, 1, 0)).ravel()
        lines.extend(f"{v:.9g}" for v in flat)
    lines.append("VECTORS velocity double")
    vx = np.transpose(u3[0], (2, 1, 0)).ravel()
    vy = np.transpose(u3[1], (2, 1, 0)).ravel()
    vz = np.transpose(u3[2], (2, 1, 0)).ravel()
    lines.extend(f"{a:.9g} {b:.9g} {c:.9g}" for a, b, c in zip(vx, vy, vz))
    atomic_write_text(path, "\n".join(lines) + "\n")
