"""Analytic reference solutions for solver validation.

These are the standard LBM verification flows: plane Poiseuille, plane
Couette (via a moving-wall variant is not implemented — we use the
body-force-driven half-channel trick), the decaying Taylor-Green vortex
(measures the effective viscosity, validating nu = (2 tau - 1)/6), and
the slip-modified Poiseuille profile used to interpret the paper's
Figure 7 in terms of a Navier slip length.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_nonnegative, check_positive


def poiseuille_velocity(
    y: np.ndarray, width: float, acceleration: float, viscosity: float
) -> np.ndarray:
    """Steady plane Poiseuille profile ``u(y) = a y (H - y) / (2 nu)``.

    *y* is the distance from the low no-slip surface, in lattice units.
    """
    check_positive(width, "width")
    check_positive(viscosity, "viscosity")
    y = np.asarray(y, dtype=np.float64)
    return acceleration / (2.0 * viscosity) * y * (width - y)


def poiseuille_max_velocity(
    width: float, acceleration: float, viscosity: float
) -> float:
    """Centerline velocity ``a H^2 / (8 nu)``."""
    check_positive(width, "width")
    check_positive(viscosity, "viscosity")
    return acceleration * width**2 / (8.0 * viscosity)


def navier_slip_poiseuille(
    y: np.ndarray,
    width: float,
    acceleration: float,
    viscosity: float,
    slip_length: float,
) -> np.ndarray:
    """Poiseuille profile with symmetric Navier slip boundary conditions
    ``u(0) = b u'(0)``:

    ``u(y) = a/(2 nu) * (y (H - y) + b H)``.

    The apparent slip fraction at the wall is then
    ``u(0) / u_max = b H / (H^2/4 + b H) = 4b / (H + 4b)`` — the formula
    used to convert the paper's ~10% slip into a slip length.
    """
    check_nonnegative(slip_length, "slip_length")
    y = np.asarray(y, dtype=np.float64)
    base = poiseuille_velocity(y, width, acceleration, viscosity)
    return base + acceleration / (2.0 * viscosity) * slip_length * width


def slip_fraction_to_slip_length(slip: float, width: float) -> float:
    """Invert ``slip = 4b / (H + 4b)`` for the Navier slip length b."""
    check_positive(width, "width")
    if not 0.0 <= slip < 1.0:
        raise ValueError(f"slip fraction must be in [0, 1), got {slip}")
    return slip * width / (4.0 * (1.0 - slip))


def slip_length_to_slip_fraction(slip_length: float, width: float) -> float:
    """``4b / (H + 4b)`` — the slip fraction a Navier slip length yields."""
    check_nonnegative(slip_length, "slip_length")
    check_positive(width, "width")
    return 4.0 * slip_length / (width + 4.0 * slip_length)


def taylor_green_velocity(
    shape: tuple[int, int], t: float, viscosity: float, u0: float = 0.01
) -> np.ndarray:
    """Decaying 2-D Taylor-Green vortex on a periodic box.

    ``u_x =  u0 cos(kx x) sin(ky y) exp(-nu (kx^2+ky^2) t)``
    ``u_y = -u0 (kx/ky) sin(kx x) cos(ky y) exp(-nu (kx^2+ky^2) t)``

    Returns velocity of shape ``(2, nx, ny)``.
    """
    nx, ny = shape
    kx = 2.0 * np.pi / nx
    ky = 2.0 * np.pi / ny
    x = np.arange(nx, dtype=np.float64)[:, None]
    y = np.arange(ny, dtype=np.float64)[None, :]
    decay = np.exp(-viscosity * (kx**2 + ky**2) * t)
    u = np.empty((2, nx, ny), dtype=np.float64)
    u[0] = u0 * np.cos(kx * x) * np.sin(ky * y) * decay
    u[1] = -u0 * (kx / ky) * np.sin(kx * x) * np.cos(ky * y) * decay
    return u


def taylor_green_decay_rate(shape: tuple[int, int], viscosity: float) -> float:
    """Kinetic-energy decay rate: E(t) = E(0) exp(-2 nu (kx^2+ky^2) t)."""
    nx, ny = shape
    kx = 2.0 * np.pi / nx
    ky = 2.0 * np.pi / ny
    return 2.0 * viscosity * (kx**2 + ky**2)


def measure_viscosity_from_decay(
    energies: np.ndarray, times: np.ndarray, shape: tuple[int, int]
) -> float:
    """Fit the Taylor-Green kinetic-energy decay to recover the effective
    kinematic viscosity (the standard LBM viscosity measurement)."""
    energies = np.asarray(energies, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if energies.shape != times.shape or energies.size < 2:
        raise ValueError("need matching energy/time series of length >= 2")
    if (energies <= 0).any():
        raise ValueError("energies must be positive")
    nx, ny = shape
    kx = 2.0 * np.pi / nx
    ky = 2.0 * np.pi / ny
    slope = np.polyfit(times, np.log(energies), 1)[0]
    return float(-slope / (2.0 * (kx**2 + ky**2)))
