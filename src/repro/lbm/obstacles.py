"""Arbitrary solid obstacles inside the channel.

The paper's geometry is a plain duct, but a usable LBM library must
handle interior solids (posts, cylinders, porous plugs — the micro-device
features the paper's introduction motivates).  :class:`MaskedGeometry`
extends :class:`~repro.lbm.geometry.ChannelGeometry` with an extra solid
mask; the solver needs no changes because bounce-back already handles any
solid node.

Drag on the solid is measured by the momentum-exchange method: when a
population f_k is reflected at a solid node its momentum change is
``2 f_k c_k``, so the force on the solid per step is the sum over all
reflected populations (see :func:`momentum_exchange`).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import Lattice
from repro.util.validation import check_positive


class MaskedGeometry(ChannelGeometry):
    """A channel with additional interior solid nodes.

    Parameters
    ----------
    shape, wall_axes, wall_thickness:
        As for :class:`ChannelGeometry` (pass ``wall_axes=()`` for a
        periodic box containing only the obstacle).
    obstacle_mask:
        Boolean field of the full grid shape; True marks solid obstacle
        nodes (unioned with the channel walls).
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        obstacle_mask: np.ndarray,
        *,
        wall_axes: tuple[int, ...] | None = None,
        wall_thickness: int = 1,
    ):
        super().__init__(
            shape=shape, wall_axes=wall_axes, wall_thickness=wall_thickness
        )
        mask = np.asarray(obstacle_mask, dtype=bool)
        if mask.shape != self.shape:
            raise ValueError(
                f"obstacle_mask shape {mask.shape} != grid shape {self.shape}"
            )
        if mask.all():
            raise ValueError("obstacle fills the whole domain")
        object.__setattr__(self, "_obstacle", mask.copy())

    @property
    def obstacle_mask(self) -> np.ndarray:
        return self._obstacle.copy()

    def solid_mask(self) -> np.ndarray:
        return super().solid_mask() | self._obstacle

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaskedGeometry):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.wall_axes == other.wall_axes
            and self.wall_thickness == other.wall_thickness
            and bool(np.array_equal(self._obstacle, other._obstacle))
        )

    def __hash__(self) -> int:
        return hash((self.shape, self.wall_axes, self.wall_thickness,
                     self._obstacle.tobytes()))


def cylinder_mask(
    shape: tuple[int, ...],
    center: tuple[float, ...],
    radius: float,
    *,
    axis: int | None = None,
) -> np.ndarray:
    """A circular/cylindrical obstacle.

    In 2-D, a disk around *center*.  In 3-D, a cylinder whose axis runs
    along *axis* (default: the last axis, a post spanning the depth);
    *center* then gives the in-plane coordinates for the two remaining
    axes, in axis order.
    """
    check_positive(radius, "radius")
    ndim = len(shape)
    if ndim == 2:
        axes = [0, 1]
    else:
        axis = ndim - 1 if axis is None else axis
        if not 0 <= axis < ndim:
            raise ValueError(f"axis {axis} out of range")
        axes = [a for a in range(ndim) if a != axis]
    if len(center) != len(axes):
        raise ValueError(
            f"center must give {len(axes)} in-plane coordinates, got "
            f"{len(center)}"
        )
    grids = np.meshgrid(
        *[np.arange(n, dtype=np.float64) for n in shape], indexing="ij"
    )
    r2 = sum((grids[a] - c) ** 2 for a, c in zip(axes, center))
    return r2 <= radius**2


def momentum_exchange(
    f: np.ndarray, solid_mask: np.ndarray, lattice: Lattice
) -> np.ndarray:
    """Force on the solid this step, by momentum exchange.

    Call with the populations *after streaming and before bounce-back*:
    the populations sitting at solid nodes are exactly those about to be
    reflected, each transferring ``2 f_k c_k`` of momentum to the solid.
    Accepts single-component ``(Q, *S)`` or stacked ``(C, Q, *S)`` fields;
    returns the total force vector of shape ``(D,)``.
    """
    if f.ndim == lattice.D + 2:  # component stack
        return sum(
            momentum_exchange(f[ci], solid_mask, lattice)
            for ci in range(f.shape[0])
        )
    if solid_mask.shape != f.shape[1:]:
        raise ValueError(
            f"solid_mask shape {solid_mask.shape} != spatial {f.shape[1:]}"
        )
    at_solid = f[:, solid_mask]  # (Q, n_solid)
    return 2.0 * (lattice.c.astype(np.float64).T @ at_solid.sum(axis=1))
