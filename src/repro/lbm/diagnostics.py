"""Observables extracted from a solver state: the profiles and the slip
measures that the paper's Figures 6 and 7 report.

All profile helpers take the *solver* plus the sampling cross-section,
mirroring the paper's measurement at ``x = 1 um`` (channel midpoint) and
``z = 50 nm`` (mid-depth).  Profile positions are the monotone coordinate
from the low wall surface ("distance from the side wall").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lbm.solver import MulticomponentLBM


@dataclass(frozen=True)
class Profile:
    """A 1-D profile across the channel.

    Attributes
    ----------
    positions:
        Distance of each fluid node from the low wall surface, in lattice
        units, strictly increasing.
    values:
        The sampled field at those nodes.
    """

    positions: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.positions.shape != self.values.shape:
            raise ValueError("positions and values must have the same shape")
        if self.positions.size >= 2 and not np.all(np.diff(self.positions) > 0):
            raise ValueError("positions must be strictly increasing")

    def near_wall(self, depth: float) -> "Profile":
        """Restrict to the region within *depth* of the low wall (the
        paper's Figure 6 shows the 40 nm strip next to the side wall)."""
        keep = self.positions <= depth
        return Profile(self.positions[keep], self.values[keep])


def _cross_section_indexer(
    solver: MulticomponentLBM, axis: int, x_index: int | None, other_index: int | None
) -> tuple[int, ...]:
    """Index tuple selecting the 1-D line along *axis* through the requested
    cross-section (defaults: channel midpoints, like the paper)."""
    geo = solver.config.geometry
    ndim = geo.ndim
    if not 1 <= axis < ndim:
        raise ValueError(f"profile axis must be a wall axis in [1, {ndim}), got {axis}")
    idx: list[object] = [slice(None)] * ndim
    idx[0] = geo.centerline_index(0) if x_index is None else x_index
    for other in range(1, ndim):
        if other == axis:
            continue
        idx[other] = geo.centerline_index(other) if other_index is None else other_index
    idx[axis] = slice(None)
    return tuple(idx)  # type: ignore[return-value]


def _extract_line(
    solver: MulticomponentLBM,
    field: np.ndarray,
    axis: int,
    x_index: int | None,
    other_index: int | None,
) -> Profile:
    geo = solver.config.geometry
    idx = _cross_section_indexer(solver, axis, x_index, other_index)
    line = field[idx]
    coord = geo.wall_coordinate(axis)[idx]
    fluid = solver.fluid[idx]
    return Profile(positions=coord[fluid], values=line[fluid])


def density_profile(
    solver: MulticomponentLBM,
    component: str,
    *,
    axis: int = 1,
    x_index: int | None = None,
    other_index: int | None = None,
) -> Profile:
    """Density of *component* along *axis* at the given cross-section
    (the paper's Figure 6), fluid nodes only."""
    ci = solver.config.component_index(component)
    return _extract_line(solver, solver.rho[ci], axis, x_index, other_index)


def velocity_profile(
    solver: MulticomponentLBM,
    *,
    axis: int = 1,
    flow_axis: int = 0,
    x_index: int | None = None,
    other_index: int | None = None,
) -> Profile:
    """Streamwise mixture velocity along *axis* at the cross-section
    (Figure 7 before normalization)."""
    u = solver.velocity()[flow_axis]
    return _extract_line(solver, u, axis, x_index, other_index)


def normalized_velocity_profile(
    solver: MulticomponentLBM,
    *,
    axis: int = 1,
    flow_axis: int = 0,
    x_index: int | None = None,
    other_index: int | None = None,
) -> Profile:
    """Velocity profile normalized by its own maximum (u/u0, Figure 7)."""
    prof = velocity_profile(
        solver, axis=axis, flow_axis=flow_axis, x_index=x_index, other_index=other_index
    )
    u0 = float(np.max(np.abs(prof.values)))
    if u0 == 0.0:
        raise ValueError("flow has zero velocity; run the solver first")
    return Profile(positions=prof.positions, values=prof.values / u0)


def slip_fraction(profile: Profile) -> float:
    """Apparent slip at the wall surface: the streamwise velocity linearly
    extrapolated to the no-slip surface (position 0), normalized by the
    free-stream (maximum) velocity.

    For a pure no-slip Poiseuille profile this is ~0 (slightly negative by
    curvature); the paper reports approximately 10% for the hydrophobic
    channel.
    """
    if profile.values.size < 3:
        raise ValueError("profile too short to measure slip")
    u0 = float(np.max(np.abs(profile.values)))
    if u0 == 0.0:
        raise ValueError("zero free-stream velocity")
    d0, d1 = profile.positions[:2]
    u_first, u_second = profile.values[:2]
    u_wall = u_first - (u_second - u_first) / (d1 - d0) * d0
    return float(u_wall / u0)


def apparent_slip_fraction(profile: Profile, *, boundary_layer: float = 8.0) -> float:
    """Apparent slip as an experimentalist would measure it (the paper's
    Tretheway-Meinhart comparison): fit a parabola to the *bulk* velocity
    profile — excluding the thin depleted layer within *boundary_layer* of
    either wall — extrapolate it to the wall surface, and normalize by the
    fitted free-stream maximum.

    A no-slip Poiseuille flow yields ~0; the hydrophobic channel yields a
    positive fraction (~0.1 for the paper's parameters).
    """
    d, u = profile.positions, profile.values
    if d.size < 8:
        raise ValueError("profile too short for a core fit")
    width = float(d.max()) + 0.5
    core = (d >= boundary_layer) & (d <= width - boundary_layer)
    if core.sum() < 5:
        raise ValueError(
            f"boundary_layer={boundary_layer} leaves too few core points "
            f"({int(core.sum())}) in a channel of width {width}"
        )
    coef = np.polyfit(d[core], u[core], 2)
    if coef[0] >= 0:
        raise ValueError("core profile is not concave; flow not developed")
    u_wall = float(np.polyval(coef, 0.0))
    apex = -coef[1] / (2.0 * coef[0])
    u_max = float(np.polyval(coef, apex))
    if u_max == 0.0:
        raise ValueError("zero fitted free-stream velocity")
    return u_wall / u_max


def first_node_velocity_fraction(profile: Profile) -> float:
    """u/u0 at the first fluid node next to the wall (no extrapolation)."""
    u0 = float(np.max(np.abs(profile.values)))
    if u0 == 0.0:
        raise ValueError("zero free-stream velocity")
    return float(abs(profile.values[0]) / u0)


def apparent_slip_gain(with_force: Profile, without_force: Profile) -> float:
    """Slip increase attributable to the hydrophobic wall force: difference
    of :func:`slip_fraction` between forced and control runs (the paper's
    Figure 7 comparison)."""
    return slip_fraction(with_force) - slip_fraction(without_force)


def mean_flow_velocity(solver: MulticomponentLBM, flow_axis: int = 0) -> float:
    """Mean streamwise velocity over fluid nodes."""
    u = solver.velocity()[flow_axis]
    return float(u[solver.fluid].mean())


# --------------------------------------------------- inhomogeneous walls
#
# The single-cross-section measures above assume the paper's flat,
# x-invariant walls, where every streamwise plane sees the same profile.
# Rough and patterned scenarios (repro.scenarios) break that: the local
# slip varies along the flow axis, so one midpoint sample is an
# arbitrary stripe, not the channel's effective slip.  The helpers below
# reduce over *all* streamwise planes instead.


def streamwise_slip_profile(
    solver: MulticomponentLBM,
    *,
    axis: int = 1,
    flow_axis: int = 0,
    other_index: int | None = None,
    measure=slip_fraction,
) -> Profile:
    """*measure* evaluated on the velocity profile of **every**
    streamwise plane: positions are the x indices, values the per-plane
    slip.  The per-stripe view behind :func:`effective_slip_fraction`
    (and the fig-pattern stripe plots)."""
    u = solver.velocity()[flow_axis]
    nx = solver.config.geometry.shape[0]
    values = [
        measure(_extract_line(solver, u, axis, i, other_index))
        for i in range(nx)
    ]
    return Profile(
        positions=np.arange(nx, dtype=np.float64),
        values=np.asarray(values, dtype=np.float64),
    )


def effective_slip_fraction(
    solver: MulticomponentLBM,
    *,
    axis: int = 1,
    flow_axis: int = 0,
    other_index: int | None = None,
    measure=slip_fraction,
) -> float:
    """Effective (channel-averaged) slip for possibly inhomogeneous
    walls: *measure* (default :func:`slip_fraction`) averaged over all
    streamwise planes.

    For x-invariant physics every plane carries the bitwise-identical
    profile, and the function returns that single plane's value exactly
    — no floating-point averaging error — so the homogeneous scenario
    reproduces the historical midpoint measurement bit-for-bit.
    """
    prof = streamwise_slip_profile(
        solver,
        axis=axis,
        flow_axis=flow_axis,
        other_index=other_index,
        measure=measure,
    )
    values = prof.values
    if np.all(values == values[0]):
        return float(values[0])
    return float(values.mean())


def effective_apparent_slip_fraction(
    solver: MulticomponentLBM,
    *,
    axis: int = 1,
    flow_axis: int = 0,
    other_index: int | None = None,
    boundary_layer: float = 8.0,
) -> float:
    """:func:`apparent_slip_fraction` (parabolic core fit) averaged over
    all streamwise planes — the experimentalist's measure for rough or
    patterned walls."""

    def measure(profile: Profile) -> float:
        return apparent_slip_fraction(profile, boundary_layer=boundary_layer)

    return effective_slip_fraction(
        solver,
        axis=axis,
        flow_axis=flow_axis,
        other_index=other_index,
        measure=measure,
    )
