"""Multiple-relaxation-time (MRT) collision for D2Q9.

The BGK operator relaxes every kinetic mode at the same rate 1/tau; the
MRT operator (Lallemand & Luo) transforms to moment space and relaxes
each moment with its own rate, which decouples the bulk/ghost modes from
the shear viscosity and markedly improves stability at low viscosity.

Moment basis (rows of M, built programmatically from the velocity set):
density, energy ``e = -4 + 3c^2``, energy-square ``eps = 4 - 21/2 c^2 +
9/2 c^4``, momenta ``j_x, j_y``, heat fluxes ``q_x = (-5 + 3c^2) c_x``
(and y), and the stress moments ``p_xx = c_x^2 - c_y^2``, ``p_xy =
c_x c_y``.  The shear rate ``s_nu = 1/tau`` reproduces the BGK viscosity
``nu = (2 tau - 1)/6``; conserved moments (rho, j) have rate 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lbm.lattice import D2Q9, Lattice


def moment_matrix(lattice: Lattice) -> np.ndarray:
    """The Gram-Schmidt moment matrix M for D2Q9 (9 x 9)."""
    if lattice.D != 2 or lattice.Q != 9:
        raise ValueError("MRT is implemented for D2Q9 only")
    cx = lattice.c[:, 0].astype(np.float64)
    cy = lattice.c[:, 1].astype(np.float64)
    c2 = cx**2 + cy**2
    rows = [
        np.ones(9, dtype=np.float64),              # rho
        -4.0 + 3.0 * c2,                           # e
        4.0 - 10.5 * c2 + 4.5 * c2**2,             # eps
        cx,                                        # j_x
        (-5.0 + 3.0 * c2) * cx,                    # q_x
        cy,                                        # j_y
        (-5.0 + 3.0 * c2) * cy,                    # q_y
        cx**2 - cy**2,                             # p_xx
        cx * cy,                                   # p_xy
    ]
    return np.stack(rows)


def equilibrium_moments(rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Equilibrium moments m_eq(rho, j = rho u), shape ``(9, *S)``."""
    jx = rho * u[0]
    jy = rho * u[1]
    safe_rho = np.maximum(rho, 1e-300)
    jsq = (jx**2 + jy**2) / safe_rho
    out = np.empty((9,) + rho.shape, dtype=np.float64)
    out[0] = rho
    out[1] = -2.0 * rho + 3.0 * jsq
    out[2] = rho - 3.0 * jsq
    out[3] = jx
    out[4] = -jx
    out[5] = jy
    out[6] = -jy
    out[7] = (jx**2 - jy**2) / safe_rho
    out[8] = jx * jy / safe_rho
    return out


@dataclass(frozen=True)
class MRTRelaxationRates:
    """Per-moment relaxation rates.

    ``s_nu`` sets the shear viscosity exactly as BGK's 1/tau does;
    ``s_e``/``s_eps``/``s_q`` damp the non-hydrodynamic modes (defaults
    from Lallemand & Luo's stability analysis).  Conserved moments are
    pinned at 0.
    """

    s_nu: float
    s_e: float = 1.1
    s_eps: float = 1.1
    s_q: float = 1.2

    def __post_init__(self) -> None:
        for name in ("s_nu", "s_e", "s_eps", "s_q"):
            value = getattr(self, name)
            if not 0.0 < value < 2.0:
                raise ValueError(f"{name} must be in (0, 2), got {value}")

    @classmethod
    def from_tau(cls, tau: float, **overrides: float) -> "MRTRelaxationRates":
        """Rates matching a BGK relaxation time (same viscosity)."""
        if tau <= 0.5:
            raise ValueError(f"tau must be > 1/2, got {tau}")
        return cls(s_nu=1.0 / tau, **overrides)

    @classmethod
    def bgk_equivalent(cls, tau: float) -> "MRTRelaxationRates":
        """All rates equal to 1/tau — algebraically identical to BGK."""
        s = 1.0 / tau
        return cls(s_nu=s, s_e=s, s_eps=s, s_q=s)

    def diagonal(self) -> np.ndarray:
        # The momentum moments relax at the shear rate: with the solver's
        # Shan-Chen velocity-shift forcing (u_eq = u' + tau F / rho) this
        # delivers exactly F of momentum per step, as BGK does; without
        # forcing m_eq = m for the momenta, so any rate conserves them.
        return np.array(
            [0.0, self.s_e, self.s_eps, self.s_nu, self.s_q, self.s_nu,
             self.s_q, self.s_nu, self.s_nu]
        )

    @property
    def viscosity(self) -> float:
        """Kinematic shear viscosity: nu = cs2 (1/s_nu - 1/2)."""
        return (1.0 / self.s_nu - 0.5) / 3.0


class MRTCollision:
    """Precomputed MRT operator: ``f += M^-1 S (m_eq - M f)``."""

    def __init__(self, rates: MRTRelaxationRates, lattice: Lattice = D2Q9):
        self.rates = rates
        self.lattice = lattice
        self.M = moment_matrix(lattice)
        self.Minv = np.linalg.inv(self.M)
        # Fold S into the back-transform: f += (M^-1 S) (m_eq - m).
        self.MinvS = self.Minv @ np.diag(rates.diagonal())

    def collide(
        self,
        f: np.ndarray,
        rho: np.ndarray,
        u: np.ndarray,
        fluid_mask: np.ndarray | None = None,
    ) -> None:
        """Relax *f* in place toward the equilibrium of (rho, u).

        *f* has shape ``(9, *S)``; *u* is the (possibly force-shifted)
        equilibrium velocity, matching the solver's BGK usage.
        """
        if f.shape[0] != 9:
            raise ValueError(f"f must have 9 populations, got {f.shape[0]}")
        m = np.tensordot(self.M, f, axes=([1], [0]))
        m_eq = equilibrium_moments(rho, u)
        m_eq -= m
        delta = np.tensordot(self.MinvS, m_eq, axes=([1], [0]))
        if fluid_mask is not None:
            delta *= fluid_mask
        f += delta
