"""Zou-He open boundary conditions (D2Q9).

The paper drives its channel with a pressure gradient; this module
provides the standard Zou-He pressure (density) boundaries for a 2-D
channel with flow along x, as an alternative to the periodic-box +
body-force surrogate used elsewhere in this repository.  Register a
:class:`PressureBoundary2D` on ``solver.post_stream_hooks``:

    bc = PressureBoundary2D(rho_in=1.02, rho_out=1.0)
    solver.post_stream_hooks.append(bc)

Limitations (documented, enforced): D2Q9 only, single-component solvers
only (the multicomponent common-velocity coupling makes naive per-
component Zou-He inconsistent), wall rows excluded (the corner nodes stay
under bounce-back).
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import D2Q9, Lattice
from repro.lbm.solver import MulticomponentLBM
from repro.util.validation import check_positive


def _dir(lattice: Lattice, vec: tuple[int, ...]) -> int:
    matches = np.flatnonzero((lattice.c == np.asarray(vec)).all(axis=1))
    if matches.size != 1:
        raise ValueError(f"no unique direction {vec} in {lattice.name}")
    return int(matches[0])


class PressureBoundary2D:
    """Zou-He constant-density inlet (x = 0) / outlet (x = nx-1) pair."""

    def __init__(self, rho_in: float, rho_out: float):
        self.rho_in = check_positive(rho_in, "rho_in")
        self.rho_out = check_positive(rho_out, "rho_out")
        lat = D2Q9
        self._k0 = _dir(lat, (0, 0))
        self._ke = _dir(lat, (1, 0))
        self._kw = _dir(lat, (-1, 0))
        self._kn = _dir(lat, (0, 1))
        self._ks = _dir(lat, (0, -1))
        self._kne = _dir(lat, (1, 1))
        self._ksw = _dir(lat, (-1, -1))
        self._kse = _dir(lat, (1, -1))
        self._knw = _dir(lat, (-1, 1))

    def _check(self, solver: MulticomponentLBM) -> None:
        if solver.config.lattice is not D2Q9:
            raise ValueError("PressureBoundary2D requires the D2Q9 lattice")
        if solver.config.n_components != 1:
            raise ValueError(
                "Zou-He pressure boundaries support single-component "
                "solvers only"
            )

    def __call__(self, solver: MulticomponentLBM) -> None:
        self._check(solver)
        f = solver.f[0]
        interior = solver.fluid[0]  # fluid rows of a boundary column
        self.apply_inlet(f, interior)
        self.apply_outlet(f, interior)

    # ------------------------------------------------------------- inlet
    def apply_inlet(self, f: np.ndarray, rows: np.ndarray) -> None:
        """Reconstruct the unknown (eastbound) populations in column 0
        for the prescribed density, zero transverse velocity."""
        col = f[:, 0, :]
        rho = self.rho_in
        known = (
            col[self._k0]
            + col[self._kn]
            + col[self._ks]
            + 2.0 * (col[self._kw] + col[self._ksw] + col[self._knw])
        )
        ux = 1.0 - known / rho
        transverse = 0.5 * (col[self._kn] - col[self._ks])
        fe = col[self._kw] + (2.0 / 3.0) * rho * ux
        fne = col[self._ksw] - transverse + (1.0 / 6.0) * rho * ux
        fse = col[self._knw] + transverse + (1.0 / 6.0) * rho * ux
        col[self._ke, rows] = fe[rows]
        col[self._kne, rows] = fne[rows]
        col[self._kse, rows] = fse[rows]

    # ------------------------------------------------------------ outlet
    def apply_outlet(self, f: np.ndarray, rows: np.ndarray) -> None:
        """Reconstruct the unknown (westbound) populations in the last
        column for the prescribed density, zero transverse velocity."""
        col = f[:, -1, :]
        rho = self.rho_out
        known = (
            col[self._k0]
            + col[self._kn]
            + col[self._ks]
            + 2.0 * (col[self._ke] + col[self._kne] + col[self._kse])
        )
        ux = known / rho - 1.0
        transverse = 0.5 * (col[self._kn] - col[self._ks])
        fw = col[self._ke] - (2.0 / 3.0) * rho * ux
        fsw = col[self._kne] + transverse - (1.0 / 6.0) * rho * ux
        fnw = col[self._kse] - transverse - (1.0 / 6.0) * rho * ux
        col[self._kw, rows] = fw[rows]
        col[self._ksw, rows] = fsw[rows]
        col[self._knw, rows] = fnw[rows]


def pressure_drop_for_poiseuille(
    u_max: float, width: float, length: int, viscosity: float, cs2: float = 1.0 / 3.0
) -> float:
    """Density difference producing a target centerline velocity:
    ``dp/dx = 8 nu u_max / H^2`` with ``p = cs2 rho``, so
    ``delta rho = 8 nu u_max (L-1) / (cs2 H^2)``."""
    check_positive(u_max, "u_max")
    check_positive(width, "width")
    check_positive(viscosity, "viscosity")
    return 8.0 * viscosity * u_max * (length - 1) / (cs2 * width**2)
