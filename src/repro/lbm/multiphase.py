"""Single-component Shan-Chen multiphase flow (liquid-vapour).

The paper's two-component model is one face of the S-C method; the other
classic use — which the same kernels support — is a *single* component
with self-attraction (``g < 0``) and the bounded pseudopotential
``psi = rho0 (1 - exp(-rho/rho0))``, giving a non-ideal equation of state

    ``p = cs2 rho + cs2 g psi(rho)^2 / 2``

that phase-separates below the critical point (g_crit = -4 for rho0 = 1).
Provided as a library capability with validation helpers; exercised by
``examples/phase_separation.py`` and the corresponding tests.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.components import ComponentSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9, Lattice
from repro.lbm.shan_chen import make_psi_shan_chen
from repro.lbm.solver import LBMConfig, MulticomponentLBM
from repro.util.rng import make_rng
from repro.util.validation import check_positive

#: Critical coupling for psi = 1 - exp(-rho), rho0 = 1 (below this the
#: fluid separates into liquid and vapour).
CRITICAL_G = -4.0

#: Critical density for the same pseudopotential: psi'' changes sign.
CRITICAL_RHO = float(np.log(2.0))


def equation_of_state(
    rho: np.ndarray | float, g: float, *, rho0: float = 1.0, cs2: float = 1.0 / 3.0
) -> np.ndarray | float:
    """Bulk pressure ``p(rho) = cs2 rho + cs2 g psi^2 / 2``."""
    psi = make_psi_shan_chen(rho0)(np.asarray(rho, dtype=np.float64))
    return cs2 * np.asarray(rho, dtype=np.float64) + 0.5 * cs2 * g * psi**2


def is_subcritical(g: float) -> bool:
    """True when the coupling admits liquid-vapour coexistence."""
    return g < CRITICAL_G


def phase_separation_config(
    shape: tuple[int, ...] = (64, 64),
    *,
    g: float = -5.0,
    rho_mean: float = 0.7,
    tau: float = 1.0,
    lattice: Lattice = D2Q9,
) -> LBMConfig:
    """Configuration for a periodic-box spinodal-decomposition run."""
    check_positive(rho_mean, "rho_mean")
    if not is_subcritical(g):
        raise ValueError(
            f"g={g} is above the critical coupling {CRITICAL_G}; "
            f"no phase separation will occur"
        )
    geometry = ChannelGeometry(shape=shape, wall_axes=())  # fully periodic
    component = ComponentSpec("fluid", tau=tau, rho_init=rho_mean)
    return LBMConfig(
        geometry=geometry,
        components=(component,),
        g_matrix=np.array([[g]]),
        lattice=lattice,
        psi=make_psi_shan_chen(1.0),
    )


def run_phase_separation(
    config: LBMConfig,
    *,
    steps: int = 2000,
    noise: float = 0.01,
    seed: int | None = 0,
) -> MulticomponentLBM:
    """Run spinodal decomposition: seed the uniform density with small
    random perturbations and evolve until domains form."""
    solver = MulticomponentLBM(config)
    rng = make_rng(seed)
    rho_mean = config.components[0].rho_init
    rho = rho_mean * (
        1.0 + noise * rng.standard_normal(config.geometry.shape)
    )
    solver.initialize_equilibrium(
        rho[None],
        np.zeros((config.lattice.D,) + config.geometry.shape, dtype=np.float64),
    )
    solver.run(steps, check_interval=max(1, steps // 4))
    return solver


def measure_coexistence(
    solver: MulticomponentLBM, *, quantile: float = 0.1
) -> tuple[float, float]:
    """Vapour and liquid densities after separation: the means of the
    lowest and highest density *quantile* (avoiding interface nodes)."""
    if not 0.0 < quantile <= 0.5:
        raise ValueError(f"quantile must be in (0, 0.5], got {quantile}")
    rho = solver.rho[0][solver.fluid]
    lo = np.quantile(rho, quantile)
    hi = np.quantile(rho, 1.0 - quantile)
    vapour = float(rho[rho <= lo].mean())
    liquid = float(rho[rho >= hi].mean())
    return vapour, liquid


def density_contrast(solver: MulticomponentLBM) -> float:
    """Liquid/vapour density ratio — >> 1 after separation, ~1 before."""
    vapour, liquid = measure_coexistence(solver)
    return liquid / max(vapour, 1e-300)


# --------------------------------------------------------------- droplets
def mixture_pressure(solver: MulticomponentLBM) -> np.ndarray:
    """Bulk pressure field of the (possibly multicomponent) S-C system:

    ``p = cs2 Σ_σ rho_σ + (cs2 / 2) Σ_{σ σ'} g_{σσ'} ψ_σ ψ_σ'``.
    """
    cfg = solver.config
    cs2 = cfg.lattice.cs2
    psis = np.stack([cfg.psi(solver.rho[ci]) for ci in range(cfg.n_components)])
    p = cs2 * solver.rho.sum(axis=0)
    interaction = np.einsum("ab,a...,b...->...", cfg.g_matrix, psis, psis)
    return p + 0.5 * cs2 * interaction


def droplet_config(
    box: int = 64,
    *,
    g_cross: float = 0.9,
    rho_major: float = 1.0,
    rho_minor: float = 0.03,
    tau: float = 1.0,
) -> LBMConfig:
    """Two-component periodic box for droplet (Laplace-law) tests."""
    geometry = ChannelGeometry(shape=(box, box), wall_axes=())
    components = (
        ComponentSpec("water", tau=tau, rho_init=rho_major),
        ComponentSpec("air", tau=tau, rho_init=rho_minor),
    )
    g = np.array([[0.0, g_cross], [g_cross, 0.0]])
    return LBMConfig(
        geometry=geometry, components=components, g_matrix=g, lattice=D2Q9
    )


def run_droplet(
    config: LBMConfig,
    radius: float,
    *,
    steps: int = 3000,
    interface_width: float = 2.0,
) -> MulticomponentLBM:
    """Relax a circular droplet of the first component suspended in the
    second on a periodic box."""
    check_positive(radius, "radius")
    shape = config.geometry.shape
    if radius > min(shape) / 2 - 4:
        raise ValueError(f"radius {radius} too large for box {shape}")
    solver = MulticomponentLBM(config)
    center = [(n - 1) / 2.0 for n in shape]
    grids = np.meshgrid(
        *[np.arange(n, dtype=np.float64) for n in shape], indexing="ij"
    )
    r = np.sqrt(sum((g - c) ** 2 for g, c in zip(grids, center)))
    inside = 0.5 * (1.0 - np.tanh((r - radius) / interface_width))
    rho_major = config.components[0].rho_init
    rho_minor = config.components[1].rho_init
    rhos = np.stack(
        [
            rho_minor + (rho_major - rho_minor) * inside,
            rho_minor + (rho_major - rho_minor) * (1.0 - inside),
        ]
    )
    solver.initialize_equilibrium(
        rhos, np.zeros((config.lattice.D,) + shape, dtype=np.float64)
    )
    solver.run(steps, check_interval=max(1, steps // 4))
    return solver


def laplace_pressure_jump(solver: MulticomponentLBM) -> float:
    """Pressure difference between the droplet core and the far field
    (Laplace's law: delta p = sigma / R in 2-D)."""
    p = mixture_pressure(solver)
    shape = solver.config.geometry.shape
    center = tuple(n // 2 for n in shape)
    corner_patch = p[:3, :3]
    return float(p[center] - corner_patch.mean())
