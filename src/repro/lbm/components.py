"""Fluid-component specifications for the multicomponent S-C model.

The paper simulates two components: index 1 models water, index 2 models
the dissolved air / water vapour.  Each component sigma carries its own
relaxation time tau_sigma, molecular mass m_sigma and initial density.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class ComponentSpec:
    """Static parameters of one fluid component.

    Attributes
    ----------
    name:
        Human-readable label, e.g. ``"water"``.
    tau:
        BGK relaxation time (lattice units).  Kinematic viscosity is
        ``nu = cs2 * (tau - 1/2)``; tau must exceed 1/2 for stability.
    mass:
        Molecular mass m_sigma entering the mass density
        ``rho_sigma = m_sigma * sum_k f_k^sigma``.
    rho_init:
        Initial (uniform) number density.  The paper initialises a uniform
        water-air mixture with the air density taken at standard conditions.
    """

    name: str
    tau: float = 1.0
    mass: float = 1.0
    rho_init: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")
        check_positive(self.tau, "tau")
        if self.tau <= 0.5:
            raise ValueError(
                f"tau must be > 1/2 for a positive viscosity, got {self.tau}"
            )
        check_positive(self.mass, "mass")
        check_positive(self.rho_init, "rho_init")

    @property
    def viscosity(self) -> float:
        """Dimensionless kinematic viscosity nu = (2*tau - 1) / 6.

        This is the paper's definition ``nu = (1/3)(tau - 1/2)`` with
        cs2 = 1/3.
        """
        return (2.0 * self.tau - 1.0) / 6.0


def water_air_pair(
    *,
    tau_water: float = 1.0,
    tau_air: float = 1.0,
    rho_water: float = 1.0,
    rho_air: float = 0.03,
) -> tuple[ComponentSpec, ComponentSpec]:
    """The paper's two-component system with sensible lattice-unit defaults.

    The air/vapour density is a small fraction of the water density (the
    paper computes the dissolved-air density under standard conditions; in
    lattice units we keep the ratio small but large enough for a stable
    S-C coupling).
    """
    return (
        ComponentSpec("water", tau=tau_water, rho_init=rho_water),
        ComponentSpec("air", tau=tau_air, rho_init=rho_air),
    )
