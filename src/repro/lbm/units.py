"""Lattice <-> physical unit conversion.

The paper simulates a 2.0 x 1.0 x 0.1 micron channel on a 400 x 200 x 20
grid, i.e. a grid spacing of 5 nm, and reports densities in g/cm^3 and the
wall-force decay length of 12.5 nm.  :data:`PAPER_UNITS` encodes exactly
that scaling; scaled-down runs construct their own :class:`UnitSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class UnitSystem:
    """Conversion factors between lattice units and SI.

    Attributes
    ----------
    dx:
        Physical size of one lattice spacing [m].
    dt:
        Physical duration of one time step [s].
    rho0:
        Physical density of one lattice density unit [kg/m^3].
    """

    dx: float
    dt: float
    rho0: float

    def __post_init__(self) -> None:
        check_positive(self.dx, "dx")
        check_positive(self.dt, "dt")
        check_positive(self.rho0, "rho0")

    # --- lattice -> physical -------------------------------------------------
    def length(self, lattice_length: float) -> float:
        """Lattice length -> meters."""
        return lattice_length * self.dx

    def time(self, lattice_time: float) -> float:
        """Lattice time -> seconds."""
        return lattice_time * self.dt

    def velocity(self, lattice_velocity: float) -> float:
        """Lattice velocity -> m/s."""
        return lattice_velocity * self.dx / self.dt

    def density(self, lattice_density: float) -> float:
        """Lattice density -> kg/m^3."""
        return lattice_density * self.rho0

    def density_gcc(self, lattice_density: float) -> float:
        """Lattice density -> g/cm^3 (the unit of the paper's Figure 6)."""
        return self.density(lattice_density) / 1000.0

    def force_density(self, lattice_force: float) -> float:
        """Lattice force density -> N/m^3."""
        return lattice_force * self.rho0 * self.dx / self.dt**2

    def kinematic_viscosity(self, lattice_nu: float) -> float:
        """Lattice kinematic viscosity -> m^2/s."""
        return lattice_nu * self.dx**2 / self.dt

    # --- physical -> lattice -------------------------------------------------
    def to_lattice_length(self, meters: float) -> float:
        """Meters -> lattice spacings."""
        return meters / self.dx

    def to_lattice_density(self, kg_per_m3: float) -> float:
        """kg/m^3 -> lattice density units."""
        return kg_per_m3 / self.rho0


def paper_unit_system(*, dt: float = 1.0e-9) -> UnitSystem:
    """The paper's scaling: dx = 5 nm, water (1000 kg/m^3) = 1 lattice
    density unit.  dt is chosen so lattice velocities stay small; the paper
    does not report its time step, so we default to 1 ns."""
    return UnitSystem(dx=5.0e-9, dt=dt, rho0=1000.0)


PAPER_UNITS = paper_unit_system()

#: The paper's grid for the 2.0 x 1.0 x 0.1 micron channel at 5 nm spacing.
PAPER_GRID_SHAPE = (400, 200, 20)

#: Channel physical dimensions [m] (length, width, depth) from Figure 5.
PAPER_CHANNEL_SIZE = (2.0e-6, 1.0e-6, 0.1e-6)

#: Wall-force decay length from Section 4 [m].
PAPER_DECAY_LENGTH = 12.5e-9
