"""Shan-Chen interparticle interaction (the multicomponent S-C model).

The interaction potential between components (paper, Section 2.1) is

``V(x, x') = sum_{sigma sigma'} G_{sigma sigma'}(x, x')
             psi_sigma(x) psi_sigma'(x')``

with the Green's function restricted to nearest lattice links.  The force
it induces on component sigma is

``F_sigma(x) = -psi_sigma(x) * sum_sigma' g_{sigma sigma'}
               sum_k w_k psi_sigma'(x + c_k) c_k``.

The choice of psi fixes the equation of state; for the water/air mixture a
repulsive cross-coupling (g_wa > 0) with neutral self-coupling reproduces
the immiscible two-phase behaviour the paper simulates.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.lbm.lattice import Lattice

PsiFunction = Callable[[np.ndarray], np.ndarray]


def psi_identity(rho: np.ndarray) -> np.ndarray:
    """psi(rho) = rho: the standard multicomponent choice."""
    return rho


def make_psi_shan_chen(rho0: float = 1.0) -> PsiFunction:
    """psi(rho) = rho0 * (1 - exp(-rho / rho0)): the original S-C form,
    bounded for large densities (useful for single-component phase
    transitions; exposed for completeness and ablation)."""
    if rho0 <= 0:
        raise ValueError(f"rho0 must be > 0, got {rho0}")

    def psi(rho: np.ndarray) -> np.ndarray:
        return rho0 * (1.0 - np.exp(-rho / rho0))

    return psi


def validate_g_matrix(g: np.ndarray, n_components: int) -> np.ndarray:
    """Check the coupling matrix is square, symmetric and finite."""
    g = np.asarray(g, dtype=np.float64)
    if g.shape != (n_components, n_components):
        raise ValueError(
            f"g matrix must be ({n_components}, {n_components}), got {g.shape}"
        )
    if not np.isfinite(g).all():
        raise ValueError("g matrix must be finite")
    if not np.allclose(g, g.T):
        raise ValueError("g matrix must be symmetric (Newton's third law)")
    return g


def shifted_psi_sum(psi: np.ndarray, lattice: Lattice) -> np.ndarray:
    """``S(x) = sum_k w_k psi(x + c_k) c_k`` — the lattice gradient of psi.

    *psi* has spatial shape ``(*S,)``; the result has shape ``(D, *S)``.
    Periodic wrap is used; the solver masks psi to zero on solid nodes so
    walls act as neutral (non-wetting handled by the explicit wall force).
    """
    out = np.zeros((lattice.D,) + psi.shape, dtype=np.float64)
    spatial_axes = tuple(range(lattice.D))
    for k in lattice.moving:
        ck = lattice.c[k]
        # psi(x + c_k) viewed from x is a roll by -c_k, i.e. by the
        # opposite direction's precomputed shift tuple.
        shifted = np.roll(psi, lattice.shifts[lattice.opp[k]], axis=spatial_axes)
        wk = lattice.w[k]
        for d in range(lattice.D):
            if ck[d] != 0:
                out[d] += (wk * ck[d]) * shifted
    return out


def interaction_force(
    psis: np.ndarray,
    g_matrix: np.ndarray,
    lattice: Lattice,
) -> np.ndarray:
    """Shan-Chen force on every component.

    Parameters
    ----------
    psis:
        Pseudopotential fields, shape ``(C, *S)`` (already zeroed at solid
        nodes by the caller).
    g_matrix:
        Symmetric coupling matrix, shape ``(C, C)``.  Callers are expected
        to have validated it once up front (``LBMConfig.__post_init__`` and
        kernel-backend construction do) — this per-step hot path does not
        re-validate; use :func:`validate_g_matrix` explicitly for untrusted
        input.

    Returns
    -------
    Forces of shape ``(C, D, *S)``.
    """
    n_comp = psis.shape[0]
    g_matrix = np.asarray(g_matrix, dtype=np.float64)
    sums = np.stack([shifted_psi_sum(psis[c], lattice) for c in range(n_comp)])
    # F_sigma = -psi_sigma * sum_sigma' g[sigma, sigma'] * S_sigma'
    forces = np.zeros_like(sums)
    for sigma in range(n_comp):
        coupled = np.tensordot(g_matrix[sigma], sums, axes=([0], [0]))
        forces[sigma] = -psis[sigma][None] * coupled
    return forces


def momentum_rate_of_change(
    psis: np.ndarray, g_matrix: np.ndarray, lattice: Lattice
) -> np.ndarray:
    """``dp_sigma/dt`` from the interaction potential — identical to the
    interaction force (the paper's net rate of momentum change)."""
    return interaction_force(psis, g_matrix, lattice)
