"""repro — reproduction of "Parallel Simulation of Fluid Slip in a
Microchannel" (Zhou, Zhu, Petzold, Yang; IPDPS 2004).

Subpackages
-----------
- :mod:`repro.lbm` — multicomponent Shan-Chen lattice Boltzmann solver
  with hydrophobic wall forces (the paper's physics).
- :mod:`repro.core` — filtered dynamic remapping of lattice points (the
  paper's systems contribution) plus the baselines it is compared against.
- :mod:`repro.parallel` — MPI-like in-process message-passing substrate
  and the slice-decomposed parallel LBM driver.
- :mod:`repro.cluster` — virtual-time non-dedicated-cluster simulator
  used to regenerate the performance evaluation.
- :mod:`repro.experiments` — one harness per table/figure of the paper.
- :mod:`repro.api` — the unified run facade: build a :class:`RunSpec`,
  call :func:`repro.api.run`, get a :class:`RunResult` — sequential or
  parallel, threads or processes.

The most common entry points are re-exported here.
"""

from repro.core import (
    FilteredPolicy,
    GlobalPolicy,
    ConservativePolicy,
    NoRemappingPolicy,
    POLICY_NAMES,
    RemappingConfig,
    Remapper,
    SlicePartition,
    make_policy,
)
from repro.lbm import (
    ChannelGeometry,
    ComponentSpec,
    LBMConfig,
    MulticomponentLBM,
    WallForceSpec,
    apparent_slip_fraction,
    density_profile,
    slip_fraction,
    velocity_profile,
)
from repro.cluster import (
    ClusterSpec,
    PhaseSimulator,
    dedicated_traces,
    duty_cycle_trace,
    fixed_slow_traces,
    transient_spike_traces,
)
from repro.parallel import CommunicatorTimeout, run_parallel_lbm
from repro.api import EnsembleRunResult, RunResult, RunSpec, run, run_batch

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "FilteredPolicy",
    "GlobalPolicy",
    "ConservativePolicy",
    "NoRemappingPolicy",
    "POLICY_NAMES",
    "RemappingConfig",
    "Remapper",
    "SlicePartition",
    "make_policy",
    # lbm
    "ChannelGeometry",
    "ComponentSpec",
    "LBMConfig",
    "MulticomponentLBM",
    "WallForceSpec",
    "apparent_slip_fraction",
    "density_profile",
    "slip_fraction",
    "velocity_profile",
    # cluster
    "ClusterSpec",
    "PhaseSimulator",
    "dedicated_traces",
    "duty_cycle_trace",
    "fixed_slow_traces",
    "transient_spike_traces",
    # parallel
    "CommunicatorTimeout",
    "run_parallel_lbm",
    # api
    "EnsembleRunResult",
    "RunSpec",
    "RunResult",
    "run",
    "run_batch",
]
