"""Plane migration: serializing lattice planes for transfer between ranks.

A migration package carries the raw populations of *k* contiguous interior
planes taken from one side of a slab.  Moments, forces and equilibrium
velocities are recomputed by the receiver (cheaper than shipping them, and
it keeps a single source of truth).
"""

from __future__ import annotations

import numpy as np


def pack_planes(f: np.ndarray, side: str, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Split *k* interior planes off the given side of a padded slab.

    Parameters
    ----------
    f:
        Local populations, shape ``(C, Q, ln+2, *cross)`` with ghost planes
        at x-index 0 and -1.
    side:
        ``"left"`` takes the lowest-x interior planes (to send to the left
        neighbour), ``"right"`` the highest-x ones.
    k:
        Number of planes to extract (1 <= k <= ln - 1; a rank always keeps
        at least one interior plane).

    Returns
    -------
    (package, remainder): the extracted planes ``(C, Q, k, *cross)`` and a
    new padded slab with fresh (zeroed) ghost planes — ghosts are refilled
    by the next halo exchange before use.
    """
    interior = f[:, :, 1:-1]
    ln = interior.shape[2]
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if not 1 <= k <= ln - 1:
        raise ValueError(f"cannot extract {k} of {ln} interior planes")
    if side == "left":
        package = np.ascontiguousarray(interior[:, :, :k])
        keep = interior[:, :, k:]
    else:
        package = np.ascontiguousarray(interior[:, :, ln - k:])
        keep = interior[:, :, : ln - k]
    remainder = _pad_with_ghosts(keep)
    return package, remainder


def unpack_planes(f: np.ndarray, package: np.ndarray, side: str) -> np.ndarray:
    """Attach received planes to the given side of a padded slab; returns a
    new padded slab (ghosts zeroed, refilled at the next halo exchange)."""
    interior = f[:, :, 1:-1]
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if package.shape[:2] != interior.shape[:2] or package.shape[3:] != interior.shape[3:]:
        raise ValueError(
            f"package shape {package.shape} incompatible with slab "
            f"{interior.shape}"
        )
    if side == "left":
        merged = np.concatenate([package, interior], axis=2)
    else:
        merged = np.concatenate([interior, package], axis=2)
    return _pad_with_ghosts(merged)


def _pad_with_ghosts(interior: np.ndarray) -> np.ndarray:
    """Wrap an interior block with zeroed ghost planes on the x axis."""
    shape = list(interior.shape)
    shape[2] += 2
    padded = np.zeros(shape, dtype=interior.dtype)
    padded[:, :, 1:-1] = interior
    return padded


# --------------------------------------------------------------------- 2-D
# The 2-D driver pads both decomposed axes (x planes *and* y columns), so
# its migration helpers take/attach bands along either axis of a doubly
# padded array.  ``pack_planes``/``unpack_planes`` above stay exactly as
# the 1-D chain-migration protocol uses them.


def pack_band(
    f: np.ndarray, axis: int, side: str, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split *k* interior bands off one side of a doubly padded subdomain.

    *f* has shape ``(C, Q, ln+2, lc+2, *rest)`` with ghost cells at index
    0 and -1 of both spatial axes; *axis* is 2 (x planes) or 3 (y
    columns).  Returns ``(package, remainder)`` like :func:`pack_planes`
    — the package carries interior data only (no ghosts on either axis),
    the remainder is re-padded with zeroed ghosts all round.
    """
    _check_band_args(axis, side)
    interior = f[:, :, 1:-1, 1:-1]
    n = interior.shape[axis]
    if not 1 <= k <= n - 1:
        raise ValueError(
            f"cannot extract {k} of {n} interior bands along axis {axis}"
        )
    take_lo = [slice(None)] * interior.ndim
    keep_lo = [slice(None)] * interior.ndim
    if side == "low":
        take_lo[axis] = slice(0, k)
        keep_lo[axis] = slice(k, None)
    else:
        take_lo[axis] = slice(n - k, None)
        keep_lo[axis] = slice(0, n - k)
    package = np.ascontiguousarray(interior[tuple(take_lo)])
    remainder = _pad_both_axes(interior[tuple(keep_lo)])
    return package, remainder


def unpack_band(f: np.ndarray, package: np.ndarray, axis: int, side: str) -> np.ndarray:
    """Attach received bands to one side of a doubly padded subdomain;
    returns a new padded array (all ghosts zeroed, refilled at the next
    halo exchange)."""
    _check_band_args(axis, side)
    interior = f[:, :, 1:-1, 1:-1]
    expect = list(interior.shape)
    expect[axis] = package.shape[axis]
    if list(package.shape) != expect:
        raise ValueError(
            f"package shape {package.shape} incompatible with subdomain "
            f"{interior.shape} along axis {axis}"
        )
    if side == "low":
        merged = np.concatenate([package, interior], axis=axis)
    else:
        merged = np.concatenate([interior, package], axis=axis)
    return _pad_both_axes(merged)


def _check_band_args(axis: int, side: str) -> None:
    if axis not in (2, 3):
        raise ValueError(f"axis must be 2 (planes) or 3 (columns), got {axis}")
    if side not in ("low", "high"):
        raise ValueError(f"side must be 'low' or 'high', got {side!r}")


def _pad_both_axes(interior: np.ndarray) -> np.ndarray:
    """Wrap an interior block with zeroed ghosts on both spatial axes."""
    shape = list(interior.shape)
    shape[2] += 2
    shape[3] += 2
    padded = np.zeros(shape, dtype=interior.dtype)
    padded[:, :, 1:-1, 1:-1] = interior
    return padded
