"""Plane migration: serializing lattice planes for transfer between ranks.

A migration package carries the raw populations of *k* contiguous interior
planes taken from one side of a slab.  Moments, forces and equilibrium
velocities are recomputed by the receiver (cheaper than shipping them, and
it keeps a single source of truth).
"""

from __future__ import annotations

import numpy as np


def pack_planes(f: np.ndarray, side: str, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Split *k* interior planes off the given side of a padded slab.

    Parameters
    ----------
    f:
        Local populations, shape ``(C, Q, ln+2, *cross)`` with ghost planes
        at x-index 0 and -1.
    side:
        ``"left"`` takes the lowest-x interior planes (to send to the left
        neighbour), ``"right"`` the highest-x ones.
    k:
        Number of planes to extract (1 <= k <= ln - 1; a rank always keeps
        at least one interior plane).

    Returns
    -------
    (package, remainder): the extracted planes ``(C, Q, k, *cross)`` and a
    new padded slab with fresh (zeroed) ghost planes — ghosts are refilled
    by the next halo exchange before use.
    """
    interior = f[:, :, 1:-1]
    ln = interior.shape[2]
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if not 1 <= k <= ln - 1:
        raise ValueError(f"cannot extract {k} of {ln} interior planes")
    if side == "left":
        package = np.ascontiguousarray(interior[:, :, :k])
        keep = interior[:, :, k:]
    else:
        package = np.ascontiguousarray(interior[:, :, ln - k:])
        keep = interior[:, :, : ln - k]
    remainder = _pad_with_ghosts(keep)
    return package, remainder


def unpack_planes(f: np.ndarray, package: np.ndarray, side: str) -> np.ndarray:
    """Attach received planes to the given side of a padded slab; returns a
    new padded slab (ghosts zeroed, refilled at the next halo exchange)."""
    interior = f[:, :, 1:-1]
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if package.shape[:2] != interior.shape[:2] or package.shape[3:] != interior.shape[3:]:
        raise ValueError(
            f"package shape {package.shape} incompatible with slab "
            f"{interior.shape}"
        )
    if side == "left":
        merged = np.concatenate([package, interior], axis=2)
    else:
        merged = np.concatenate([interior, package], axis=2)
    return _pad_with_ghosts(merged)


def _pad_with_ghosts(interior: np.ndarray) -> np.ndarray:
    """Wrap an interior block with zeroed ghost planes on the x axis."""
    shape = list(interior.shape)
    shape[2] += 2
    padded = np.zeros(shape, dtype=interior.dtype)
    padded[:, :, 1:-1] = interior
    return padded
