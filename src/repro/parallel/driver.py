"""The parallel multicomponent LBM driver — Figure 2 of the paper, for real.

Each rank owns an x-slab of the channel — or, under a 2-D
:class:`~repro.parallel.decomposition.CartTopology`, a rectangle of x
planes × cross-section columns — plus ghost cells, and runs, per phase:
collision, halo exchange of the boundary distribution functions,
streaming + bounce-back, moment update, halo exchange of the number
densities, force and velocity computation.  Every ``REMAPPING_INTERVAL``
phases the ranks exchange load indices with their chain neighbours (or
allgather for the global scheme), agree on plane transfers using exactly
the window logic of :mod:`repro.core.policies`, and migrate raw
population planes; a 2-D grid rebalances each axis' bands the same way
from one shared allgather.

By default the halo exchange is *overlapped*: each rank collides its
one-plane x-boundary strips first, posts the nonblocking f exchange,
collides the interior while the messages fly, and only then waits — the
same split applies to the moment update around the density exchange.
Both schedules are bit-identical (collision and moments are pointwise),
so ``halo_overlap=False`` changes timing only; fault-injection runs
force the blocking schedule so the ``mid_phase`` fault point fires with
no messages in flight.

The transport is the in-process :class:`~repro.parallel.threads.LocalCluster`;
to make remapping *behaviour* testable without real background jobs, a
``load_time_fn`` can replace wall-clock measurement as the per-phase load
index (the physics is unaffected — only the remapping decisions see it).
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.exchange import proportional_targets
from repro.core.history import PhaseTimeHistory
from repro.core.partition import SlicePartition
from repro.core.policies import (
    GlobalPolicy,
    RemappingConfig,
    window_proposal,
)
from repro.ckpt.manifest import (
    CheckpointError,
    CheckpointRejected,
    Manifest,
    ShardInfo,
    check_fingerprint,
    config_fingerprint,
)
from repro.lbm.backends import create_backend
from repro.lbm.equilibrium import equilibrium
from repro.lbm.forces import body_force_field, wall_force_field
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.macroscopic import mixture_velocity
from repro.lbm.solver import LBMConfig
from repro.obs.observer import (
    NULL_OBSERVER,
    Observer,
    ObserverLike,
    resolve_observer,
)
from repro.obs.sink import JsonlSink, MemorySink
from repro.parallel.api import Communicator
from repro.parallel.decomposition import (
    CartTopology,
    SlabDecomposition,
    even_split,
    grid_for,
)
from repro.parallel.halo import HaloExchanger
from repro.parallel.launch import launch_spmd, resolve_transport
from repro.parallel.migration import (
    pack_band,
    pack_planes,
    unpack_band,
    unpack_planes,
)
from repro.util.validation import check_integer

#: Load-index hook: (rank, phase, points) -> seconds.
LoadTimeFn = Callable[[int, int, int], float]


@dataclass
class ParallelRunResult:
    """What one rank reports back after a run.

    ``plane_start``/``plane_count`` are the rank's final slice of the
    global x axis — the plane-ownership map after all dynamic remapping,
    carried explicitly so reassembly never has to assume rank order
    equals x order (it does, for chain migration, and
    :func:`assemble_global_f` verifies it).  Under a 2-D decomposition
    ``col_start``/``col_count`` delimit the rank's band of the first
    cross-section axis (``col_count=None``: the full extent, i.e. a 1-D
    slab).  ``exposed_wait_s`` is the cumulative time this rank spent
    blocked in halo waits — communication the compute did not hide."""

    rank: int
    plane_start: int
    f_interior: np.ndarray
    plane_count: int
    plane_history: list[int]
    comp_times: list[float]
    planes_sent: int
    planes_received: int
    mass: float
    col_start: int = 0
    col_count: int | None = None
    exposed_wait_s: float = 0.0


class ParallelLBM:
    """One rank's share of the parallel multicomponent LBM."""

    def __init__(
        self,
        comm: Communicator,
        config: LBMConfig,
        initial_counts: list[int] | None = None,
        *,
        topo: CartTopology | None = None,
        policy: str = "filtered",
        remap_config: RemappingConfig | None = None,
        load_time_fn: LoadTimeFn | None = None,
        observer: ObserverLike = NULL_OBSERVER,
        checkpoint_every: int = 0,
        checkpoint_store=None,
        faults=None,
        halo_overlap: bool = True,
    ):
        geo = config.geometry
        if topo is not None and initial_counts is not None:
            raise ValueError("pass either topo or initial_counts, not both")
        if topo is None:
            counts = (
                list(initial_counts)
                if initial_counts is not None
                else even_split(geo.shape[0], comm.size)
            )
            if len(counts) != comm.size:
                raise ValueError(
                    f"initial_counts must list {comm.size} entries, got "
                    f"{len(counts)}"
                )
            if sum(counts) != geo.shape[0]:
                raise ValueError(
                    "initial plane counts must sum to the global x extent"
                )
            ny = geo.shape[1] if len(geo.shape) > 1 else 1
            topo = CartTopology(counts, [ny])
        else:
            if topo.size != comm.size:
                raise ValueError(
                    f"topology has {topo.size} subdomains for {comm.size} "
                    f"ranks"
                )
            if topo.total_planes != geo.shape[0]:
                raise ValueError(
                    "topology row extents must sum to the global x extent"
                )
            if topo.cols > 1 and (
                len(geo.shape) < 2 or topo.total_cols != geo.shape[1]
            ):
                raise ValueError(
                    "topology column extents must sum to the first "
                    "cross-section extent"
                )
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every and checkpoint_store is None:
            raise ValueError("checkpoint_every > 0 needs a checkpoint_store")
        self.comm = comm
        self.config = config
        self.policy_name = policy
        self.remap_config = remap_config or RemappingConfig()
        self.load_time_fn = load_time_fn
        self.topo = topo
        self.rows = topo.rows
        self.cols = topo.cols
        self.row, self.col = topo.coords(comm.rank)
        self.decomp = SlabDecomposition(
            [topo.planes(topo.coords(r)[0]) for r in range(comm.size)]
        )
        #: Checkpointing (see :mod:`repro.ckpt`): a shared store plus the
        #: interval in phases; 0 disables periodic snapshots.
        self.checkpoint_every = checkpoint_every
        self.checkpoint_store = checkpoint_store
        #: Fault-injection plan (:class:`repro.ckpt.FaultPlan`) shared by
        #: every rank; ``None`` in production.
        self.faults = faults
        #: Overlapped halo schedule (see the module docstring).  Fault
        #: injection forces the blocking schedule: the ``mid_phase``
        #: fault point's contract is that no messages are in flight.
        self._overlap = bool(halo_overlap) and faults is None
        #: Global indices of this rank's first interior plane/column.
        #: Maintained incrementally through migrations (the topology
        #: snapshot is not updated after init) — chain migration keeps
        #: ranks ordered along each axis, so low-edge transfers are the
        #: only thing that moves them.
        self.plane_start = topo.plane_start(self.row)
        self.col_start = topo.col_start(self.col) if self.cols > 1 else 0

        # Rank-scoped observability handle; the shared NULL_OBSERVER when
        # neither an observer nor REPRO_OBS_TRACE is provided.
        obs = resolve_observer(observer)
        if obs.enabled and obs.rank is None:
            obs = obs.child(comm.rank)
        self.observer = obs

        lat = config.lattice
        self.cross = geo.shape[1:]
        self.plane_points = int(np.prod(self.cross))
        self.halo = HaloExchanger(lat, comm, observer=obs, topo=topo)
        self.history = PhaseTimeHistory(self.remap_config.history)

        # Geometry/force provider.  x-invariant configurations (the
        # paper's setup: walls along the cross axes, periodic x) share a
        # single cross-section pattern, broadcast along x; an x-varying
        # scenario gets the full global fields, assembled in exactly the
        # sequential solver's order and sliced (with periodic wrap) to
        # each rank's current rectangle by ``_local_patterns``.
        self._x_invariant = (
            config.scenario is None or config.scenario.x_invariant
        )
        src_geo = (
            ChannelGeometry(
                (1, *self.cross),
                wall_axes=geo.wall_axes,
                wall_thickness=geo.wall_thickness,
            )
            if self._x_invariant
            else geo
        )
        self._solid_src = (
            config.scenario.solid_mask(src_geo)
            if config.scenario is not None
            else src_geo.solid_mask()
        )  # (1, *cross) or the full global shape
        n_comp = config.n_components
        self._accel_src = np.zeros(
            (n_comp, lat.D, *src_geo.shape), dtype=np.float64
        )
        if config.wall_force is not None:
            target = config.component_index(config.wall_force.component)
            self._accel_src[target] += wall_force_field(
                src_geo, config.wall_force
            )
        if config.scenario is not None:
            target = config.component_index(config.scenario.component)
            self._accel_src[target] += config.scenario.wall_accel(src_geo)
        if config.body_acceleration is not None:
            body = body_force_field(src_geo, config.body_acceleration)
            for ci in range(n_comp):
                self._accel_src[ci] += body

        self.taus = np.array([c.tau for c in config.components])
        ln = topo.planes(self.row)
        if self.cols > 1:
            lc = topo.cols_of(self.col)
            shape = (ln + 2, lc + 2, *self.cross[1:])
        else:
            shape = (ln + 2, *self.cross)
        self.f = np.zeros((n_comp, lat.Q, *shape), dtype=np.float64)
        self._alloc_state()
        zero_u = np.zeros((lat.D, *shape), dtype=np.float64)
        fluid3 = ~self._solid3
        for ci, comp in enumerate(config.components):
            rho0 = np.where(fluid3, comp.rho_init / comp.mass, 0.0)
            equilibrium(rho0, zero_u, lat, out=self.f[ci])
            self.f[ci, :, 0] = 0.0
            self.f[ci, :, -1] = 0.0
            if self.cols > 1:
                self.f[ci, :, :, 0] = 0.0
                self.f[ci, :, :, -1] = 0.0
        self.phase = 0
        self.planes_sent = 0
        self.planes_received = 0
        self.plane_history: list[int] = [ln]
        self.comp_times: list[float] = []
        self._moments_and_forces(("init", 0))

    # ----------------------------------------------------------- state mgmt
    @property
    def local_planes(self) -> int:
        return self.f.shape[2] - 2

    @property
    def local_cols(self) -> int:
        """This rank's extent along the first cross-section axis (the
        full extent under a 1-D slab)."""
        if self.cols > 1:
            return self.f.shape[3] - 2
        return int(self.cross[0]) if self.cross else 1

    @staticmethod
    def _wrap_take(
        arr: np.ndarray, axis: int, start: int, count: int
    ) -> np.ndarray:
        """*count* entries of *arr* along *axis* from *start*, wrapping
        periodically (ghost cells of edge subdomains read the far side)."""
        idx = np.arange(start, start + count, dtype=np.int64) % arr.shape[axis]
        return np.take(arr, idx, axis=axis)

    def _local_patterns(
        self, shape: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """The local (ghost-padded) solid mask and acceleration field for
        this rank's current rectangle: slices of the provider arrays with
        periodic wrap on every decomposed axis, broadcast along x when
        the configuration is x-invariant."""
        solid = self._solid_src
        accel = self._accel_src
        if not self._x_invariant:
            solid = self._wrap_take(solid, 0, self.plane_start - 1, shape[0])
            accel = self._wrap_take(accel, 2, self.plane_start - 1, shape[0])
        if self.cols > 1:
            solid = self._wrap_take(solid, 1, self.col_start - 1, shape[1])
            accel = self._wrap_take(accel, 3, self.col_start - 1, shape[1])
        solid3 = np.broadcast_to(solid, shape).copy()
        return solid3, np.ascontiguousarray(accel)

    def _alloc_state(self) -> None:
        """(Re)allocate the derived fields, the local geometry/force
        slices and the kernel backend's scratch pool for the current
        subdomain size."""
        lat = self.config.lattice
        n_comp = self.config.n_components
        shape = self.f.shape[2:]
        self.rho = np.zeros((n_comp, *shape), dtype=np.float64)
        self.mom = np.zeros((n_comp, lat.D, *shape), dtype=np.float64)
        self.force = np.zeros_like(self.mom)
        self.u_eq = np.zeros_like(self.mom)
        solid3, self._accel = self._local_patterns(shape)
        self._solid3 = solid3
        # Interior-only collide mask (ghosts excluded); psi keeps the
        # fluid pattern on ghosts (their densities are real neighbour
        # data needed by the S-C force).
        fluid3 = ~solid3
        self._psi_mask = fluid3.astype(np.float64)
        collide_mask = fluid3.copy()
        collide_mask[0] = False
        collide_mask[-1] = False
        if self.cols > 1:
            collide_mask[:, 0] = False
            collide_mask[:, -1] = False
        self._collide_mask = collide_mask.astype(np.float64)
        # Ranks inherit the backend from the shared config; scratch is
        # sized for the local slab, so rebuild after every migration.
        self.backend = create_backend(
            self.config, shape, self._solid3, observer=self.observer
        )
        self._build_pieces(shape)

    def _build_pieces(self, shape: tuple[int, ...]) -> None:
        """The overlapped schedule's x pieces: one-plane boundary strips
        (collided first, so their data can travel while the interior
        computes) and the interior block between them.  Each strip gets
        its own backend instance — kernel scratch is shape-bound — plus
        stable views of the derived fields; ``f`` itself is re-sliced at
        every use because streaming rebinds it."""
        self._edge_pieces: list[tuple] = []
        self._mid_piece: tuple | None = None
        if not self._overlap:
            return
        ln = shape[0] - 2
        edges = [slice(1, 2)]
        if ln >= 2:
            edges.append(slice(ln, ln + 1))
        self._edge_pieces = [self._make_piece(sl, shape) for sl in edges]
        if ln > 2:
            self._mid_piece = self._make_piece(slice(2, ln), shape)

    def _make_piece(self, sl: slice, shape: tuple[int, ...]) -> tuple:
        piece_shape = (sl.stop - sl.start, *shape[1:])
        backend = create_backend(
            self.config,
            piece_shape,
            np.ascontiguousarray(self._solid3[sl]),
            observer=self.observer,
        )
        return (
            sl,
            backend,
            self._collide_mask[sl],
            self.rho[:, sl],
            self.u_eq[:, :, sl],
            self.mom[:, :, sl],
        )

    # -------------------------------------------------------------- physics
    def _collide(self) -> None:
        self.backend.collide_bgk(
            self.f, self.rho, self.u_eq, self._collide_mask
        )

    def _collide_piece(self, piece: tuple) -> None:
        sl, backend, mask, rho, u_eq, _ = piece
        backend.collide_bgk(self.f[:, :, sl], rho, u_eq, mask)

    def _moments_piece(self, piece: tuple) -> None:
        # Moments have no shape-bound scratch, so the full backend serves
        # every piece; collision cannot (equilibrium scratch is sized to
        # the grid), hence the per-piece instances.
        sl, _, _, rho, _, mom = piece
        self.backend.moments(self.f[:, :, sl], rho, mom)

    def _stream_and_bounce(self) -> None:
        self.f = self.backend.stream(self.f)
        self.backend.bounce_back(self.f)

    def _moments_and_forces(self, tag: object) -> None:
        """Moment update + density halo + force/velocity computation (the
        second half of a phase; also rerun after migration)."""
        self.backend.moments(self.f, self.rho, self.mom)
        self.halo.exchange_scalar(self.rho, tag, "halo_rho")
        self.backend.forces_and_velocities(
            self.rho,
            self.mom,
            self.force,
            self.u_eq,
            accel=self._accel,
            psi_mask=self._psi_mask,
            vel_mask=self._collide_mask,
        )

    def step_phase(self) -> float:
        """One full phase; returns the load-index sample for this phase."""
        if self.observer.enabled:
            t_compute = self._timed_phase()
        elif self._overlap:
            t0 = time.perf_counter()
            for piece in self._edge_pieces:
                self._collide_piece(piece)
            pending_f = self.halo.begin_f(self.f, self.phase)
            if self._mid_piece is not None:
                self._collide_piece(self._mid_piece)
            t_compute = time.perf_counter() - t0
            self.halo.finish_f(pending_f)

            t1 = time.perf_counter()
            self._stream_and_bounce()
            for piece in self._edge_pieces:
                self._moments_piece(piece)
            pending_rho = self.halo.begin_scalar(
                self.rho, self.phase, "halo_rho"
            )
            if self._mid_piece is not None:
                self._moments_piece(self._mid_piece)
            self.halo.finish_scalar(pending_rho)
            self.backend.forces_and_velocities(
                self.rho,
                self.mom,
                self.force,
                self.u_eq,
                accel=self._accel,
                psi_mask=self._psi_mask,
                vel_mask=self._collide_mask,
            )
            t_compute += time.perf_counter() - t1
        else:
            t0 = time.perf_counter()
            self._collide()
            t_compute = time.perf_counter() - t0

            if self.faults is not None:
                # Between collision and the halo exchange: the state is
                # mid-update and no messages are in flight, so a job kill
                # here cannot strand a peer in a blocking recv.
                self.faults.fire(
                    "mid_phase", rank=self.comm.rank, at=self.phase
                )
            self.halo.exchange_f(self.f, self.phase)

            t1 = time.perf_counter()
            self._stream_and_bounce()
            self._moments_and_forces(self.phase)
            t_compute += time.perf_counter() - t1

        self.phase += 1
        if self.load_time_fn is not None:
            sample = self.load_time_fn(
                self.comm.rank, self.phase, self.local_planes * self.plane_points
            )
        else:
            sample = max(t_compute, 1e-9)
        self.comp_times.append(sample)
        self.history.record(sample)
        return sample

    def _timed_phase(self) -> float:
        """The same phase sequence with per-segment timings and halo byte
        deltas emitted as one ``phase`` trace event.  Returns the compute
        time with exactly the untraced composition (halo-f wait excluded,
        density-halo wait included, matching the load-index semantics).

        Under the overlapped schedule the event additionally carries
        ``t_halo_wait`` — the exposed communication time, i.e. seconds
        this phase actually blocked in halo waits after the interior
        compute was used to hide the transfers."""
        halo = self.halo
        bf0, bs0 = halo.bytes_f, halo.bytes_scalar
        if self._overlap:
            wf0 = halo.wait_f_seconds
            ws0 = halo.wait_scalar_seconds
            t0 = time.perf_counter()
            for piece in self._edge_pieces:
                self._collide_piece(piece)
            pending_f = halo.begin_f(self.f, self.phase)
            if self._mid_piece is not None:
                self._collide_piece(self._mid_piece)
            t1 = time.perf_counter()
            halo.finish_f(pending_f)
            t2 = time.perf_counter()
            self._stream_and_bounce()
            t3 = time.perf_counter()
            for piece in self._edge_pieces:
                self._moments_piece(piece)
            pending_rho = halo.begin_scalar(self.rho, self.phase, "halo_rho")
            if self._mid_piece is not None:
                self._moments_piece(self._mid_piece)
            t4 = time.perf_counter()
            halo.finish_scalar(pending_rho)
            t5 = time.perf_counter()
            self.backend.forces_and_velocities(
                self.rho,
                self.mom,
                self.force,
                self.u_eq,
                accel=self._accel,
                psi_mask=self._psi_mask,
                vel_mask=self._collide_mask,
            )
            t6 = time.perf_counter()
            self.observer.emit(
                "phase",
                phase=self.phase,
                planes=self.local_planes,
                t_collide=t1 - t0,
                t_halo_f=t2 - t1,
                t_stream_bounce=t3 - t2,
                t_moments=(t4 - t3) + (t6 - t5),
                t_halo_rho=t5 - t4,
                t_total=t6 - t0,
                t_halo_wait=(halo.wait_f_seconds - wf0)
                + (halo.wait_scalar_seconds - ws0),
                halo_f_bytes=halo.bytes_f - bf0,
                halo_rho_bytes=halo.bytes_scalar - bs0,
            )
            return (t1 - t0) + (t6 - t2)
        t0 = time.perf_counter()
        self._collide()
        t1 = time.perf_counter()
        if self.faults is not None:
            self.faults.fire("mid_phase", rank=self.comm.rank, at=self.phase)
        halo.exchange_f(self.f, self.phase)
        t2 = time.perf_counter()
        self._stream_and_bounce()
        t3 = time.perf_counter()
        # _moments_and_forces, split so the density-halo wait is visible.
        self.backend.moments(self.f, self.rho, self.mom)
        t4 = time.perf_counter()
        halo.exchange_scalar(self.rho, self.phase, "halo_rho")
        t5 = time.perf_counter()
        self.backend.forces_and_velocities(
            self.rho,
            self.mom,
            self.force,
            self.u_eq,
            accel=self._accel,
            psi_mask=self._psi_mask,
            vel_mask=self._collide_mask,
        )
        t6 = time.perf_counter()
        self.observer.emit(
            "phase",
            phase=self.phase,
            planes=self.local_planes,
            t_collide=t1 - t0,
            t_halo_f=t2 - t1,
            t_stream_bounce=t3 - t2,
            t_moments=(t4 - t3) + (t6 - t5),
            t_halo_rho=t5 - t4,
            t_total=t6 - t0,
            halo_f_bytes=halo.bytes_f - bf0,
            halo_rho_bytes=halo.bytes_scalar - bs0,
        )
        return (t1 - t0) + (t6 - t2)

    def _interior_view(self) -> np.ndarray:
        """This rank's ghost-free populations (both padded axes stripped
        under a 2-D decomposition)."""
        if self.cols > 1:
            return self.f[:, :, 1:-1, 1:-1]
        return self.f[:, :, 1:-1]

    def _interior_invariants(self) -> tuple[list[float], list[list[float]]]:
        """Per-component interior mass and momentum — the conserved
        quantities migration must not create or destroy (trace payload
        for ``remap_begin``/``remap_end`` events)."""
        interior = self._interior_view()
        c_count, q_count = interior.shape[0], interior.shape[1]
        per_q = interior.reshape(c_count, q_count, -1).sum(axis=2)  # (C, Q)
        masses = [comp.mass for comp in self.config.components]
        mass = [float(m * per_q[ci].sum()) for ci, m in enumerate(masses)]
        mom = per_q @ self.config.lattice.c.astype(np.float64)  # (C, D)
        momentum = [
            [float(m * x) for x in mom[ci]] for ci, m in enumerate(masses)
        ]
        return mass, momentum

    def _emit_remap_state(self, type_: str, rnd: int) -> None:
        mass, momentum = self._interior_invariants()
        self.observer.emit(
            type_, round=rnd, planes=self.local_planes,
            mass=mass, momentum=momentum,
        )

    def _emit_migrate(
        self, rnd: int, action: str, direction: str, package: np.ndarray
    ) -> None:
        self.observer.emit(
            "migrate",
            round=rnd,
            action=action,
            direction=direction,
            planes=int(package.shape[2]),
            bytes=int(package.nbytes),
        )
        self.observer.counter("migration.planes").add(package.shape[2])
        if action == "send":
            self.observer.counter("migration.bytes").add(package.nbytes)

    # ------------------------------------------------------------ remapping
    def _predicted_time(self) -> float:
        return self.remap_config.predictor.predict(self.history)

    def maybe_remap(self) -> None:
        """Run the remapping protocol if this phase sits on the interval
        boundary (call after :meth:`step_phase`)."""
        if self.policy_name == "no-remap":
            return
        if self.phase % self.remap_config.interval != 0:
            return
        traced = self.observer.enabled
        if traced:
            self._emit_remap_state("remap_begin", self.phase)
        if self.cols > 1:
            self._remap_cart()
        elif self.policy_name == "global":
            self._remap_global()
        else:
            self._remap_local()
        if traced:
            self._emit_remap_state("remap_end", self.phase)
        self.plane_history.append(self.local_planes)

    def _remap_local(self) -> None:
        """Distributed conservative/filtered remapping: neighbour load-index
        exchange, window proposals, per-edge conflict netting, migration."""
        comm = self.comm
        rank, size = comm.rank, comm.size
        if size == 1:
            return
        rnd = self.phase
        my_points = self.local_planes * self.plane_points
        my_time = self._predicted_time()

        # 1. Load-index exchange with chain neighbours.
        payload = (my_points, my_time)
        left = rank - 1 if rank > 0 else None
        right = rank + 1 if rank < size - 1 else None
        if left is not None:
            comm.send(left, ("loadidx", rnd, "L"), payload)
        if right is not None:
            comm.send(right, ("loadidx", rnd, "R"), payload)
        info_left = comm.recv(left, ("loadidx", rnd, "R")) if left is not None else None
        info_right = (
            comm.recv(right, ("loadidx", rnd, "L")) if right is not None else None
        )

        # 2. Window proposals (same code the centralized policy runs).
        window: list[tuple[int, float]] = []
        my_idx = 0
        if info_left is not None:
            window.append(info_left)
            my_idx = 1
        window.append(payload)
        if info_right is not None:
            window.append(info_right)
        counts = np.array([w[0] for w in window], dtype=np.float64)
        times = np.array([w[1] for w in window], dtype=np.float64)
        speeds = counts / times
        threshold = self.remap_config.threshold_points_for(self.plane_points)
        filtered = self.policy_name == "filtered"

        def propose(local_j: int) -> float:
            return window_proposal(
                counts,
                speeds,
                my_idx,
                local_j,
                self.remap_config,
                threshold,
                filtered=filtered,
            )

        give_left_pts = propose(my_idx - 1) if info_left is not None else 0.0
        give_right_pts = propose(my_idx + 1) if info_right is not None else 0.0

        # 3. Conflict resolution: exchange proposals per edge and net them.
        if left is not None:
            comm.send(left, ("proposal", rnd, "L"), give_left_pts)
        if right is not None:
            comm.send(right, ("proposal", rnd, "R"), give_right_pts)
        opposing_left = (
            comm.recv(left, ("proposal", rnd, "R")) if left is not None else 0.0
        )
        opposing_right = (
            comm.recv(right, ("proposal", rnd, "L")) if right is not None else 0.0
        )
        # Net flow on my left edge (positive: I send leftward) and right
        # edge (positive: I send rightward); both endpoints compute the
        # same values from the same two proposals.
        net_left = give_left_pts - opposing_left
        net_right = give_right_pts - opposing_right
        out_left = int(net_left // self.plane_points) if net_left > 0 else 0
        out_right = int(net_right // self.plane_points) if net_right > 0 else 0
        in_left = int((-net_left) // self.plane_points) if net_left < 0 else 0
        in_right = int((-net_right) // self.plane_points) if net_right < 0 else 0

        # 4. Clamp own outflows so at least one interior plane stays.
        max_out = self.local_planes - 1
        total_out = out_left + out_right
        if total_out > max_out:
            need = total_out - max_out
            cut_right = min(out_right, -(-need * out_right // max(total_out, 1)))
            cut_left = min(out_left, need - cut_right)
            out_right -= cut_right
            out_left -= cut_left

        traced = self.observer.enabled
        if traced:
            self.observer.emit(
                "remap_decision",
                round=rnd,
                policy=self.policy_name,
                load_index=my_time,
                points=my_points,
                give_left_pts=float(give_left_pts),
                give_right_pts=float(give_right_pts),
                net_left=float(net_left),
                net_right=float(net_right),
                out_left=out_left,
                out_right=out_right,
                in_left=in_left,
                in_right=in_right,
            )

        # 5. Migration (senders include the package; receivers always get a
        # message when the netting said a transfer is due, possibly empty
        # because of the sender's clamp).
        if out_left > 0 or (left is not None and net_left > 0):
            package = None
            if out_left > 0:
                package, self.f = pack_planes(self.f, "left", out_left)
                # Bookkeeping before reallocation: _alloc_state slices the
                # geometry provider by the *new* plane_start.
                self.plane_start += out_left
                self._after_resize(-out_left)
                self.planes_sent += out_left
                if traced:
                    self._emit_migrate(rnd, "send", "left", package)
            comm.send(left, ("migrate", rnd, "L"), package)
        if out_right > 0 or (right is not None and net_right > 0):
            package = None
            if out_right > 0:
                package, self.f = pack_planes(self.f, "right", out_right)
                self._after_resize(-out_right)
                self.planes_sent += out_right
                if traced:
                    self._emit_migrate(rnd, "send", "right", package)
            comm.send(right, ("migrate", rnd, "R"), package)
        if in_left > 0:
            package = comm.recv(left, ("migrate", rnd, "R"))
            if package is not None:
                self.f = unpack_planes(self.f, package, "left")
                self.plane_start -= package.shape[2]
                self._after_resize(package.shape[2])
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "left", package)
        if in_right > 0:
            package = comm.recv(right, ("migrate", rnd, "L"))
            if package is not None:
                self.f = unpack_planes(self.f, package, "right")
                self._after_resize(package.shape[2])
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "right", package)

        # 6. Refresh derived state for the (possibly) new slab.
        self._moments_and_forces(("post_remap", rnd))

    def _remap_global(self) -> None:
        """Global scheme: allgather load indices, every rank evaluates the
        same proportional-target decision, then pairwise edge migrations."""
        comm = self.comm
        rank, size = comm.rank, comm.size
        if size == 1:
            return
        rnd = self.phase
        my_planes = self.local_planes
        gathered = comm.allgather(
            (my_planes, self._predicted_time()), ("remap_global", rnd)
        )
        counts = [g[0] for g in gathered]
        times = np.array([g[1] for g in gathered])
        partition = SlicePartition(counts, self.plane_points)
        flows = GlobalPolicy(self.remap_config).decide(partition, times)
        traced = self.observer.enabled
        if traced:
            self.observer.emit(
                "remap_decision",
                round=rnd,
                policy=self.policy_name,
                load_index=float(times[rank]),
                points=my_planes * self.plane_points,
                flows=[int(x) for x in flows],
            )

        # Apply this rank's edges, left first (matching flow semantics:
        # flows[e] planes go from rank e to rank e+1).
        if rank > 0:
            flow = int(flows[rank - 1])
            if flow > 0:  # receiving from the left
                package = comm.recv(rank - 1, ("migrate", rnd, "R"))
                self.f = unpack_planes(self.f, package, "left")
                self.plane_start -= package.shape[2]
                self._after_resize(package.shape[2])
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "left", package)
            elif flow < 0:  # sending leftward
                package, self.f = pack_planes(self.f, "left", -flow)
                self.plane_start += -flow
                self._after_resize(flow)
                self.planes_sent += -flow
                comm.send(rank - 1, ("migrate", rnd, "L"), package)
                if traced:
                    self._emit_migrate(rnd, "send", "left", package)
        if rank < size - 1:
            flow = int(flows[rank])
            if flow > 0:  # sending rightward
                package, self.f = pack_planes(self.f, "right", flow)
                self._after_resize(-flow)
                self.planes_sent += flow
                comm.send(rank + 1, ("migrate", rnd, "R"), package)
                if traced:
                    self._emit_migrate(rnd, "send", "right", package)
            elif flow < 0:  # receiving from the right
                package = comm.recv(rank + 1, ("migrate", rnd, "L"))
                self.f = unpack_planes(self.f, package, "right")
                self._after_resize(package.shape[2])
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "right", package)
        self._moments_and_forces(("post_remap", rnd))

    def _remap_cart(self) -> None:
        """Remapping on a 2-D grid: one allgather of every subdomain's
        load index, from which *all* ranks derive identical per-axis
        chain flows — rows rebalance x planes, columns rebalance
        cross-section bands — then bands move pairwise along each axis
        (rows exchange with the vertical neighbour in the same column
        and vice versa, so the grid stays cartesian by construction)."""
        comm = self.comm
        rnd = self.phase
        rows, cols = self.rows, self.cols
        my_time = self._predicted_time()
        gathered = comm.allgather(
            (
                self.row,
                self.col,
                self.local_planes,
                self.local_cols,
                my_time,
            ),
            ("remap_cart", rnd),
        )
        row_planes = [0] * rows
        col_bands = [0] * cols
        row_times: list[list[float]] = [[] for _ in range(rows)]
        col_times: list[list[float]] = [[] for _ in range(cols)]
        for r, c, planes, bands, t in gathered:
            row_planes[r] = planes
            col_bands[c] = bands
            row_times[r].append(t)
            col_times[c].append(t)
        rest_points = int(np.prod(self.cross[1:])) if len(self.cross) > 1 else 1
        flows_r = _chain_flows(
            row_planes,
            [float(np.mean(ts)) for ts in row_times],
            int(self.cross[0]) * rest_points,
            self.policy_name,
            self.remap_config,
        )
        flows_c = _chain_flows(
            col_bands,
            [float(np.mean(ts)) for ts in col_times],
            int(self.config.geometry.shape[0]) * rest_points,
            self.policy_name,
            self.remap_config,
        )
        traced = self.observer.enabled
        if traced:
            self.observer.emit(
                "remap_decision",
                round=rnd,
                policy=self.policy_name,
                load_index=float(my_time),
                points=self.local_planes * self.local_cols * rest_points,
                row_flows=[int(x) for x in flows_r],
                col_flows=[int(x) for x in flows_c],
            )
        topo = self.topo
        row, col = self.row, self.col
        # Row axis: x planes move between vertically adjacent rows (low
        # edge first, matching the 1-D chain protocol's ordering).
        if row > 0:
            flow = int(flows_r[row - 1])
            peer = topo.rank_of(row - 1, col)
            if flow > 0:  # receiving planes from the row above
                package = comm.recv(peer, ("migrate", rnd, "R"))
                self.f = unpack_band(self.f, package, 2, "low")
                self.plane_start -= package.shape[2]
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "left", package)
            elif flow < 0:  # sending planes upward
                package, self.f = pack_band(self.f, 2, "low", -flow)
                self.plane_start += -flow
                self.planes_sent += -flow
                comm.send(peer, ("migrate", rnd, "L"), package)
                if traced:
                    self._emit_migrate(rnd, "send", "left", package)
        if row < rows - 1:
            flow = int(flows_r[row])
            peer = topo.rank_of(row + 1, col)
            if flow > 0:  # sending planes downward
                package, self.f = pack_band(self.f, 2, "high", flow)
                self.planes_sent += flow
                comm.send(peer, ("migrate", rnd, "R"), package)
                if traced:
                    self._emit_migrate(rnd, "send", "right", package)
            elif flow < 0:
                package = comm.recv(peer, ("migrate", rnd, "L"))
                self.f = unpack_band(self.f, package, 2, "high")
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "right", package)
        # Column axis: cross-section bands move between horizontally
        # adjacent columns.
        if col > 0:
            flow = int(flows_c[col - 1])
            peer = topo.rank_of(row, col - 1)
            if flow > 0:
                package = comm.recv(peer, ("migrate", rnd, "U"))
                self.f = unpack_band(self.f, package, 3, "low")
                self.col_start -= package.shape[3]
                if traced:
                    self._emit_migrate(rnd, "recv", "down", package)
            elif flow < 0:
                package, self.f = pack_band(self.f, 3, "low", -flow)
                self.col_start += -flow
                comm.send(peer, ("migrate", rnd, "D"), package)
                if traced:
                    self._emit_migrate(rnd, "send", "down", package)
        if col < cols - 1:
            flow = int(flows_c[col])
            peer = topo.rank_of(row, col + 1)
            if flow > 0:
                package, self.f = pack_band(self.f, 3, "high", flow)
                comm.send(peer, ("migrate", rnd, "U"), package)
                if traced:
                    self._emit_migrate(rnd, "send", "up", package)
            elif flow < 0:
                package = comm.recv(peer, ("migrate", rnd, "D"))
                self.f = unpack_band(self.f, package, 3, "high")
                if traced:
                    self._emit_migrate(rnd, "recv", "up", package)
        # One reallocation after both axes settle (the 1-D paths realloc
        # per transfer; here a rank can take part in up to four).
        self._alloc_state()
        self._moments_and_forces(("post_remap", rnd))

    def _after_resize(self, delta: int) -> None:
        self.decomp.adjust(self.comm.rank, delta)
        self._alloc_state()

    # ---------------------------------------------------------- checkpoints
    def check_health(self, max_velocity: float = 0.4) -> None:
        """Raise ``FloatingPointError`` if this rank's interior went
        non-finite or too fast — the gate in front of every checkpoint
        write (a snapshot of a diverged state is worse than none)."""
        rank = self.comm.rank
        if not np.isfinite(self._interior_view()).all():
            raise FloatingPointError(
                f"rank {rank}: non-finite populations at phase {self.phase}"
            )
        u = mixture_velocity(self.rho, self.mom, self.force)
        mask = self._collide_mask > 0.0  # interior fluid nodes
        umax = float(np.abs(u[:, mask]).max()) if mask.any() else 0.0
        if umax > max_velocity:
            raise FloatingPointError(
                f"rank {rank}: velocity {umax:.3f} exceeds stability bound "
                f"{max_velocity} at phase {self.phase}"
            )

    def _shard_arrays(self) -> dict[str, np.ndarray]:
        return {
            "f": np.ascontiguousarray(self._interior_view()),
            "step": np.asarray(self.phase, dtype=np.int64),
            "planes_sent": np.asarray(self.planes_sent, dtype=np.int64),
            "planes_received": np.asarray(
                self.planes_received, dtype=np.int64
            ),
            "plane_history": np.asarray(self.plane_history, dtype=np.int64),
            "history": np.asarray(self.history.times(), dtype=np.float64),
        }

    def _write_checkpoint(self) -> None:
        """Collective checkpoint of the current phase (all ranks call this
        at the same phase boundary).

        Protocol: (1) every rank health-checks itself and the verdicts are
        allgathered — so either all ranks proceed or all raise
        :class:`~repro.ckpt.CheckpointRejected` together, and no rank can
        be left waiting on a peer that bailed; (2) each rank writes its
        shard atomically; (3) the shard records are allgathered and rank 0
        commits the manifest (itself an atomic rename).  A crash anywhere
        before (3) leaves an uncommitted generation that readers ignore.
        """
        comm, store = self.comm, self.checkpoint_store
        step = self.phase
        try:
            self.check_health()
            verdict = None
        except FloatingPointError as exc:
            verdict = str(exc)
        verdicts = comm.allgather(verdict, ("ckpt_health", step))
        bad = [v for v in verdicts if v is not None]
        if bad:
            raise CheckpointRejected("; ".join(bad))
        with self.observer.span("ckpt.save", step=step):
            shard = store.write_shard(
                step,
                comm.rank,
                self._shard_arrays(),
                plane_start=self.plane_start,
                plane_count=self.local_planes,
                col_start=self.col_start,
                col_count=self.local_cols if self.cols > 1 else None,
            )
            infos = comm.allgather(shard.to_json(), ("ckpt_shards", step))
            if comm.rank == 0:
                store.commit(
                    step,
                    config_fingerprint(self.config),
                    [ShardInfo.from_json(doc) for doc in infos],
                )

    def _adopt_interior(
        self,
        f_interior: np.ndarray,
        plane_start: int,
        tag: object,
        col_start: int = 0,
    ) -> None:
        """Replace this rank's subdomain with *f_interior* (no ghosts)
        starting at global plane *plane_start* (and, under 2-D, global
        column *col_start*), then refresh all derived state — the same
        sequence a migration uses, so the next phase continues
        bit-identically."""
        ln = int(f_interior.shape[2])
        if self.cols > 1:
            lc = int(f_interior.shape[3])
            new_f = np.zeros(
                f_interior.shape[:2] + (ln + 2, lc + 2, *self.cross[1:]),
                dtype=np.float64,
            )
            new_f[:, :, 1:-1, 1:-1] = f_interior
        else:
            new_f = np.zeros(
                f_interior.shape[:2] + (ln + 2, *self.cross),
                dtype=np.float64,
            )
            new_f[:, :, 1:-1] = f_interior
        delta = ln - self.local_planes
        self.f = new_f
        if delta:
            self.decomp.adjust(self.comm.rank, delta)
        self.plane_start = int(plane_start)
        self.col_start = int(col_start)
        self._alloc_state()
        self._moments_and_forces(tag)

    def _grid_shard(
        self, manifest: Manifest, shards: tuple[ShardInfo, ...]
    ) -> ShardInfo | None:
        """This rank's shard when the generation's rectangles form
        exactly this run's ``rows × cols`` grid (the 2-D fast path:
        every rank re-adopts its own rectangle); ``None`` sends the
        restore down the reassemble-and-resplit path."""
        if len(shards) != self.comm.size:
            return None
        bands: dict[tuple[int, int], list[ShardInfo]] = {}
        for shard in shards:
            if shard.col_count is None:
                return None
            bands.setdefault(
                (shard.plane_start, shard.plane_count), []
            ).append(shard)
        if len(bands) != self.rows:
            return None
        layouts = {
            tuple((s.col_start, s.col_count) for s in members)
            for members in bands.values()
        }
        if len(layouts) != 1 or len(next(iter(layouts))) != self.cols:
            return None
        # shards_in_x_order sorts by (plane_start, col_start) — exactly
        # the grid's row-major rank order.
        return shards[self.comm.rank]

    def restore_checkpoint(self, manifest: Manifest | None = None) -> Manifest:
        """Collective restore from the store's latest good generation (or
        an explicit *manifest*).

        When the generation's ownership map matches this run's
        decomposition — one shard per rank under a 1-D slab, or a
        rectangle grid congruent with this run's ``rows × cols`` — each
        rank reloads its own shard: ownership, remap history and
        counters resume exactly where they were.  Otherwise (different
        rank count, or crossing between 1-D and 2-D layouts in either
        direction) the global field is reassembled from the shard
        rectangles and re-split evenly over the current decomposition;
        the physics is unchanged (decomposition invariance), only the
        remapping bookkeeping restarts.
        """
        store = self.checkpoint_store
        if store is None:
            raise CheckpointError("this driver has no checkpoint_store")
        if manifest is None:
            manifest = store.latest_good()
            if manifest is None:
                raise CheckpointError(
                    f"no restorable generation under {store.root}"
                )
        check_fingerprint(manifest, self.config)
        comm = self.comm
        shards = manifest.shards_in_x_order()
        with self.observer.span("ckpt.restore", step=manifest.step):
            if self.cols > 1:
                mine = self._grid_shard(manifest, shards)
            elif (
                len(shards) == comm.size
                and not manifest.is_two_dimensional()
            ):
                mine = shards[comm.rank]
            else:
                mine = None
            if mine is not None:
                arrays = store.load_shard_arrays(manifest, mine)
                self._adopt_interior(
                    arrays["f"],
                    mine.plane_start,
                    ("restore", manifest.step),
                    col_start=mine.col_start,
                )
                self.planes_sent = int(arrays["planes_sent"])
                self.planes_received = int(arrays["planes_received"])
                self.plane_history = [
                    int(x) for x in arrays["plane_history"]
                ]
                self.history.clear()
                for sample in arrays["history"]:
                    self.history.record(float(sample))
            else:
                f_global = store.load_global_f(manifest)
                if self.cols > 1:
                    row_counts = even_split(f_global.shape[2], self.rows)
                    col_counts = even_split(f_global.shape[3], self.cols)
                    start = sum(row_counts[: self.row])
                    cstart = sum(col_counts[: self.col])
                    self._adopt_interior(
                        f_global[
                            :,
                            :,
                            start : start + row_counts[self.row],
                            cstart : cstart + col_counts[self.col],
                        ],
                        start,
                        ("restore", manifest.step),
                        col_start=cstart,
                    )
                else:
                    base, extra = divmod(f_global.shape[2], comm.size)
                    if base < 1:
                        raise CheckpointError(
                            f"checkpoint has {f_global.shape[2]} planes, "
                            f"too few for {comm.size} ranks"
                        )
                    counts = [
                        base + (1 if r < extra else 0)
                        for r in range(comm.size)
                    ]
                    start = sum(counts[: comm.rank])
                    self._adopt_interior(
                        f_global[:, :, start : start + counts[comm.rank]],
                        start,
                        ("restore", manifest.step),
                    )
                self.planes_sent = 0
                self.planes_received = 0
                self.plane_history = [self.local_planes]
                self.history.clear()
        self.phase = manifest.step
        if self.observer.enabled:
            self.observer.counter("ckpt.restores").add(1)
        return manifest

    # ------------------------------------------------------------------ run
    def run(self, phases: int) -> ParallelRunResult:
        check_integer(phases, "phases", minimum=0)
        for _ in range(phases):
            if self.faults is not None:
                self.faults.fire(
                    "phase_start", rank=self.comm.rank, at=self.phase
                )
            self.step_phase()
            self.maybe_remap()
            if (
                self.checkpoint_every
                and self.phase % self.checkpoint_every == 0
            ):
                self._write_checkpoint()
        interior = np.ascontiguousarray(self._interior_view())
        exposed = self.halo.wait_f_seconds + self.halo.wait_scalar_seconds
        if self.observer.enabled:
            self.observer.emit(
                "run_end",
                phases=self.phase,
                planes=self.local_planes,
                planes_sent=self.planes_sent,
                planes_received=self.planes_received,
                halo_f_bytes=self.halo.bytes_f,
                halo_rho_bytes=self.halo.bytes_scalar,
                exposed_wait_s=exposed,
            )
        return ParallelRunResult(
            rank=self.comm.rank,
            plane_start=self.plane_start,
            f_interior=interior,
            plane_count=self.local_planes,
            plane_history=self.plane_history,
            comp_times=self.comp_times,
            planes_sent=self.planes_sent,
            planes_received=self.planes_received,
            mass=float(
                sum(
                    comp.mass * interior[ci].sum()
                    for ci, comp in enumerate(self.config.components)
                )
            ),
            col_start=self.col_start,
            col_count=self.local_cols if self.cols > 1 else None,
            exposed_wait_s=exposed,
        )


def _chain_flows(
    counts: list[int],
    times: list[float],
    band_points: int,
    policy: str,
    remap_config: RemappingConfig,
) -> list[int]:
    """Edge flows for one decomposition axis: ``flows[e]`` bands move
    from band *e* to band *e+1* (negative: the other way).  Every rank
    evaluates this on the same allgathered data, so the decisions agree
    without further communication.  ``"global"`` delegates to
    :class:`~repro.core.policies.GlobalPolicy`; the windowed policies
    replicate the distributed chain protocol — per-neighbour
    ``window_proposal``, per-edge netting, per-band outflow clamp — in
    one deterministic sweep."""
    n = len(counts)
    if n <= 1:
        return []
    times_arr = np.asarray(times, dtype=np.float64)
    if policy == "global":
        partition = SlicePartition(list(counts), band_points)
        decided = GlobalPolicy(remap_config).decide(partition, times_arr)
        return [int(x) for x in decided]
    pts = np.asarray(counts, dtype=np.float64) * band_points
    speeds = pts / times_arr
    threshold = remap_config.threshold_points_for(band_points)
    filtered = policy == "filtered"
    give_left = [0.0] * n
    give_right = [0.0] * n
    for i in range(n):
        lo = max(0, i - 1)
        hi = min(n, i + 2)
        my_idx = i - lo
        if i > 0:
            give_left[i] = window_proposal(
                pts[lo:hi],
                speeds[lo:hi],
                my_idx,
                my_idx - 1,
                remap_config,
                threshold,
                filtered=filtered,
            )
        if i < n - 1:
            give_right[i] = window_proposal(
                pts[lo:hi],
                speeds[lo:hi],
                my_idx,
                my_idx + 1,
                remap_config,
                threshold,
                filtered=filtered,
            )
    flows = [0] * (n - 1)
    for e in range(n - 1):
        net = give_right[e] - give_left[e + 1]
        if net > 0:
            flows[e] = int(net // band_points)
        elif net < 0:
            flows[e] = -int((-net) // band_points)
    # Per-band outflow clamp (at least one band must remain), computed
    # from the pre-clamp flows exactly as each rank of the distributed
    # protocol clamps its own outflows from the original nets.
    orig = list(flows)
    for i in range(n):
        out_left = -orig[i - 1] if i > 0 and orig[i - 1] < 0 else 0
        out_right = orig[i] if i < n - 1 and orig[i] > 0 else 0
        max_out = counts[i] - 1
        total_out = out_left + out_right
        if total_out > max_out:
            need = total_out - max_out
            cut_right = min(
                out_right, -(-need * out_right // max(total_out, 1))
            )
            cut_left = min(out_left, need - cut_right)
            if cut_right:
                flows[i] -= cut_right
            if cut_left:
                flows[i - 1] += cut_left
    return flows


def _spec_observer(spec: Any) -> tuple[ObserverLike, bool]:
    """Resolve a RunSpec's observer/trace_path pair to a concrete
    observer; the bool says whether this run owns (must close) it."""
    observer = spec.observer
    if spec.trace_path is not None:
        if observer is not None and observer is not NULL_OBSERVER:
            raise ValueError("pass either observer or trace_path, not both")
        return Observer(sink=JsonlSink(spec.trace_path)), True
    return resolve_observer(observer), False


def _slot_bytes_for(config: LBMConfig) -> int:
    """Shared-memory ring slot size for a process-transport run: one
    full population plane (every component, every direction), so a halo
    message is a single-chunk transfer and a k-plane migration package
    takes k slots."""
    plane_cells = int(np.prod(config.geometry.shape[1:]))
    plane_bytes = config.n_components * config.lattice.Q * plane_cells * 8
    return min(max(plane_bytes, 1 << 12), 1 << 26)


def resolve_decomp(
    decomp: Any, shape: tuple[int, ...], n_ranks: int
) -> tuple[int, int]:
    """Resolve a RunSpec ``decomp`` knob to concrete ``(rows, cols)``
    grid dimensions: ``"auto"``/``"slab"`` keep the 1-D slab,
    ``"grid"`` picks the most-square factorization that fits the
    domain, an explicit tuple is validated against the rank count."""
    if isinstance(decomp, str):
        if decomp == "grid":
            return grid_for(n_ranks, shape)
        if decomp in ("auto", "slab"):
            return (n_ranks, 1)
        raise ValueError(
            f"decomp must be 'auto', 'slab', 'grid' or a (rows, cols) "
            f"tuple, got {decomp!r}"
        )
    rows, cols = int(decomp[0]), int(decomp[1])
    if rows * cols != n_ranks:
        raise ValueError(
            f"decomp {rows}x{cols} describes {rows * cols} subdomains "
            f"for {n_ranks} ranks"
        )
    return rows, cols


def _run_parallel(spec: Any, config: LBMConfig, store: Any) -> list[ParallelRunResult]:
    """Execute a parallel RunSpec (the engine behind
    :func:`repro.api.run`; *config* is the spec's backend-resolved
    configuration and *store* its resolved checkpoint store)."""
    n_ranks = spec.ranks
    phases = spec.phases
    total_planes = config.geometry.shape[0]
    transport = resolve_transport(spec.transport)
    rows, cols = resolve_decomp(
        getattr(spec, "decomp", "auto"), config.geometry.shape, n_ranks
    )
    if cols > 1 and spec.initial_counts is not None:
        raise ValueError(
            "initial_counts is a 1-D slab knob and cannot seed a "
            f"{rows}x{cols} grid; drop it or use decomp=({n_ranks}, 1)"
        )
    topo = (
        CartTopology.from_shape(config.geometry.shape, rows, cols)
        if cols > 1
        else None
    )

    initial_counts = (
        list(spec.initial_counts) if spec.initial_counts is not None else None
    )
    resume_manifest = None
    phases_to_run = phases
    if spec.resume:
        if store is None:
            raise ValueError("resume=True needs a checkpoint_store")
        resume_manifest = store.latest_good()
        if resume_manifest is not None:
            check_fingerprint(resume_manifest, config)
            phases_to_run = max(0, phases - resume_manifest.step)
            shards = resume_manifest.shards_in_x_order()
            if (
                cols == 1
                and len(shards) == n_ranks
                and initial_counts is None
                and not resume_manifest.is_two_dimensional()
            ):
                # Start each rank at its checkpointed slab size so the
                # per-shard restore path needs no reallocation.
                initial_counts = [s.plane_count for s in shards]

    if cols == 1 and initial_counts is None:
        base, extra = divmod(total_planes, n_ranks)
        if base < 1:
            raise ValueError("more ranks than planes")
        initial_counts = [base + (1 if r < extra else 0) for r in range(n_ranks)]

    obs, owns_observer = _spec_observer(spec)
    if obs.enabled:
        obs.emit(
            "run_start",
            n_ranks=n_ranks,
            transport=transport,
            backend=config.backend,
            policy=spec.policy,
            shape=list(config.geometry.shape),
            n_components=config.n_components,
            phases=phases,
            initial_counts=(
                list(initial_counts)
                if initial_counts is not None
                else [int(x) for x in topo.row_counts()]
            ),
            decomp=[rows, cols],
        )

    # Rank processes cannot share the parent's sink object, so under the
    # process transport each rank collects events in a MemorySink pinned
    # to the parent sink's clock origin (perf_counter is CLOCK_MONOTONIC
    # on Linux — one time base across processes) and ships them back
    # with its result; the parent merges them by timestamp.
    fork_obs = transport == "processes" and obs.enabled
    parent_t0 = obs.sink.t0 if fork_obs else 0.0

    def rank_main(comm: Communicator):
        rank_obs: ObserverLike = obs
        rank_sink = None
        if fork_obs:
            rank_sink = MemorySink(t0=parent_t0)
            rank_obs = Observer(sink=rank_sink)
        driver = ParallelLBM(
            comm,
            config,
            list(initial_counts) if topo is None else None,
            topo=topo,
            policy=spec.policy,
            remap_config=spec.remap_config,
            load_time_fn=spec.load_time_fn,
            observer=rank_obs,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_store=store,
            faults=spec.faults,
            halo_overlap=getattr(spec, "halo_overlap", True),
        )
        if resume_manifest is not None:
            driver.restore_checkpoint(manifest=resume_manifest)
        result = driver.run(phases_to_run)
        if rank_sink is not None:
            # This rank's metrics snapshot, emitted unbound (no rank key)
            # exactly like the thread transport's single shared snapshot,
            # so per-rank event schemas are transport-independent.
            rank_obs.emit_metrics()
            return result, rank_sink.events
        return result

    try:
        raw = launch_spmd(
            n_ranks,
            rank_main,
            transport=transport,
            timeout=spec.timeout,
            slot_bytes=_slot_bytes_for(config),
        )
        if fork_obs:
            results = [result for result, _ in raw]
            merged = sorted(
                (event for _, events in raw for event in events),
                key=lambda event: event.get("ts", 0.0),
            )
            obs.sink.absorb(merged)
        else:
            results = raw
            if obs.enabled:
                obs.emit_metrics()
        return results
    finally:
        if owns_observer:
            obs.close()


def run_parallel_lbm(
    n_ranks: int,
    config: LBMConfig,
    phases: int,
    *,
    transport: str | None = None,
    policy: str = "filtered",
    remap_config: RemappingConfig | None = None,
    load_time_fn: LoadTimeFn | None = None,
    initial_counts: list[int] | None = None,
    decomp: str | tuple[int, int] = "auto",
    timeout: float = 600.0,
    observer: ObserverLike = NULL_OBSERVER,
    trace_path: str | None = None,
    checkpoint_every: int = 0,
    checkpoint_store=None,
    resume: bool = False,
    faults=None,
) -> list[ParallelRunResult]:
    """Run the parallel LBM on an in-process cluster of *n_ranks* ranks.

    .. deprecated::
        This is a thin shim over the :mod:`repro.api` facade — build a
        :class:`repro.api.RunSpec` and call :func:`repro.api.run`
        instead.  Every keyword maps 1:1 onto a RunSpec field and the
        results are identical.

    *transport* selects ``"threads"`` or ``"processes"`` (default: the
    ``REPRO_TRANSPORT`` environment variable, then threads).  Returns
    the per-rank results in rank order; use :func:`assemble_global_f`
    to reconstruct the global field.

    Observability: pass an enabled :class:`repro.obs.Observer` (shared
    sink; each rank gets a rank-stamped child), or *trace_path* to write
    a self-contained JSONL trace (``run_start`` metadata, per-phase
    timings and halo bytes, remap/migration events, metrics snapshots).
    With neither, the ``REPRO_OBS_TRACE`` environment variable is
    consulted; unset means zero instrumentation overhead.

    Checkpointing (see :mod:`repro.ckpt`): pass a shared
    :class:`~repro.ckpt.CheckpointStore` plus ``checkpoint_every`` to
    snapshot periodically.  With ``resume=True``, *phases* is the TOTAL
    phase target: the ranks restore the latest good generation (if any)
    and run only the remainder — bit-exactly continuing the interrupted
    run.  *faults* (a :class:`~repro.ckpt.FaultPlan`) injects failures
    for recovery testing; injected :class:`~repro.ckpt.InjectedFault`
    errors surface from the cluster wrapped in ``RuntimeError``.
    """
    warnings.warn(
        "run_parallel_lbm is deprecated; build a repro.api.RunSpec and "
        "call repro.api.run(spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    spec = api.RunSpec(
        config=config,
        phases=phases,
        ranks=n_ranks,
        transport=transport,
        policy=policy,
        remap_config=remap_config,
        load_time_fn=load_time_fn,
        initial_counts=(
            tuple(initial_counts) if initial_counts is not None else None
        ),
        decomp=decomp,
        timeout=timeout,
        observer=observer,
        trace_path=trace_path,
        checkpoint_every=checkpoint_every,
        checkpoint_store=checkpoint_store,
        resume=resume,
        faults=faults,
    )
    if n_ranks == 1:
        # Legacy semantics: a 1-rank *parallel-driver* run (the facade
        # would dispatch ranks=1 to the sequential solver instead).
        return api.execute_parallel(spec)
    return api.run(spec).rank_results


def assemble_global_f(results: list[ParallelRunResult]) -> np.ndarray:
    """Reassemble per-rank interiors into the global population array
    ``(C, Q, nx, *cross)`` from each rank's final ownership rectangle:
    a 1-D slab run concatenates x bands (verified to tile the x axis
    exactly), a 2-D run places rectangles (verified to tile the
    ``nx × ny`` domain exactly)."""
    if all(r.col_count is None for r in results):
        ordered = sorted(results, key=lambda r: r.plane_start)
        expect = 0
        for r in ordered:
            if r.plane_start != expect:
                raise ValueError(
                    f"rank {r.rank} starts at plane {r.plane_start}, "
                    f"expected {expect}: the ownership map does not tile "
                    f"the x axis"
                )
            if r.plane_count != r.f_interior.shape[2]:
                raise ValueError(
                    f"rank {r.rank} reports {r.plane_count} planes but "
                    f"carries {r.f_interior.shape[2]}"
                )
            expect += r.plane_count
        return np.concatenate([r.f_interior for r in ordered], axis=2)
    if any(r.col_count is None for r in results):
        raise ValueError(
            "cannot assemble a mix of 1-D slab and 2-D rectangle results"
        )
    ordered = sorted(results, key=lambda r: (r.plane_start, r.col_start))
    nx = max(r.plane_start + r.plane_count for r in ordered)
    ny = max(r.col_start + r.col_count for r in ordered)
    first = ordered[0].f_interior
    out = np.zeros(
        first.shape[:2] + (nx, ny) + first.shape[4:], dtype=first.dtype
    )
    seen = np.zeros((nx, ny), dtype=bool)
    for r in ordered:
        if r.f_interior.shape[2:4] != (r.plane_count, r.col_count):
            raise ValueError(
                f"rank {r.rank} reports a {r.plane_count}x{r.col_count} "
                f"rectangle but carries {r.f_interior.shape[2:4]}"
            )
        block = seen[
            r.plane_start : r.plane_start + r.plane_count,
            r.col_start : r.col_start + r.col_count,
        ]
        if block.any():
            raise ValueError(
                f"rank {r.rank}'s rectangle overlaps another rank's: the "
                f"ownership map does not tile the domain"
            )
        block[:] = True
        out[
            :,
            :,
            r.plane_start : r.plane_start + r.plane_count,
            r.col_start : r.col_start + r.col_count,
        ] = r.f_interior
    if not seen.all():
        raise ValueError(
            "ownership rectangles leave gaps: the map does not tile the "
            "domain"
        )
    return out


def solver_from_results(
    results: list[ParallelRunResult], config: LBMConfig
) -> "object":
    """Build a sequential solver holding the parallel run's final state,
    so the full :mod:`repro.lbm.diagnostics` toolbox (profiles, slip
    measures, exporters) applies to parallel output directly."""
    from repro.lbm.solver import MulticomponentLBM

    f_global = assemble_global_f(results)
    solver = MulticomponentLBM(config)
    if f_global.shape != solver.f.shape:
        raise ValueError(
            f"assembled field shape {f_global.shape} does not match the "
            f"configuration's {solver.f.shape}"
        )
    solver.f[:] = f_global
    solver.update_moments_and_forces()
    return solver
