"""The parallel multicomponent LBM driver — Figure 2 of the paper, for real.

Each rank owns an x-slab of the channel (plus ghost planes) and runs, per
phase: collision, halo exchange of the boundary distribution functions,
streaming + bounce-back, moment update, halo exchange of the number
densities, force and velocity computation.  Every ``REMAPPING_INTERVAL``
phases the ranks exchange load indices with their chain neighbours (or
allgather for the global scheme), agree on plane transfers using exactly
the window logic of :mod:`repro.core.policies`, and migrate raw
population planes.

The transport is the in-process :class:`~repro.parallel.threads.LocalCluster`;
to make remapping *behaviour* testable without real background jobs, a
``load_time_fn`` can replace wall-clock measurement as the per-phase load
index (the physics is unaffected — only the remapping decisions see it).
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.exchange import proportional_targets
from repro.core.history import PhaseTimeHistory
from repro.core.partition import SlicePartition
from repro.core.policies import (
    GlobalPolicy,
    RemappingConfig,
    window_proposal,
)
from repro.ckpt.manifest import (
    CheckpointError,
    CheckpointRejected,
    Manifest,
    ShardInfo,
    check_fingerprint,
    config_fingerprint,
)
from repro.lbm.backends import create_backend
from repro.lbm.equilibrium import equilibrium
from repro.lbm.forces import body_force_field, wall_force_field
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.macroscopic import mixture_velocity
from repro.lbm.solver import LBMConfig
from repro.obs.observer import (
    NULL_OBSERVER,
    Observer,
    ObserverLike,
    resolve_observer,
)
from repro.obs.sink import JsonlSink, MemorySink
from repro.parallel.api import Communicator
from repro.parallel.decomposition import SlabDecomposition
from repro.parallel.halo import HaloExchanger
from repro.parallel.launch import launch_spmd, resolve_transport
from repro.parallel.migration import pack_planes, unpack_planes
from repro.util.validation import check_integer

#: Load-index hook: (rank, phase, points) -> seconds.
LoadTimeFn = Callable[[int, int, int], float]


@dataclass
class ParallelRunResult:
    """What one rank reports back after a run.

    ``plane_start``/``plane_count`` are the rank's final slice of the
    global x axis — the plane-ownership map after all dynamic remapping,
    carried explicitly so reassembly never has to assume rank order
    equals x order (it does, for chain migration, and
    :func:`assemble_global_f` verifies it)."""

    rank: int
    plane_start: int
    f_interior: np.ndarray
    plane_count: int
    plane_history: list[int]
    comp_times: list[float]
    planes_sent: int
    planes_received: int
    mass: float


class ParallelLBM:
    """One rank's share of the parallel multicomponent LBM."""

    def __init__(
        self,
        comm: Communicator,
        config: LBMConfig,
        initial_counts: list[int],
        *,
        policy: str = "filtered",
        remap_config: RemappingConfig | None = None,
        load_time_fn: LoadTimeFn | None = None,
        observer: ObserverLike = NULL_OBSERVER,
        checkpoint_every: int = 0,
        checkpoint_store=None,
        faults=None,
    ):
        if len(initial_counts) != comm.size:
            raise ValueError(
                f"initial_counts must list {comm.size} entries, got "
                f"{len(initial_counts)}"
            )
        if sum(initial_counts) != config.geometry.shape[0]:
            raise ValueError(
                "initial plane counts must sum to the global x extent"
            )
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every and checkpoint_store is None:
            raise ValueError("checkpoint_every > 0 needs a checkpoint_store")
        self.comm = comm
        self.config = config
        self.policy_name = policy
        self.remap_config = remap_config or RemappingConfig()
        self.load_time_fn = load_time_fn
        self.decomp = SlabDecomposition(initial_counts)
        #: Checkpointing (see :mod:`repro.ckpt`): a shared store plus the
        #: interval in phases; 0 disables periodic snapshots.
        self.checkpoint_every = checkpoint_every
        self.checkpoint_store = checkpoint_store
        #: Fault-injection plan (:class:`repro.ckpt.FaultPlan`) shared by
        #: every rank; ``None`` in production.
        self.faults = faults
        #: Global index of this rank's first interior plane.  Maintained
        #: incrementally through migrations (the local ``decomp`` only
        #: tracks our own count, so its ``start`` goes stale) — chain
        #: migration keeps ranks x-ordered, so left-edge transfers are the
        #: only thing that moves it.
        self.plane_start = sum(initial_counts[: comm.rank])

        # Rank-scoped observability handle; the shared NULL_OBSERVER when
        # neither an observer nor REPRO_OBS_TRACE is provided.
        obs = resolve_observer(observer)
        if obs.enabled and obs.rank is None:
            obs = obs.child(comm.rank)
        self.observer = obs

        lat = config.lattice
        geo = config.geometry
        self.cross = geo.shape[1:]
        self.plane_points = int(np.prod(self.cross))
        self.halo = HaloExchanger(lat, comm, observer=obs)
        self.history = PhaseTimeHistory(self.remap_config.history)

        # Cross-section patterns (walls are x-invariant: axis 0 is periodic).
        thin_geo = ChannelGeometry(
            (1, *self.cross),
            wall_axes=geo.wall_axes,
            wall_thickness=geo.wall_thickness,
        )
        if config.scenario is not None and not config.scenario.x_invariant:
            raise ValueError(
                f"scenario {config.scenario.name!r} varies along the flow "
                f"axis; the slab-decomposed parallel driver shares one "
                f"cross-section wall pattern, so only x-invariant scenarios "
                f"can run on it (use ranks=1 or the batched ensemble path)"
            )
        self._solid_pattern = (
            config.scenario.solid_mask(thin_geo)
            if config.scenario is not None
            else thin_geo.solid_mask()
        )  # (1, *cross)
        self._fluid_pattern = ~self._solid_pattern
        n_comp = config.n_components
        self._accel = np.zeros(
            (n_comp, lat.D, 1, *self.cross), dtype=np.float64
        )
        if config.wall_force is not None:
            target = config.component_index(config.wall_force.component)
            self._accel[target] += wall_force_field(thin_geo, config.wall_force)
        if config.scenario is not None:
            target = config.component_index(config.scenario.component)
            self._accel[target] += config.scenario.wall_accel(thin_geo)
        if config.body_acceleration is not None:
            body = body_force_field(thin_geo, config.body_acceleration)
            for ci in range(n_comp):
                self._accel[ci] += body

        self.taus = np.array([c.tau for c in config.components])
        ln = self.decomp.planes(comm.rank)
        shape = (ln + 2, *self.cross)
        self.f = np.zeros((n_comp, lat.Q, *shape), dtype=np.float64)
        zero_u = np.zeros((lat.D, *shape), dtype=np.float64)
        fluid3 = np.broadcast_to(self._fluid_pattern, shape)
        for ci, comp in enumerate(config.components):
            rho0 = np.where(fluid3, comp.rho_init / comp.mass, 0.0)
            equilibrium(rho0, zero_u, lat, out=self.f[ci])
            self.f[ci, :, 0] = 0.0
            self.f[ci, :, -1] = 0.0

        self._alloc_state()
        self.phase = 0
        self.planes_sent = 0
        self.planes_received = 0
        self.plane_history: list[int] = [ln]
        self.comp_times: list[float] = []
        self._moments_and_forces(("init", 0))

    # ----------------------------------------------------------- state mgmt
    @property
    def local_planes(self) -> int:
        return self.f.shape[2] - 2

    def _alloc_state(self) -> None:
        """(Re)allocate the derived fields (and the kernel backend's
        scratch pool) for the current slab size."""
        lat = self.config.lattice
        n_comp = self.config.n_components
        shape = self.f.shape[2:]
        self.rho = np.zeros((n_comp, *shape), dtype=np.float64)
        self.mom = np.zeros((n_comp, lat.D, *shape), dtype=np.float64)
        self.force = np.zeros_like(self.mom)
        self.u_eq = np.zeros_like(self.mom)
        # Interior-only collide mask (ghosts excluded); psi keeps the
        # cross-section fluid pattern on ghosts (their densities are real
        # neighbour data needed by the S-C force).
        fluid3 = np.broadcast_to(self._fluid_pattern, shape).copy()
        self._psi_mask = fluid3.astype(np.float64)
        collide_mask = fluid3.copy()
        collide_mask[0] = False
        collide_mask[-1] = False
        self._collide_mask = collide_mask.astype(np.float64)
        self._solid3 = np.broadcast_to(self._solid_pattern, shape).copy()
        # Ranks inherit the backend from the shared config; scratch is
        # sized for the local slab, so rebuild after every migration.
        self.backend = create_backend(
            self.config, shape, self._solid3, observer=self.observer
        )

    # -------------------------------------------------------------- physics
    def _collide(self) -> None:
        self.backend.collide_bgk(
            self.f, self.rho, self.u_eq, self._collide_mask
        )

    def _stream_and_bounce(self) -> None:
        self.f = self.backend.stream(self.f)
        self.backend.bounce_back(self.f)

    def _moments_and_forces(self, tag: object) -> None:
        """Moment update + density halo + force/velocity computation (the
        second half of a phase; also rerun after migration)."""
        self.backend.moments(self.f, self.rho, self.mom)
        self.halo.exchange_scalar(self.rho, tag, "halo_rho")
        self.backend.forces_and_velocities(
            self.rho,
            self.mom,
            self.force,
            self.u_eq,
            accel=self._accel,
            psi_mask=self._psi_mask,
            vel_mask=self._collide_mask,
        )

    def step_phase(self) -> float:
        """One full phase; returns the load-index sample for this phase."""
        if self.observer.enabled:
            t_compute = self._timed_phase()
        else:
            t0 = time.perf_counter()
            self._collide()
            t_compute = time.perf_counter() - t0

            if self.faults is not None:
                # Between collision and the halo exchange: the state is
                # mid-update and no messages are in flight, so a job kill
                # here cannot strand a peer in a blocking recv.
                self.faults.fire(
                    "mid_phase", rank=self.comm.rank, at=self.phase
                )
            self.halo.exchange_f(self.f, self.phase)

            t1 = time.perf_counter()
            self._stream_and_bounce()
            self._moments_and_forces(self.phase)
            t_compute += time.perf_counter() - t1

        self.phase += 1
        if self.load_time_fn is not None:
            sample = self.load_time_fn(
                self.comm.rank, self.phase, self.local_planes * self.plane_points
            )
        else:
            sample = max(t_compute, 1e-9)
        self.comp_times.append(sample)
        self.history.record(sample)
        return sample

    def _timed_phase(self) -> float:
        """The same phase sequence with per-segment timings and halo byte
        deltas emitted as one ``phase`` trace event.  Returns the compute
        time with exactly the untraced composition (halo-f wait excluded,
        density-halo wait included, matching the load-index semantics)."""
        halo = self.halo
        bf0, bs0 = halo.bytes_f, halo.bytes_scalar
        t0 = time.perf_counter()
        self._collide()
        t1 = time.perf_counter()
        if self.faults is not None:
            self.faults.fire("mid_phase", rank=self.comm.rank, at=self.phase)
        halo.exchange_f(self.f, self.phase)
        t2 = time.perf_counter()
        self._stream_and_bounce()
        t3 = time.perf_counter()
        # _moments_and_forces, split so the density-halo wait is visible.
        self.backend.moments(self.f, self.rho, self.mom)
        t4 = time.perf_counter()
        halo.exchange_scalar(self.rho, self.phase, "halo_rho")
        t5 = time.perf_counter()
        self.backend.forces_and_velocities(
            self.rho,
            self.mom,
            self.force,
            self.u_eq,
            accel=self._accel,
            psi_mask=self._psi_mask,
            vel_mask=self._collide_mask,
        )
        t6 = time.perf_counter()
        self.observer.emit(
            "phase",
            phase=self.phase,
            planes=self.local_planes,
            t_collide=t1 - t0,
            t_halo_f=t2 - t1,
            t_stream_bounce=t3 - t2,
            t_moments=(t4 - t3) + (t6 - t5),
            t_halo_rho=t5 - t4,
            t_total=t6 - t0,
            halo_f_bytes=halo.bytes_f - bf0,
            halo_rho_bytes=halo.bytes_scalar - bs0,
        )
        return (t1 - t0) + (t6 - t2)

    def _interior_invariants(self) -> tuple[list[float], list[list[float]]]:
        """Per-component interior mass and momentum — the conserved
        quantities migration must not create or destroy (trace payload
        for ``remap_begin``/``remap_end`` events)."""
        interior = self.f[:, :, 1:-1]
        c_count, q_count = interior.shape[0], interior.shape[1]
        per_q = interior.reshape(c_count, q_count, -1).sum(axis=2)  # (C, Q)
        masses = [comp.mass for comp in self.config.components]
        mass = [float(m * per_q[ci].sum()) for ci, m in enumerate(masses)]
        mom = per_q @ self.config.lattice.c.astype(np.float64)  # (C, D)
        momentum = [
            [float(m * x) for x in mom[ci]] for ci, m in enumerate(masses)
        ]
        return mass, momentum

    def _emit_remap_state(self, type_: str, rnd: int) -> None:
        mass, momentum = self._interior_invariants()
        self.observer.emit(
            type_, round=rnd, planes=self.local_planes,
            mass=mass, momentum=momentum,
        )

    def _emit_migrate(
        self, rnd: int, action: str, direction: str, package: np.ndarray
    ) -> None:
        self.observer.emit(
            "migrate",
            round=rnd,
            action=action,
            direction=direction,
            planes=int(package.shape[2]),
            bytes=int(package.nbytes),
        )
        self.observer.counter("migration.planes").add(package.shape[2])
        if action == "send":
            self.observer.counter("migration.bytes").add(package.nbytes)

    # ------------------------------------------------------------ remapping
    def _predicted_time(self) -> float:
        return self.remap_config.predictor.predict(self.history)

    def maybe_remap(self) -> None:
        """Run the remapping protocol if this phase sits on the interval
        boundary (call after :meth:`step_phase`)."""
        if self.policy_name == "no-remap":
            return
        if self.phase % self.remap_config.interval != 0:
            return
        traced = self.observer.enabled
        if traced:
            self._emit_remap_state("remap_begin", self.phase)
        if self.policy_name == "global":
            self._remap_global()
        else:
            self._remap_local()
        if traced:
            self._emit_remap_state("remap_end", self.phase)
        self.plane_history.append(self.local_planes)

    def _remap_local(self) -> None:
        """Distributed conservative/filtered remapping: neighbour load-index
        exchange, window proposals, per-edge conflict netting, migration."""
        comm = self.comm
        rank, size = comm.rank, comm.size
        if size == 1:
            return
        rnd = self.phase
        my_points = self.local_planes * self.plane_points
        my_time = self._predicted_time()

        # 1. Load-index exchange with chain neighbours.
        payload = (my_points, my_time)
        left = rank - 1 if rank > 0 else None
        right = rank + 1 if rank < size - 1 else None
        if left is not None:
            comm.send(left, ("loadidx", rnd, "L"), payload)
        if right is not None:
            comm.send(right, ("loadidx", rnd, "R"), payload)
        info_left = comm.recv(left, ("loadidx", rnd, "R")) if left is not None else None
        info_right = (
            comm.recv(right, ("loadidx", rnd, "L")) if right is not None else None
        )

        # 2. Window proposals (same code the centralized policy runs).
        window: list[tuple[int, float]] = []
        my_idx = 0
        if info_left is not None:
            window.append(info_left)
            my_idx = 1
        window.append(payload)
        if info_right is not None:
            window.append(info_right)
        counts = np.array([w[0] for w in window], dtype=np.float64)
        times = np.array([w[1] for w in window], dtype=np.float64)
        speeds = counts / times
        threshold = self.remap_config.threshold_points_for(self.plane_points)
        filtered = self.policy_name == "filtered"

        def propose(local_j: int) -> float:
            return window_proposal(
                counts,
                speeds,
                my_idx,
                local_j,
                self.remap_config,
                threshold,
                filtered=filtered,
            )

        give_left_pts = propose(my_idx - 1) if info_left is not None else 0.0
        give_right_pts = propose(my_idx + 1) if info_right is not None else 0.0

        # 3. Conflict resolution: exchange proposals per edge and net them.
        if left is not None:
            comm.send(left, ("proposal", rnd, "L"), give_left_pts)
        if right is not None:
            comm.send(right, ("proposal", rnd, "R"), give_right_pts)
        opposing_left = (
            comm.recv(left, ("proposal", rnd, "R")) if left is not None else 0.0
        )
        opposing_right = (
            comm.recv(right, ("proposal", rnd, "L")) if right is not None else 0.0
        )
        # Net flow on my left edge (positive: I send leftward) and right
        # edge (positive: I send rightward); both endpoints compute the
        # same values from the same two proposals.
        net_left = give_left_pts - opposing_left
        net_right = give_right_pts - opposing_right
        out_left = int(net_left // self.plane_points) if net_left > 0 else 0
        out_right = int(net_right // self.plane_points) if net_right > 0 else 0
        in_left = int((-net_left) // self.plane_points) if net_left < 0 else 0
        in_right = int((-net_right) // self.plane_points) if net_right < 0 else 0

        # 4. Clamp own outflows so at least one interior plane stays.
        max_out = self.local_planes - 1
        total_out = out_left + out_right
        if total_out > max_out:
            need = total_out - max_out
            cut_right = min(out_right, -(-need * out_right // max(total_out, 1)))
            cut_left = min(out_left, need - cut_right)
            out_right -= cut_right
            out_left -= cut_left

        traced = self.observer.enabled
        if traced:
            self.observer.emit(
                "remap_decision",
                round=rnd,
                policy=self.policy_name,
                load_index=my_time,
                points=my_points,
                give_left_pts=float(give_left_pts),
                give_right_pts=float(give_right_pts),
                net_left=float(net_left),
                net_right=float(net_right),
                out_left=out_left,
                out_right=out_right,
                in_left=in_left,
                in_right=in_right,
            )

        # 5. Migration (senders include the package; receivers always get a
        # message when the netting said a transfer is due, possibly empty
        # because of the sender's clamp).
        if out_left > 0 or (left is not None and net_left > 0):
            package = None
            if out_left > 0:
                package, self.f = pack_planes(self.f, "left", out_left)
                self._after_resize(-out_left)
                self.plane_start += out_left
                self.planes_sent += out_left
                if traced:
                    self._emit_migrate(rnd, "send", "left", package)
            comm.send(left, ("migrate", rnd, "L"), package)
        if out_right > 0 or (right is not None and net_right > 0):
            package = None
            if out_right > 0:
                package, self.f = pack_planes(self.f, "right", out_right)
                self._after_resize(-out_right)
                self.planes_sent += out_right
                if traced:
                    self._emit_migrate(rnd, "send", "right", package)
            comm.send(right, ("migrate", rnd, "R"), package)
        if in_left > 0:
            package = comm.recv(left, ("migrate", rnd, "R"))
            if package is not None:
                self.f = unpack_planes(self.f, package, "left")
                self._after_resize(package.shape[2])
                self.plane_start -= package.shape[2]
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "left", package)
        if in_right > 0:
            package = comm.recv(right, ("migrate", rnd, "L"))
            if package is not None:
                self.f = unpack_planes(self.f, package, "right")
                self._after_resize(package.shape[2])
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "right", package)

        # 6. Refresh derived state for the (possibly) new slab.
        self._moments_and_forces(("post_remap", rnd))

    def _remap_global(self) -> None:
        """Global scheme: allgather load indices, every rank evaluates the
        same proportional-target decision, then pairwise edge migrations."""
        comm = self.comm
        rank, size = comm.rank, comm.size
        if size == 1:
            return
        rnd = self.phase
        my_planes = self.local_planes
        gathered = comm.allgather(
            (my_planes, self._predicted_time()), ("remap_global", rnd)
        )
        counts = [g[0] for g in gathered]
        times = np.array([g[1] for g in gathered])
        partition = SlicePartition(counts, self.plane_points)
        flows = GlobalPolicy(self.remap_config).decide(partition, times)
        traced = self.observer.enabled
        if traced:
            self.observer.emit(
                "remap_decision",
                round=rnd,
                policy=self.policy_name,
                load_index=float(times[rank]),
                points=my_planes * self.plane_points,
                flows=[int(x) for x in flows],
            )

        # Apply this rank's edges, left first (matching flow semantics:
        # flows[e] planes go from rank e to rank e+1).
        if rank > 0:
            flow = int(flows[rank - 1])
            if flow > 0:  # receiving from the left
                package = comm.recv(rank - 1, ("migrate", rnd, "R"))
                self.f = unpack_planes(self.f, package, "left")
                self._after_resize(package.shape[2])
                self.plane_start -= package.shape[2]
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "left", package)
            elif flow < 0:  # sending leftward
                package, self.f = pack_planes(self.f, "left", -flow)
                self._after_resize(flow)
                self.plane_start += -flow
                self.planes_sent += -flow
                comm.send(rank - 1, ("migrate", rnd, "L"), package)
                if traced:
                    self._emit_migrate(rnd, "send", "left", package)
        if rank < size - 1:
            flow = int(flows[rank])
            if flow > 0:  # sending rightward
                package, self.f = pack_planes(self.f, "right", flow)
                self._after_resize(-flow)
                self.planes_sent += flow
                comm.send(rank + 1, ("migrate", rnd, "R"), package)
                if traced:
                    self._emit_migrate(rnd, "send", "right", package)
            elif flow < 0:  # receiving from the right
                package = comm.recv(rank + 1, ("migrate", rnd, "L"))
                self.f = unpack_planes(self.f, package, "right")
                self._after_resize(package.shape[2])
                self.planes_received += package.shape[2]
                if traced:
                    self._emit_migrate(rnd, "recv", "right", package)
        self._moments_and_forces(("post_remap", rnd))

    def _after_resize(self, delta: int) -> None:
        self.decomp.adjust(self.comm.rank, delta)
        self._alloc_state()

    # ---------------------------------------------------------- checkpoints
    def check_health(self, max_velocity: float = 0.4) -> None:
        """Raise ``FloatingPointError`` if this rank's interior went
        non-finite or too fast — the gate in front of every checkpoint
        write (a snapshot of a diverged state is worse than none)."""
        rank = self.comm.rank
        if not np.isfinite(self.f[:, :, 1:-1]).all():
            raise FloatingPointError(
                f"rank {rank}: non-finite populations at phase {self.phase}"
            )
        u = mixture_velocity(self.rho, self.mom, self.force)
        mask = self._collide_mask > 0.0  # interior fluid nodes
        umax = float(np.abs(u[:, mask]).max()) if mask.any() else 0.0
        if umax > max_velocity:
            raise FloatingPointError(
                f"rank {rank}: velocity {umax:.3f} exceeds stability bound "
                f"{max_velocity} at phase {self.phase}"
            )

    def _shard_arrays(self) -> dict[str, np.ndarray]:
        return {
            "f": np.ascontiguousarray(self.f[:, :, 1:-1]),
            "step": np.asarray(self.phase, dtype=np.int64),
            "planes_sent": np.asarray(self.planes_sent, dtype=np.int64),
            "planes_received": np.asarray(
                self.planes_received, dtype=np.int64
            ),
            "plane_history": np.asarray(self.plane_history, dtype=np.int64),
            "history": np.asarray(self.history.times(), dtype=np.float64),
        }

    def _write_checkpoint(self) -> None:
        """Collective checkpoint of the current phase (all ranks call this
        at the same phase boundary).

        Protocol: (1) every rank health-checks itself and the verdicts are
        allgathered — so either all ranks proceed or all raise
        :class:`~repro.ckpt.CheckpointRejected` together, and no rank can
        be left waiting on a peer that bailed; (2) each rank writes its
        shard atomically; (3) the shard records are allgathered and rank 0
        commits the manifest (itself an atomic rename).  A crash anywhere
        before (3) leaves an uncommitted generation that readers ignore.
        """
        comm, store = self.comm, self.checkpoint_store
        step = self.phase
        try:
            self.check_health()
            verdict = None
        except FloatingPointError as exc:
            verdict = str(exc)
        verdicts = comm.allgather(verdict, ("ckpt_health", step))
        bad = [v for v in verdicts if v is not None]
        if bad:
            raise CheckpointRejected("; ".join(bad))
        with self.observer.span("ckpt.save", step=step):
            shard = store.write_shard(
                step,
                comm.rank,
                self._shard_arrays(),
                plane_start=self.plane_start,
                plane_count=self.local_planes,
            )
            infos = comm.allgather(shard.to_json(), ("ckpt_shards", step))
            if comm.rank == 0:
                store.commit(
                    step,
                    config_fingerprint(self.config),
                    [ShardInfo.from_json(doc) for doc in infos],
                )

    def _adopt_interior(
        self, f_interior: np.ndarray, plane_start: int, tag: object
    ) -> None:
        """Replace this rank's slab with *f_interior* (no ghosts) starting
        at global plane *plane_start*, then refresh all derived state —
        the same sequence a migration uses, so the next phase continues
        bit-identically."""
        ln = int(f_interior.shape[2])
        new_f = np.zeros(
            f_interior.shape[:2] + (ln + 2, *self.cross), dtype=np.float64
        )
        new_f[:, :, 1:-1] = f_interior
        delta = ln - self.local_planes
        self.f = new_f
        if delta:
            self.decomp.adjust(self.comm.rank, delta)
        self._alloc_state()
        self.plane_start = int(plane_start)
        self._moments_and_forces(tag)

    def restore_checkpoint(self, manifest: Manifest | None = None) -> Manifest:
        """Collective restore from the store's latest good generation (or
        an explicit *manifest*).

        When the generation has one shard per rank, each rank reloads its
        own shard — plane ownership, remap history and counters resume
        exactly where they were.  With a different rank count the global
        field is reassembled from the x-ordered shards and re-split
        evenly; the physics is unchanged (decomposition invariance), only
        the remapping bookkeeping restarts.
        """
        store = self.checkpoint_store
        if store is None:
            raise CheckpointError("this driver has no checkpoint_store")
        if manifest is None:
            manifest = store.latest_good()
            if manifest is None:
                raise CheckpointError(
                    f"no restorable generation under {store.root}"
                )
        check_fingerprint(manifest, self.config)
        comm = self.comm
        shards = manifest.shards_in_x_order()
        with self.observer.span("ckpt.restore", step=manifest.step):
            if len(shards) == comm.size:
                shard = shards[comm.rank]
                arrays = store.load_shard_arrays(manifest, shard)
                self._adopt_interior(
                    arrays["f"],
                    shard.plane_start,
                    ("restore", manifest.step),
                )
                self.planes_sent = int(arrays["planes_sent"])
                self.planes_received = int(arrays["planes_received"])
                self.plane_history = [
                    int(x) for x in arrays["plane_history"]
                ]
                self.history.clear()
                for sample in arrays["history"]:
                    self.history.record(float(sample))
            else:
                f_global = store.load_global_f(manifest)
                base, extra = divmod(f_global.shape[2], comm.size)
                if base < 1:
                    raise CheckpointError(
                        f"checkpoint has {f_global.shape[2]} planes, too few "
                        f"for {comm.size} ranks"
                    )
                counts = [
                    base + (1 if r < extra else 0) for r in range(comm.size)
                ]
                start = sum(counts[: comm.rank])
                self._adopt_interior(
                    f_global[:, :, start : start + counts[comm.rank]],
                    start,
                    ("restore", manifest.step),
                )
                self.planes_sent = 0
                self.planes_received = 0
                self.plane_history = [self.local_planes]
                self.history.clear()
        self.phase = manifest.step
        if self.observer.enabled:
            self.observer.counter("ckpt.restores").add(1)
        return manifest

    # ------------------------------------------------------------------ run
    def run(self, phases: int) -> ParallelRunResult:
        check_integer(phases, "phases", minimum=0)
        for _ in range(phases):
            if self.faults is not None:
                self.faults.fire(
                    "phase_start", rank=self.comm.rank, at=self.phase
                )
            self.step_phase()
            self.maybe_remap()
            if (
                self.checkpoint_every
                and self.phase % self.checkpoint_every == 0
            ):
                self._write_checkpoint()
        interior = np.ascontiguousarray(self.f[:, :, 1:-1])
        if self.observer.enabled:
            self.observer.emit(
                "run_end",
                phases=self.phase,
                planes=self.local_planes,
                planes_sent=self.planes_sent,
                planes_received=self.planes_received,
                halo_f_bytes=self.halo.bytes_f,
                halo_rho_bytes=self.halo.bytes_scalar,
            )
        return ParallelRunResult(
            rank=self.comm.rank,
            plane_start=self.plane_start,
            f_interior=interior,
            plane_count=self.local_planes,
            plane_history=self.plane_history,
            comp_times=self.comp_times,
            planes_sent=self.planes_sent,
            planes_received=self.planes_received,
            mass=float(
                sum(
                    comp.mass * interior[ci].sum()
                    for ci, comp in enumerate(self.config.components)
                )
            ),
        )


def _spec_observer(spec: Any) -> tuple[ObserverLike, bool]:
    """Resolve a RunSpec's observer/trace_path pair to a concrete
    observer; the bool says whether this run owns (must close) it."""
    observer = spec.observer
    if spec.trace_path is not None:
        if observer is not None and observer is not NULL_OBSERVER:
            raise ValueError("pass either observer or trace_path, not both")
        return Observer(sink=JsonlSink(spec.trace_path)), True
    return resolve_observer(observer), False


def _slot_bytes_for(config: LBMConfig) -> int:
    """Shared-memory ring slot size for a process-transport run: one
    full population plane (every component, every direction), so a halo
    message is a single-chunk transfer and a k-plane migration package
    takes k slots."""
    plane_cells = int(np.prod(config.geometry.shape[1:]))
    plane_bytes = config.n_components * config.lattice.Q * plane_cells * 8
    return min(max(plane_bytes, 1 << 12), 1 << 26)


def _run_parallel(spec: Any, config: LBMConfig, store: Any) -> list[ParallelRunResult]:
    """Execute a parallel RunSpec (the engine behind
    :func:`repro.api.run`; *config* is the spec's backend-resolved
    configuration and *store* its resolved checkpoint store)."""
    n_ranks = spec.ranks
    phases = spec.phases
    total_planes = config.geometry.shape[0]
    transport = resolve_transport(spec.transport)

    initial_counts = (
        list(spec.initial_counts) if spec.initial_counts is not None else None
    )
    resume_manifest = None
    phases_to_run = phases
    if spec.resume:
        if store is None:
            raise ValueError("resume=True needs a checkpoint_store")
        resume_manifest = store.latest_good()
        if resume_manifest is not None:
            check_fingerprint(resume_manifest, config)
            phases_to_run = max(0, phases - resume_manifest.step)
            shards = resume_manifest.shards_in_x_order()
            if len(shards) == n_ranks and initial_counts is None:
                # Start each rank at its checkpointed slab size so the
                # per-shard restore path needs no reallocation.
                initial_counts = [s.plane_count for s in shards]

    if initial_counts is None:
        base, extra = divmod(total_planes, n_ranks)
        if base < 1:
            raise ValueError("more ranks than planes")
        initial_counts = [base + (1 if r < extra else 0) for r in range(n_ranks)]

    obs, owns_observer = _spec_observer(spec)
    if obs.enabled:
        obs.emit(
            "run_start",
            n_ranks=n_ranks,
            transport=transport,
            backend=config.backend,
            policy=spec.policy,
            shape=list(config.geometry.shape),
            n_components=config.n_components,
            phases=phases,
            initial_counts=list(initial_counts),
        )

    # Rank processes cannot share the parent's sink object, so under the
    # process transport each rank collects events in a MemorySink pinned
    # to the parent sink's clock origin (perf_counter is CLOCK_MONOTONIC
    # on Linux — one time base across processes) and ships them back
    # with its result; the parent merges them by timestamp.
    fork_obs = transport == "processes" and obs.enabled
    parent_t0 = obs.sink.t0 if fork_obs else 0.0

    def rank_main(comm: Communicator):
        rank_obs: ObserverLike = obs
        rank_sink = None
        if fork_obs:
            rank_sink = MemorySink(t0=parent_t0)
            rank_obs = Observer(sink=rank_sink)
        driver = ParallelLBM(
            comm,
            config,
            list(initial_counts),
            policy=spec.policy,
            remap_config=spec.remap_config,
            load_time_fn=spec.load_time_fn,
            observer=rank_obs,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_store=store,
            faults=spec.faults,
        )
        if resume_manifest is not None:
            driver.restore_checkpoint(manifest=resume_manifest)
        result = driver.run(phases_to_run)
        if rank_sink is not None:
            # This rank's metrics snapshot, emitted unbound (no rank key)
            # exactly like the thread transport's single shared snapshot,
            # so per-rank event schemas are transport-independent.
            rank_obs.emit_metrics()
            return result, rank_sink.events
        return result

    try:
        raw = launch_spmd(
            n_ranks,
            rank_main,
            transport=transport,
            timeout=spec.timeout,
            slot_bytes=_slot_bytes_for(config),
        )
        if fork_obs:
            results = [result for result, _ in raw]
            merged = sorted(
                (event for _, events in raw for event in events),
                key=lambda event: event.get("ts", 0.0),
            )
            obs.sink.absorb(merged)
        else:
            results = raw
            if obs.enabled:
                obs.emit_metrics()
        return results
    finally:
        if owns_observer:
            obs.close()


def run_parallel_lbm(
    n_ranks: int,
    config: LBMConfig,
    phases: int,
    *,
    transport: str | None = None,
    policy: str = "filtered",
    remap_config: RemappingConfig | None = None,
    load_time_fn: LoadTimeFn | None = None,
    initial_counts: list[int] | None = None,
    timeout: float = 600.0,
    observer: ObserverLike = NULL_OBSERVER,
    trace_path: str | None = None,
    checkpoint_every: int = 0,
    checkpoint_store=None,
    resume: bool = False,
    faults=None,
) -> list[ParallelRunResult]:
    """Run the parallel LBM on an in-process cluster of *n_ranks* ranks.

    .. deprecated::
        This is a thin shim over the :mod:`repro.api` facade — build a
        :class:`repro.api.RunSpec` and call :func:`repro.api.run`
        instead.  Every keyword maps 1:1 onto a RunSpec field and the
        results are identical.

    *transport* selects ``"threads"`` or ``"processes"`` (default: the
    ``REPRO_TRANSPORT`` environment variable, then threads).  Returns
    the per-rank results in rank order; use :func:`assemble_global_f`
    to reconstruct the global field.

    Observability: pass an enabled :class:`repro.obs.Observer` (shared
    sink; each rank gets a rank-stamped child), or *trace_path* to write
    a self-contained JSONL trace (``run_start`` metadata, per-phase
    timings and halo bytes, remap/migration events, metrics snapshots).
    With neither, the ``REPRO_OBS_TRACE`` environment variable is
    consulted; unset means zero instrumentation overhead.

    Checkpointing (see :mod:`repro.ckpt`): pass a shared
    :class:`~repro.ckpt.CheckpointStore` plus ``checkpoint_every`` to
    snapshot periodically.  With ``resume=True``, *phases* is the TOTAL
    phase target: the ranks restore the latest good generation (if any)
    and run only the remainder — bit-exactly continuing the interrupted
    run.  *faults* (a :class:`~repro.ckpt.FaultPlan`) injects failures
    for recovery testing; injected :class:`~repro.ckpt.InjectedFault`
    errors surface from the cluster wrapped in ``RuntimeError``.
    """
    warnings.warn(
        "run_parallel_lbm is deprecated; build a repro.api.RunSpec and "
        "call repro.api.run(spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    spec = api.RunSpec(
        config=config,
        phases=phases,
        ranks=n_ranks,
        transport=transport,
        policy=policy,
        remap_config=remap_config,
        load_time_fn=load_time_fn,
        initial_counts=(
            tuple(initial_counts) if initial_counts is not None else None
        ),
        timeout=timeout,
        observer=observer,
        trace_path=trace_path,
        checkpoint_every=checkpoint_every,
        checkpoint_store=checkpoint_store,
        resume=resume,
        faults=faults,
    )
    if n_ranks == 1:
        # Legacy semantics: a 1-rank *parallel-driver* run (the facade
        # would dispatch ranks=1 to the sequential solver instead).
        return api.execute_parallel(spec)
    return api.run(spec).rank_results


def assemble_global_f(results: list[ParallelRunResult]) -> np.ndarray:
    """Concatenate per-rank interiors back into the global population
    array ``(C, Q, nx, *cross)``, ordered by each rank's final
    ``plane_start`` and verified to tile the x axis exactly."""
    ordered = sorted(results, key=lambda r: r.plane_start)
    expect = 0
    for r in ordered:
        if r.plane_start != expect:
            raise ValueError(
                f"rank {r.rank} starts at plane {r.plane_start}, expected "
                f"{expect}: the ownership map does not tile the x axis"
            )
        if r.plane_count != r.f_interior.shape[2]:
            raise ValueError(
                f"rank {r.rank} reports {r.plane_count} planes but carries "
                f"{r.f_interior.shape[2]}"
            )
        expect += r.plane_count
    return np.concatenate([r.f_interior for r in ordered], axis=2)


def solver_from_results(
    results: list[ParallelRunResult], config: LBMConfig
) -> "object":
    """Build a sequential solver holding the parallel run's final state,
    so the full :mod:`repro.lbm.diagnostics` toolbox (profiles, slip
    measures, exporters) applies to parallel output directly."""
    from repro.lbm.solver import MulticomponentLBM

    f_global = assemble_global_f(results)
    solver = MulticomponentLBM(config)
    if f_global.shape != solver.f.shape:
        raise ValueError(
            f"assembled field shape {f_global.shape} does not match the "
            f"configuration's {solver.f.shape}"
        )
    solver.f[:] = f_global
    solver.update_moments_and_forces()
    return solver
