"""The communicator abstraction.

A tiny MPI subset sufficient for the paper's algorithm: tagged
point-to-point send/recv between ranks of a fixed-size world, sendrecv
pairs, barrier and allgather.  Tags keep phases and message kinds apart so
the lock-step protocol is deterministic regardless of thread scheduling.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Hashable


class CommunicatorTimeout(TimeoutError):
    """A blocking receive gave up waiting.

    Raised by every transport (threads *and* processes) with the same
    diagnostic fields, so a hung protocol names the rank, the peer and
    the tag it was waiting on instead of dying as an anonymous
    ``queue.Empty``/``TimeoutError`` sixty seconds later.
    """

    def __init__(
        self,
        rank: int,
        source: int,
        tag: Hashable,
        timeout: float,
        transport: str = "threads",
    ):
        self.rank = rank
        self.source = source
        self.tag = tag
        self.timeout = timeout
        self.transport = transport
        super().__init__(
            f"rank {rank} timed out after {timeout:g}s waiting for "
            f"(source={source}, tag={tag!r}) on the {transport} transport; "
            f"rank {source} may have died, deadlocked, or never sent"
        )

    def __reduce__(self):
        # Default exception pickling replays only super().__init__'s
        # single string; rebuild from the diagnostic fields instead so
        # the error survives a trip through a result queue.
        return (
            type(self),
            (self.rank, self.source, self.tag, self.timeout, self.transport),
        )


@dataclass(frozen=True)
class ReceivedMessage:
    """A delivered message (source rank + payload)."""

    source: int
    payload: Any


class Communicator(ABC):
    """Point of contact of one rank with the rest of the world."""

    @property
    @abstractmethod
    def rank(self) -> int:
        """This rank's index in [0, size)."""

    @property
    @abstractmethod
    def size(self) -> int:
        """World size."""

    @abstractmethod
    def send(self, dest: int, tag: Hashable, payload: Any) -> None:
        """Asynchronous send (never blocks in this in-process transport)."""

    @abstractmethod
    def recv(self, source: int, tag: Hashable) -> Any:
        """Blocking receive of the message with exactly (source, tag)."""

    # ------------------------------------------------------------- derived
    def sendrecv(
        self,
        dest: int,
        send_payload: Any,
        source: int,
        tag: Hashable,
    ) -> Any:
        """Send to *dest* and receive from *source* under the same tag —
        the boundary-exchange primitive of Figure 2 (lines 8 and 14)."""
        self.send(dest, tag, send_payload)
        return self.recv(source, tag)

    def exchange_with_neighbours(
        self,
        left_payload: Any,
        right_payload: Any,
        tag: Hashable,
    ) -> tuple[Any | None, Any | None]:
        """Exchange with both linear-array neighbours at once.

        Sends *left_payload* to rank-1 and *right_payload* to rank+1 (when
        they exist), then receives from both.  Returns
        ``(from_left, from_right)`` with ``None`` at array ends.
        """
        left = self.rank - 1 if self.rank > 0 else None
        right = self.rank + 1 if self.rank < self.size - 1 else None
        if left is not None:
            self.send(left, tag, left_payload)
        if right is not None:
            self.send(right, tag, right_payload)
        from_left = self.recv(left, tag) if left is not None else None
        from_right = self.recv(right, tag) if right is not None else None
        return from_left, from_right

    @abstractmethod
    def barrier(self) -> None:
        """Block until every rank entered the barrier."""

    @abstractmethod
    def allgather(self, payload: Any, tag: Hashable) -> list[Any]:
        """Gather one payload from every rank, in rank order, at every
        rank (the global scheme's information exchange)."""
