"""The communicator abstraction.

A tiny MPI subset sufficient for the paper's algorithm — generalized to
the nonblocking style the 2-D overlapped halo exchange needs.  The
abstract primitives are ``isend``/``irecv``, both returning a waitable
:class:`Request` handle; the blocking ``send``/``recv``/``sendrecv``
calls are derived wrappers (post + wait), so a transport implements only
the nonblocking set.  Tags keep phases and message kinds apart so the
lock-step protocol is deterministic regardless of scheduling.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Hashable

#: Default patience of a blocking wait before the transport declares the
#: peer dead (shared by both transports so hang diagnostics match).
DEFAULT_RECV_TIMEOUT = 60.0


class CommunicatorTimeout(TimeoutError):
    """A blocking receive (or request wait) gave up waiting.

    Raised by every transport (threads *and* processes) with the same
    diagnostic fields, so a hung protocol names the rank, the peer and
    the tag it was waiting on instead of dying as an anonymous
    ``queue.Empty``/``TimeoutError`` sixty seconds later.
    """

    def __init__(
        self,
        rank: int,
        source: int,
        tag: Hashable,
        timeout: float,
        transport: str = "threads",
    ):
        self.rank = rank
        self.source = source
        self.tag = tag
        self.timeout = timeout
        self.transport = transport
        super().__init__(
            f"rank {rank} timed out after {timeout:g}s waiting for "
            f"(source={source}, tag={tag!r}) on the {transport} transport; "
            f"rank {source} may have died, deadlocked, or never sent"
        )

    def __reduce__(self):
        # Default exception pickling replays only super().__init__'s
        # single string; rebuild from the diagnostic fields instead so
        # the error survives a trip through a result queue.
        return (
            type(self),
            (self.rank, self.source, self.tag, self.timeout, self.transport),
        )


@dataclass(frozen=True)
class ReceivedMessage:
    """A delivered message (source rank + payload)."""

    source: int
    payload: Any


class Request:
    """A waitable handle for a posted nonblocking operation.

    ``wait()`` blocks until the operation completes and returns its value
    (the received payload for an ``irecv``, ``None`` for an ``isend``).
    Waiting twice returns the same cached value — requests are
    single-shot but idempotent.  ``done()`` reports completion without
    blocking (conservative: it may say ``False`` for a message that
    would be delivered instantly).
    """

    __slots__ = ("_complete", "_value", "_resolve", "_test")

    def __init__(
        self,
        resolve: Callable[[float | None], Any] | None = None,
        test: Callable[[], bool] | None = None,
    ):
        self._complete = resolve is None
        self._value: Any = None
        self._resolve = resolve
        self._test = test

    @classmethod
    def completed(cls, value: Any = None) -> "Request":
        """An already-finished request (buffered sends complete eagerly)."""
        req = cls()
        req._value = value
        return req

    def done(self) -> bool:
        if self._complete:
            return True
        if self._test is not None:
            return self._test()
        return False

    def wait(self, timeout: float | None = None) -> Any:
        """Block until completion; returns the operation's value.

        *timeout* bounds the wait in seconds (``None``: the transport's
        default); expiry raises :class:`CommunicatorTimeout` naming the
        rank/peer/tag being waited on.
        """
        if not self._complete:
            resolve = self._resolve
            assert resolve is not None
            self._value = resolve(timeout)
            self._complete = True
            self._resolve = None
            self._test = None
        return self._value


def wait_all(requests: list[Request], timeout: float | None = None) -> list[Any]:
    """Wait on every request (in order) and return their values."""
    return [req.wait(timeout) for req in requests]


class Communicator(ABC):
    """Point of contact of one rank with the rest of the world.

    Transports implement only the nonblocking primitives (plus the
    collectives); the blocking calls are derived post-then-wait
    wrappers, so ``send``/``recv``/``sendrecv`` behave identically on
    every transport by construction.
    """

    @property
    @abstractmethod
    def rank(self) -> int:
        """This rank's index in [0, size)."""

    @property
    @abstractmethod
    def size(self) -> int:
        """World size."""

    # --------------------------------------------------------- nonblocking
    @abstractmethod
    def isend(self, dest: int, tag: Hashable, payload: Any) -> Request:
        """Post a buffered send; the returned request is typically already
        complete (both in-process transports copy into transit storage
        eagerly, so ``isend`` never blocks on the receiver)."""

    @abstractmethod
    def irecv(self, source: int, tag: Hashable) -> Request:
        """Post a receive for exactly (source, tag); ``wait()`` on the
        returned request blocks until the message arrives and returns
        its payload."""

    # ------------------------------------------------------------- derived
    def send(self, dest: int, tag: Hashable, payload: Any) -> None:
        """Blocking send (completes as soon as the payload is buffered)."""
        self.isend(dest, tag, payload).wait()

    def recv(
        self, source: int, tag: Hashable, timeout: float | None = None
    ) -> Any:
        """Blocking receive of the message with exactly (source, tag)."""
        return self.irecv(source, tag).wait(timeout)

    def sendrecv(
        self,
        dest: int,
        send_payload: Any,
        source: int,
        tag: Hashable,
    ) -> Any:
        """Send to *dest* and receive from *source* under the same tag —
        the boundary-exchange primitive of Figure 2 (lines 8 and 14)."""
        self.isend(dest, tag, send_payload)
        return self.recv(source, tag)

    def exchange_with_neighbours(
        self,
        left_payload: Any,
        right_payload: Any,
        tag: Hashable,
    ) -> tuple[Any | None, Any | None]:
        """Exchange with both linear-array neighbours at once.

        Sends *left_payload* to rank-1 and *right_payload* to rank+1 (when
        they exist), then receives from both.  Returns
        ``(from_left, from_right)`` with ``None`` at array ends.
        """
        left = self.rank - 1 if self.rank > 0 else None
        right = self.rank + 1 if self.rank < self.size - 1 else None
        if left is not None:
            self.send(left, tag, left_payload)
        if right is not None:
            self.send(right, tag, right_payload)
        from_left = self.recv(left, tag) if left is not None else None
        from_right = self.recv(right, tag) if right is not None else None
        return from_left, from_right

    # ---------------------------------------------------------- collectives
    @abstractmethod
    def barrier(self) -> None:
        """Block until every rank entered the barrier."""

    @abstractmethod
    def allgather(self, payload: Any, tag: Hashable) -> list[Any]:
        """Gather one payload from every rank, in rank order, at every
        rank (the global scheme's information exchange)."""
