"""Halo (ghost-plane) exchange, 1-D or 2-D, blocking or overlapped.

Per phase the parallel LBM synchronizes twice (Figure 2):

- line 8: the distribution functions about to stream across the subdomain
  boundary — exactly the populations with ``c_x > 0`` travel to the right
  neighbour and those with ``c_x < 0`` to the left (the paper's direction
  groups 1..5 / 2..6 for its D3Q19 numbering); under a 2-D decomposition
  the populations with ``c_y ≠ 0`` additionally cross the column
  boundary;
- line 14: the number densities of both components, needed by the
  Shan-Chen interaction force at boundary planes.

Both decomposed axes are periodic rings; a ring of size 1 wraps its own
planes locally.

**2-D corner propagation.**  The exchange runs in two ordered stages:
the x stage ships the boundary *planes* over the full padded y extent,
then the y stage ships the boundary *rows* over the full padded x extent
— including the x ghosts just filled — so diagonal populations reach the
corner-adjacent rank in two hops, the classic trick that avoids eight
extra corner messages.  The y stage must therefore run strictly after
the x stage completes.

**Overlap.**  The x stage is split into :meth:`begin_f`/:meth:`finish_f`
(and the scalar analogues): ``begin`` snapshots the boundary data, posts
nonblocking sends and receives, and returns a :class:`PendingHalo`;
``finish`` waits, fills the ghosts, and runs the (blocking) y stage.
The driver computes its interior between the two calls, hiding the
transport latency.  Calling them back-to-back *is* the blocking
exchange — :meth:`exchange_f`/:meth:`exchange_scalar` do exactly that —
so both schedules are bit-identical by construction.

With an enabled :class:`repro.obs.Observer` the exchanger counts the
bytes it ships (``halo.f.bytes`` / ``halo.scalar.bytes``) and the
*exposed* communication time — seconds spent blocked inside request
waits, i.e. latency the compute did not hide (``halo.f.wait_s`` /
``halo.scalar.wait_s``).  The cumulative per-exchanger totals
(``bytes_f``/``bytes_scalar``/``wait_f_seconds``/``wait_scalar_seconds``)
are tracked unconditionally (two clock reads per wait) so benchmarks can
read them without tracing overhead.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.lbm.lattice import Lattice
from repro.obs.observer import NULL_OBSERVER
from repro.parallel.api import Communicator, Request
from repro.parallel.decomposition import CartTopology


class PendingHalo:
    """An in-flight x-stage exchange: the posted receives plus the local
    boundary snapshots (used directly when the x ring has size 1)."""

    __slots__ = ("array", "phase", "from_left", "from_right")

    def __init__(
        self,
        array: np.ndarray,
        phase: Any,
        from_left: Request | np.ndarray,
        from_right: Request | np.ndarray,
    ):
        self.array = array
        self.phase = phase
        self.from_left = from_left
        self.from_right = from_right


class HaloExchanger:
    """Fills the ghost planes (and, under 2-D, ghost rows) of one rank's
    subdomain arrays."""

    def __init__(
        self,
        lattice: Lattice,
        comm: Communicator,
        observer=NULL_OBSERVER,
        topo: CartTopology | None = None,
    ):
        self.lattice = lattice
        self.comm = comm
        self.observer = observer
        self.right_dirs = lattice.directions_with(0, +1)
        self.left_dirs = lattice.directions_with(0, -1)
        if topo is None:
            # Degenerate slab grid: the x ring is the whole world, exactly
            # the pre-topology neighbour arithmetic.
            topo = CartTopology([1] * comm.size, [1])
        self.topo = topo
        rank = comm.rank
        self.rows = topo.rows
        self.cols = topo.cols
        self.x_prev = topo.neighbour(rank, 0, -1)  # supplies the low-x halo
        self.x_next = topo.neighbour(rank, 0, +1)
        if self.cols > 1:
            self.up_dirs = lattice.directions_with(1, +1)
            self.down_dirs = lattice.directions_with(1, -1)
            self.y_prev = topo.neighbour(rank, 1, -1)
            self.y_next = topo.neighbour(rank, 1, +1)
        #: Cumulative payload bytes sent by this rank (only tracked when
        #: the observer is enabled; stay 0 otherwise).
        self.bytes_f = 0
        self.bytes_scalar = 0
        #: Cumulative exposed wait (seconds blocked in request waits) —
        #: tracked unconditionally so the halo benchmark needs no tracing.
        self.wait_f_seconds = 0.0
        self.wait_scalar_seconds = 0.0
        if observer.enabled:
            self._counter_f = observer.counter("halo.f.bytes")
            self._counter_scalar = observer.counter("halo.scalar.bytes")
            self._counter_f_wait = observer.counter("halo.f.wait_s")
            self._counter_scalar_wait = observer.counter("halo.scalar.wait_s")

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _timed_wait(req: Request | np.ndarray) -> tuple[np.ndarray, float]:
        """Resolve a posted receive, returning ``(payload, seconds
        blocked)``; local snapshots (size-1 rings) resolve instantly."""
        if isinstance(req, np.ndarray):
            return req, 0.0
        t0 = time.perf_counter()
        payload = req.wait()
        return payload, time.perf_counter() - t0

    # ----------------------------------------------------------------- f
    def begin_f(self, f: np.ndarray, phase: Any) -> PendingHalo:
        """Snapshot the x-boundary populations and post the nonblocking
        x-stage exchange for *f* (shape ``(C, Q, ln+2, *cross)``)."""
        comm = self.comm
        send_right = np.ascontiguousarray(f[:, self.right_dirs, -2])
        send_left = np.ascontiguousarray(f[:, self.left_dirs, 1])
        if self.observer.enabled:
            nbytes = send_right.nbytes + send_left.nbytes
            self.bytes_f += nbytes
            self._counter_f.add(nbytes)
        if self.rows == 1:
            return PendingHalo(f, phase, send_right, send_left)
        # Direction-specific tags: with 2 bands the previous and next
        # neighbour are the same peer, so the two messages must not alias.
        comm.isend(self.x_next, ("halo_f", phase, "R"), send_right)
        comm.isend(self.x_prev, ("halo_f", phase, "L"), send_left)
        from_left = comm.irecv(self.x_prev, ("halo_f", phase, "R"))
        from_right = comm.irecv(self.x_next, ("halo_f", phase, "L"))
        return PendingHalo(f, phase, from_left, from_right)

    def finish_f(self, pending: PendingHalo) -> None:
        """Wait for the x stage, fill the x ghosts, then run the y stage
        (blocking — it must see the fresh x ghosts for the corners)."""
        f, phase = pending.array, pending.phase
        from_left, wait_l = self._timed_wait(pending.from_left)
        from_right, wait_r = self._timed_wait(pending.from_right)
        wait = wait_l + wait_r
        f[:, self.right_dirs, 0] = from_left
        f[:, self.left_dirs, -1] = from_right
        if self.cols > 1:
            wait += self._exchange_f_y(f, phase)
        self.wait_f_seconds += wait
        if self.observer.enabled:
            self._counter_f_wait.add(wait)

    def exchange_f(self, f: np.ndarray, phase: Any) -> None:
        """Blocking exchange: ``begin`` + ``finish`` back to back."""
        self.finish_f(self.begin_f(f, phase))

    def _exchange_f_y(self, f: np.ndarray, phase: Any) -> float:
        """The y stage: boundary rows over the *full* padded x extent
        (corner data rides the x ghosts filled a moment ago)."""
        comm = self.comm
        send_up = np.ascontiguousarray(f[:, self.up_dirs, :, -2])
        send_down = np.ascontiguousarray(f[:, self.down_dirs, :, 1])
        if self.observer.enabled:
            nbytes = send_up.nbytes + send_down.nbytes
            self.bytes_f += nbytes
            self._counter_f.add(nbytes)
        comm.isend(self.y_next, ("halo_f", phase, "U"), send_up)
        comm.isend(self.y_prev, ("halo_f", phase, "D"), send_down)
        req_down = comm.irecv(self.y_prev, ("halo_f", phase, "U"))
        req_up = comm.irecv(self.y_next, ("halo_f", phase, "D"))
        from_down, wait_d = self._timed_wait(req_down)
        from_up, wait_u = self._timed_wait(req_up)
        f[:, self.up_dirs, :, 0] = from_down
        f[:, self.down_dirs, :, -1] = from_up
        return wait_d + wait_u

    # --------------------------------------------------------------- rho
    def begin_scalar(
        self, field: np.ndarray, phase: Any, kind: str
    ) -> PendingHalo:
        """Snapshot the x-boundary planes of a per-component scalar field
        (shape ``(C, ln+2, *cross)``) and post the x-stage exchange."""
        comm = self.comm
        send_right = np.ascontiguousarray(field[:, -2])
        send_left = np.ascontiguousarray(field[:, 1])
        if self.observer.enabled:
            nbytes = send_right.nbytes + send_left.nbytes
            self.bytes_scalar += nbytes
            self._counter_scalar.add(nbytes)
        if self.rows == 1:
            return PendingHalo(field, (phase, kind), send_right, send_left)
        comm.isend(self.x_next, (kind, phase, "R"), send_right)
        comm.isend(self.x_prev, (kind, phase, "L"), send_left)
        from_left = comm.irecv(self.x_prev, (kind, phase, "R"))
        from_right = comm.irecv(self.x_next, (kind, phase, "L"))
        return PendingHalo(field, (phase, kind), from_left, from_right)

    def finish_scalar(self, pending: PendingHalo) -> None:
        field = pending.array
        phase, kind = pending.phase
        from_left, wait_l = self._timed_wait(pending.from_left)
        from_right, wait_r = self._timed_wait(pending.from_right)
        wait = wait_l + wait_r
        field[:, 0] = from_left
        field[:, -1] = from_right
        if self.cols > 1:
            wait += self._exchange_scalar_y(field, phase, kind)
        self.wait_scalar_seconds += wait
        if self.observer.enabled:
            self._counter_scalar_wait.add(wait)

    def exchange_scalar(
        self, field: np.ndarray, phase: Any, kind: str
    ) -> None:
        """Blocking exchange: ``begin`` + ``finish`` back to back."""
        self.finish_scalar(self.begin_scalar(field, phase, kind))

    def _exchange_scalar_y(
        self, field: np.ndarray, phase: Any, kind: str
    ) -> float:
        comm = self.comm
        send_up = np.ascontiguousarray(field[:, :, -2])
        send_down = np.ascontiguousarray(field[:, :, 1])
        if self.observer.enabled:
            nbytes = send_up.nbytes + send_down.nbytes
            self.bytes_scalar += nbytes
            self._counter_scalar.add(nbytes)
        comm.isend(self.y_next, (kind, phase, "U"), send_up)
        comm.isend(self.y_prev, (kind, phase, "D"), send_down)
        req_down = comm.irecv(self.y_prev, (kind, phase, "U"))
        req_up = comm.irecv(self.y_next, (kind, phase, "D"))
        from_down, wait_d = self._timed_wait(req_down)
        from_up, wait_u = self._timed_wait(req_up)
        field[:, :, 0] = from_down
        field[:, :, -1] = from_up
        return wait_d + wait_u
