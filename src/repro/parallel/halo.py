"""Halo (ghost-plane) exchange.

Per phase the parallel LBM synchronizes twice (Figure 2):

- line 8: the distribution functions about to stream across the slab
  boundary — exactly the populations with ``c_x > 0`` travel to the right
  neighbour and those with ``c_x < 0`` to the left (the paper's direction
  groups 1..5 / 2..6 for its D3Q19 numbering);
- line 14: the number densities of both components, needed by the
  Shan-Chen interaction force at boundary planes.

The halo topology is a ring (periodic x); a world of size 1 wraps its own
planes locally.

With an enabled :class:`repro.obs.Observer` the exchanger counts the
bytes it ships (``halo.f.bytes`` / ``halo.scalar.bytes`` counters, plus
the cumulative per-exchanger totals ``bytes_f`` / ``bytes_scalar`` that
the parallel driver folds into its per-phase trace events).  Disabled,
the hot path is byte-for-byte the original.
"""

from __future__ import annotations

import numpy as np

from repro.lbm.lattice import Lattice
from repro.obs.observer import NULL_OBSERVER
from repro.parallel.api import Communicator


class HaloExchanger:
    """Fills the ghost planes of one rank's slab arrays."""

    def __init__(
        self, lattice: Lattice, comm: Communicator, observer=NULL_OBSERVER
    ):
        self.lattice = lattice
        self.comm = comm
        self.observer = observer
        self.right_dirs = lattice.directions_with(0, +1)
        self.left_dirs = lattice.directions_with(0, -1)
        #: Cumulative payload bytes sent by this rank (only tracked when
        #: the observer is enabled; stay 0 otherwise).
        self.bytes_f = 0
        self.bytes_scalar = 0
        if observer.enabled:
            self._counter_f = observer.counter("halo.f.bytes")
            self._counter_scalar = observer.counter("halo.scalar.bytes")

    # ----------------------------------------------------------------- f
    def exchange_f(self, f: np.ndarray, phase: int) -> None:
        """Fill the x-ghost planes of *f* (shape ``(C, Q, ln+2, *cross)``)
        with the neighbour populations that will stream in, in place."""
        comm = self.comm
        send_right = np.ascontiguousarray(f[:, self.right_dirs, -2])
        send_left = np.ascontiguousarray(f[:, self.left_dirs, 1])
        if self.observer.enabled:
            nbytes = send_right.nbytes + send_left.nbytes
            self.bytes_f += nbytes
            self._counter_f.add(nbytes)
        if comm.size == 1:
            f[:, self.right_dirs, 0] = send_right
            f[:, self.left_dirs, -1] = send_left
            return
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        # Direction-specific tags: with 2 ranks the left and right
        # neighbour are the same peer, so the two messages must not alias.
        comm.send(right, ("halo_f", phase, "R"), send_right)
        comm.send(left, ("halo_f", phase, "L"), send_left)
        from_left = comm.recv(left, ("halo_f", phase, "R"))
        from_right = comm.recv(right, ("halo_f", phase, "L"))
        f[:, self.right_dirs, 0] = from_left
        f[:, self.left_dirs, -1] = from_right

    # --------------------------------------------------------------- rho
    def exchange_scalar(self, field: np.ndarray, phase: int, kind: str) -> None:
        """Fill the x-ghost planes of a per-component scalar field (shape
        ``(C, ln+2, *cross)``), e.g. the number densities, in place."""
        comm = self.comm
        send_right = np.ascontiguousarray(field[:, -2])
        send_left = np.ascontiguousarray(field[:, 1])
        if self.observer.enabled:
            nbytes = send_right.nbytes + send_left.nbytes
            self.bytes_scalar += nbytes
            self._counter_scalar.add(nbytes)
        if comm.size == 1:
            field[:, 0] = send_right
            field[:, -1] = send_left
            return
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        comm.send(right, (kind, phase, "R"), send_right)
        comm.send(left, (kind, phase, "L"), send_left)
        from_left = comm.recv(left, (kind, phase, "R"))
        from_right = comm.recv(right, (kind, phase, "L"))
        field[:, 0] = from_left
        field[:, -1] = from_right
