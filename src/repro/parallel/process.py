"""Process-backed communicator: real multi-core parallelism.

Each rank is an OS process (forked, so the SPMD closure and the config
are inherited, never pickled) and bulk payloads travel through
``multiprocessing.shared_memory`` instead of being serialized:

- Per ordered rank pair there is one :class:`_Link` — a one-way channel
  made of a duplex-free pipe for small *headers* (tag, payload kind,
  array shape/dtype) plus a fixed ring of preallocated shared-memory
  slots through which ndarray bytes move.  Sending a halo plane is one
  ``memcpy`` into the next free slot; receiving is one ``memcpy`` out.
  No pickling of array data, no per-message allocation on the send side.
- Flow control is a classic bounded-buffer semaphore pair per link
  (``free`` acquired before writing a slot, ``filled`` released after).
  Because each link has exactly one sender and one receiver process,
  both sides track the ring position with a plain local counter.
- Payloads larger than one slot (plane-migration packages) are chunked
  across consecutive slots.  Non-array payloads (tags vote strings,
  remap proposals, ``None``) ride the header pipe pickled; large pickles
  overflow into the ring as raw bytes.

The semantics mirror :class:`repro.parallel.threads.ThreadCommunicator`
exactly — tagged (source, tag) addressing with an out-of-order stash,
barrier, allgather — so the lock-step LBM protocol, remapping migrations
and checkpoint collectives run unchanged on either transport.  The one
observable difference is ownership: a received array is always a fresh
private copy (threads hand over the sender's object itself), which is
strictly safer.

A received-side timeout raises the same
:class:`~repro.parallel.api.CommunicatorTimeout` as the thread
transport, naming rank, peer and tag.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as queue_mod
import time
from collections import defaultdict
from collections.abc import Callable
from multiprocessing import shared_memory
from typing import Any, Hashable

import numpy as np

from repro.parallel.api import (
    DEFAULT_RECV_TIMEOUT,
    Communicator,
    CommunicatorTimeout,
    Request,
)
from repro.util.validation import check_integer

#: Default byte size of one shared-memory ring slot.  Launchers that
#: know the physics (the parallel driver) pass the exact plane size so a
#: halo message is a single-chunk transfer.
DEFAULT_SLOT_BYTES = 1 << 18

#: Slots per link ring.  One sender/one receiver per link, so a small
#: ring already decouples the two sides across a whole phase.
SLOTS_PER_LINK = 8

#: Pickled control payloads up to this size travel inside the header
#: pipe; larger ones are chunked through the shared-memory ring (an OS
#: pipe write blocks past ~64 KiB, which could deadlock two ranks doing
#: simultaneous large sends).
PIPE_PAYLOAD_LIMIT = 32 * 1024

#: Header kinds.
_KIND_INLINE = 0  # payload pickled inside the header itself
_KIND_ARRAY = 1  # ndarray bytes follow through the ring
_KIND_PICKLE = 2  # oversized pickle bytes follow through the ring


def _remaining(deadline: float | None) -> float | None:
    if deadline is None:
        return None
    return max(0.0, deadline - time.perf_counter())


class _Link:
    """One-way rank-to-rank channel: header pipe + shm slot ring.

    Created by the parent before forking; both endpoint processes
    inherit the same pipe connections, shared-memory segment and
    semaphores.  ``_sent``/``_received`` are per-process ring cursors —
    after the fork each side advances only its own copy, and the
    single-producer/single-consumer discipline keeps them in lock step.
    """

    def __init__(self, ctx, slot_bytes: int, slots: int):
        self.slot_bytes = slot_bytes
        self.slots = slots
        self.recv_conn, self.send_conn = ctx.Pipe(duplex=False)
        self.shm = shared_memory.SharedMemory(
            create=True, size=slot_bytes * slots
        )
        self._buf = np.frombuffer(self.shm.buf, dtype=np.uint8)
        self.free_slots = ctx.BoundedSemaphore(slots)
        self.filled_slots = ctx.Semaphore(0)
        self._sent = 0
        self._received = 0

    # --------------------------------------------------------------- bytes
    def push_bytes(self, data: memoryview) -> None:
        """Copy *data* into the ring, chunked across slots, blocking on
        ``free_slots`` (classic bounded buffer; the receiver frees)."""
        size = self.slot_bytes
        nbytes = len(data)
        offset = 0
        while offset < nbytes:
            self.free_slots.acquire()
            slot = (self._sent % self.slots) * size
            chunk = data[offset : offset + size]
            self._buf[slot : slot + len(chunk)] = np.frombuffer(
                chunk, dtype=np.uint8
            )
            self._sent += 1
            offset += size
            self.filled_slots.release()

    def pull_bytes(
        self,
        out: memoryview,
        nbytes: int,
        deadline: float | None,
        on_timeout: Callable[[], CommunicatorTimeout],
    ) -> None:
        """Copy *nbytes* from the ring into *out*, chunk by chunk."""
        size = self.slot_bytes
        offset = 0
        while offset < nbytes:
            if not self.filled_slots.acquire(timeout=_remaining(deadline)):
                raise on_timeout()
            slot = (self._received % self.slots) * size
            take = min(size, nbytes - offset)
            out[offset : offset + take] = self._buf[slot : slot + take]
            self._received += 1
            offset += take
            self.free_slots.release()

    # ------------------------------------------------------------- cleanup
    def destroy(self) -> None:
        """Parent-side teardown: close both pipe ends, unmap and unlink
        the shared-memory segment (idempotent)."""
        self._buf = None
        self.recv_conn.close()
        self.send_conn.close()
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double destroy
            pass


class _ProcessWorld:
    """The inherited fabric of one process world: all links + barrier."""

    def __init__(self, size: int, ctx, slot_bytes: int, slots: int):
        self.size = size
        self.links = {
            (src, dst): _Link(ctx, slot_bytes, slots)
            for src in range(size)
            for dst in range(size)
            if src != dst
        }
        self.barrier = ctx.Barrier(size)

    def link(self, src: int, dst: int) -> _Link:
        return self.links[(src, dst)]

    def destroy(self) -> None:
        for link in self.links.values():
            link.destroy()


class ProcessCommunicator(Communicator):
    """One rank's endpoint in a :class:`_ProcessWorld`.

    Same addressing contract as the thread transport: every receive
    names its exact (source, tag); out-of-order arrivals on the same
    link are parked in a stash keyed by tag.
    """

    def __init__(self, world: _ProcessWorld, rank: int):
        self._world = world
        self._rank = rank
        self._stash: dict[tuple[int, Hashable], list[Any]] = defaultdict(list)

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} out of range [0, {self.size})")
        if peer == self._rank:
            raise ValueError("self-messaging is not part of the protocol")

    # ---------------------------------------------------------------- send
    def isend(self, dest: int, tag: Hashable, payload: Any) -> Request:
        # Headers and ring chunks are pushed synchronously — bounded only
        # by ring back-pressure, never by the receiver's recv posting —
        # so the send is buffered and the request completes eagerly.
        self._check_peer(dest)
        link = self._world.link(self._rank, dest)
        if isinstance(payload, np.ndarray):
            data = np.ascontiguousarray(payload)
            link.send_conn.send(
                (_KIND_ARRAY, tag, data.shape, data.dtype.str, data.nbytes)
            )
            link.push_bytes(memoryview(data).cast("B"))
            return Request.completed()
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if len(blob) <= PIPE_PAYLOAD_LIMIT:
            link.send_conn.send((_KIND_INLINE, tag, blob))
        else:
            link.send_conn.send((_KIND_PICKLE, tag, len(blob)))
            link.push_bytes(memoryview(blob))
        return Request.completed()

    # ---------------------------------------------------------------- recv
    def irecv(self, source: int, tag: Hashable) -> Request:
        self._check_peer(source)
        return Request(
            resolve=lambda timeout: self._pull(source, tag, timeout),
            test=lambda: bool(self._stash[(source, tag)]),
        )

    def _pull(
        self, source: int, tag: Hashable, timeout: float | None
    ) -> Any:
        """The blocking delivery engine behind every posted receive."""
        if timeout is None:
            timeout = DEFAULT_RECV_TIMEOUT
        stash = self._stash[(source, tag)]
        if stash:
            return stash.pop(0)
        link = self._world.link(source, self._rank)
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        while True:
            got_tag, payload = self._next_message(
                link, source, tag, timeout, deadline
            )
            if got_tag == tag:
                return payload
            self._stash[(source, got_tag)].append(payload)

    def _next_message(
        self,
        link: _Link,
        source: int,
        want_tag: Hashable,
        timeout: float | None,
        deadline: float | None,
    ) -> tuple[Hashable, Any]:
        """The next whole message from *link* (header + ring chunks)."""

        def timed_out() -> CommunicatorTimeout:
            return CommunicatorTimeout(
                self._rank,
                source,
                want_tag,
                0.0 if timeout is None else timeout,
                transport="processes",
            )

        if not link.recv_conn.poll(_remaining(deadline)):
            raise timed_out()
        header = link.recv_conn.recv()
        kind, tag = header[0], header[1]
        if kind == _KIND_INLINE:
            return tag, pickle.loads(header[2])
        if kind == _KIND_ARRAY:
            _, _, shape, dtype_str, nbytes = header
            out = np.empty(shape, dtype=np.dtype(dtype_str))
            link.pull_bytes(
                memoryview(out).cast("B"), nbytes, deadline, timed_out
            )
            return tag, out
        if kind == _KIND_PICKLE:
            raw = bytearray(header[2])
            link.pull_bytes(memoryview(raw), header[2], deadline, timed_out)
            return tag, pickle.loads(bytes(raw))
        raise RuntimeError(f"corrupt link header kind {kind!r}")

    # ---------------------------------------------------------- collective
    def barrier(self) -> None:
        self._world.barrier.wait()

    def allgather(self, payload: Any, tag: Hashable) -> list[Any]:
        for dest in range(self.size):
            if dest != self._rank:
                self.send(dest, ("allgather", tag), payload)
        out: list[Any] = []
        for source in range(self.size):
            if source == self._rank:
                out.append(payload)
            else:
                out.append(self.recv(source, ("allgather", tag)))
        return out


def _rank_entry(world, rank, fn, args, result_queue):
    """Child-process main: run the SPMD function, report exactly one
    ``(kind, rank, payload)`` record.  Errors travel as ``repr`` strings
    — exception *objects* with custom constructors (``InjectedFault``)
    do not survive pickling, and the parent only needs the text."""
    comm = ProcessCommunicator(world, rank)
    try:
        result = fn(comm, *args)
    except BaseException as exc:  # propagate to the parent as text
        result_queue.put(("err", rank, repr(exc)))
        return
    result_queue.put(("ok", rank, result))


class ProcessCluster:
    """Spawns *size* rank processes running one SPMD function.

    Mirrors :class:`repro.parallel.threads.LocalCluster`: the function
    receives ``(comm, *rank_args)``, per-rank return values come back in
    rank order, the first failing rank is re-raised in the parent as
    ``RuntimeError("rank N failed: ...")``.  Differences inherent to
    processes:

    - the world's shared-memory segments are finite OS resources, so a
      cluster runs **once** and tears its fabric down in ``finally``;
    - on the first rank failure the remaining ranks are terminated
      (their peers would otherwise sit in 60 s receive timeouts), and a
      rank that dies without reporting — ``kill -9``, ``os._exit`` — is
      detected by liveness polling rather than hanging the join.

    Requires the ``fork`` start method (the SPMD closure, config and
    fault plan are inherited, not pickled); unavailable on platforms
    without it.
    """

    def __init__(
        self,
        size: int,
        *,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        slots: int = SLOTS_PER_LINK,
    ):
        self.size = check_integer(size, "size", minimum=1)
        check_integer(slot_bytes, "slot_bytes", minimum=1)
        check_integer(slots, "slots", minimum=2)
        self._ctx = mp.get_context("fork")
        self._world = _ProcessWorld(self.size, self._ctx, slot_bytes, slots)
        self._spent = False

    def communicator(self, rank: int) -> ProcessCommunicator:
        """An endpoint for in-process protocol tests (no forking)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return ProcessCommunicator(self._world, rank)

    def run(
        self,
        fn: Callable[..., Any],
        *,
        rank_args: list[tuple] | None = None,
        timeout: float | None = 300.0,
    ) -> list[Any]:
        if self._spent:
            raise RuntimeError(
                "this ProcessCluster already ran; its shared-memory world "
                "is torn down — build a new cluster per run"
            )
        self._spent = True
        result_queue = self._ctx.Queue()
        procs = []
        try:
            for rank in range(self.size):
                args = rank_args[rank] if rank_args is not None else ()
                proc = self._ctx.Process(
                    target=_rank_entry,
                    args=(self._world, rank, fn, args, result_queue),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            results, failure = self._collect(procs, result_queue, timeout)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=10.0)
            result_queue.close()
            self._world.destroy()
        if failure is not None:
            rank, desc = failure
            raise RuntimeError(f"rank {rank} failed: {desc}")
        return results

    def _collect(
        self,
        procs: list,
        result_queue,
        timeout: float | None,
    ) -> tuple[list[Any], tuple[int, str] | None]:
        """Drain one record per rank; stop early on the first failure or
        on a silently-dead child."""
        results: list[Any] = [None] * self.size
        pending = set(range(self.size))
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        suspect_dead = False
        while pending:
            try:
                grace = 0.5 if suspect_dead else 0.2
                kind, rank, payload = result_queue.get(timeout=grace)
            except queue_mod.Empty:
                dead = [
                    r for r in sorted(pending) if not procs[r].is_alive()
                ]
                if dead and suspect_dead:
                    # Second consecutive empty poll with the same dead
                    # child: nothing more is coming from it.
                    code = procs[dead[0]].exitcode
                    return results, (
                        dead[0],
                        f"rank process died (exitcode {code}) without "
                        "reporting a result",
                    )
                suspect_dead = bool(dead)
                if (
                    deadline is not None
                    and time.perf_counter() >= deadline
                ):
                    raise TimeoutError(
                        "a rank process failed to finish (deadlock?)"
                    )
                continue
            suspect_dead = False
            pending.discard(rank)
            if kind == "err":
                return results, (rank, payload)
            results[rank] = payload
        return results, None


def run_spmd_processes(
    size: int,
    fn: Callable[..., Any],
    *,
    rank_args: list[tuple] | None = None,
    timeout: float | None = 300.0,
    slot_bytes: int = DEFAULT_SLOT_BYTES,
) -> list[Any]:
    """Convenience: build a :class:`ProcessCluster`, run *fn* on every
    rank, tear the world down, return per-rank results."""
    cluster = ProcessCluster(size, slot_bytes=slot_bytes)
    return cluster.run(fn, rank_args=rank_args, timeout=timeout)
