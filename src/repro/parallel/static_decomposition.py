"""Static decomposition analysis: slice vs. box vs. cubic partitioning.

The paper (and the prior work it cites — Skordos; Kandhai et al.) divides
the grid into equal sub-volumes by slicing along one axis, boxes in two
axes, or cubes in three.  The paper picks 1-D slices along x "because of
the special geometry in our application (the x direction is much longer
than y and z)".  This module quantifies that choice: halo surface area,
neighbour counts, and estimated per-phase communication cost for every
feasible processor-grid factorization.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.cluster.costmodel import PhaseCostModel
from repro.util.validation import check_integer


def factorizations(p: int, dims: int) -> list[tuple[int, ...]]:
    """All ordered factorizations of *p* into *dims* positive factors."""
    check_integer(p, "p", minimum=1)
    check_integer(dims, "dims", minimum=1)
    if dims == 1:
        return [(p,)]
    out = []
    for first in range(1, p + 1):
        if p % first:
            continue
        for rest in factorizations(p // first, dims - 1):
            out.append((first, *rest))
    return out


@dataclass(frozen=True)
class DecompositionPlan:
    """One processor-grid assignment for a structured grid.

    Attributes
    ----------
    grid_shape:
        Lattice extent per axis.
    proc_grid:
        Processors per axis; ``prod(proc_grid) = P``.
    """

    grid_shape: tuple[int, ...]
    proc_grid: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.grid_shape) != len(self.proc_grid):
            raise ValueError("grid_shape and proc_grid must match in length")
        for n, p in zip(self.grid_shape, self.proc_grid):
            check_integer(n, "grid extent", minimum=1)
            check_integer(p, "processors per axis", minimum=1)
            if p > n:
                raise ValueError(
                    f"cannot split extent {n} across {p} processors"
                )

    @property
    def n_processors(self) -> int:
        return int(np.prod(self.proc_grid))

    @property
    def kind(self) -> str:
        """slice / box / cubic, by how many axes are actually cut."""
        cut_axes = sum(1 for p in self.proc_grid if p > 1)
        return {0: "trivial", 1: "slice", 2: "box"}.get(cut_axes, "cubic")

    def subdomain_shape(self) -> tuple[float, ...]:
        """Average subdomain extent per axis (may be fractional)."""
        return tuple(n / p for n, p in zip(self.grid_shape, self.proc_grid))

    def points_per_node(self) -> float:
        return float(np.prod(self.subdomain_shape()))

    def halo_surface(self) -> float:
        """Lattice points on the halo surface of one (interior) subdomain:
        two faces per cut axis."""
        sub = self.subdomain_shape()
        surface = 0.0
        for axis, p in enumerate(self.proc_grid):
            if p == 1:
                continue  # periodic within the node; no exchange
            face = np.prod([s for a, s in enumerate(sub) if a != axis])
            surface += 2.0 * float(face)
        return surface

    def neighbour_count(self) -> int:
        """Face-neighbours of an interior subdomain (LBM halo partners;
        edge/corner links ride along with face exchanges for D3Q19)."""
        return 2 * sum(1 for p in self.proc_grid if p > 1)

    def phase_comm_cost(
        self, cost_model: PhaseCostModel, bytes_per_point: float
    ) -> float:
        """Estimated per-phase communication time of one node: one message
        per face plus the serialized halo bytes."""
        cost = 0.0
        sub = self.subdomain_shape()
        for axis, p in enumerate(self.proc_grid):
            if p == 1:
                continue
            face = float(np.prod([s for a, s in enumerate(sub) if a != axis]))
            per_face = cost_model.per_message_overhead + cost_model.wire_time(
                face * bytes_per_point
            )
            cost += 2.0 * per_face
        return cost


def enumerate_plans(
    grid_shape: tuple[int, ...], n_processors: int
) -> list[DecompositionPlan]:
    """Every feasible processor-grid factorization for the grid."""
    plans = []
    for proc_grid in factorizations(n_processors, len(grid_shape)):
        try:
            plans.append(DecompositionPlan(grid_shape, proc_grid))
        except ValueError:
            continue  # more processors than extent on some axis
    if not plans:
        raise ValueError(
            f"no feasible decomposition of {grid_shape} over "
            f"{n_processors} processors"
        )
    return plans


def best_plan(
    grid_shape: tuple[int, ...],
    n_processors: int,
    *,
    by: str = "surface",
    cost_model: PhaseCostModel | None = None,
    bytes_per_point: float = 80.0,
) -> DecompositionPlan:
    """The factorization minimizing halo *surface* or estimated comm
    *cost* (messages + bytes — latency-heavy networks often prefer fewer,
    larger messages, i.e. slices)."""
    plans = enumerate_plans(grid_shape, n_processors)
    if by == "surface":
        return min(plans, key=lambda p: (p.halo_surface(), p.neighbour_count()))
    if by == "cost":
        if cost_model is None:
            cost_model = PhaseCostModel()
        return min(
            plans,
            key=lambda p: p.phase_comm_cost(cost_model, bytes_per_point),
        )
    raise ValueError(f"by must be 'surface' or 'cost', got {by!r}")


def compare_kinds(
    grid_shape: tuple[int, ...],
    n_processors: int,
    *,
    cost_model: PhaseCostModel | None = None,
    bytes_per_point: float = 80.0,
) -> dict[str, DecompositionPlan]:
    """The best plan of each kind (slice / box / cubic) that exists for
    this grid and processor count — the paper's Section 2.2 comparison."""
    if cost_model is None:
        cost_model = PhaseCostModel()
    best: dict[str, DecompositionPlan] = {}
    for plan in enumerate_plans(grid_shape, n_processors):
        kind = plan.kind
        if kind == "trivial":
            continue
        cost = plan.phase_comm_cost(cost_model, bytes_per_point)
        if kind not in best or cost < best[kind].phase_comm_cost(
            cost_model, bytes_per_point
        ):
            best[kind] = plan
    return best
