"""Transport-agnostic SPMD launching.

One function, :func:`launch_spmd`, runs an SPMD rank function on either
world fabric:

``threads``
    :class:`repro.parallel.threads.LocalCluster` — ranks are threads in
    this process.  Zero startup cost, shared memory by construction,
    but compute serializes on the GIL outside NumPy kernels.
``processes``
    :class:`repro.parallel.process.ProcessCluster` — ranks are forked
    processes exchanging array payloads through shared-memory rings.
    Real multi-core execution.

Unspecified transport resolves through ``REPRO_TRANSPORT`` (see
:mod:`repro.config`), defaulting to ``threads``.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.parallel.process import DEFAULT_SLOT_BYTES, ProcessCluster
from repro.parallel.threads import LocalCluster

#: The recognised transport names.
TRANSPORTS = ("threads", "processes")

DEFAULT_TRANSPORT = "threads"


def resolve_transport(name: str | None = None) -> str:
    """Resolve an explicit/None transport name to a known one.

    Resolution order: explicit *name* -> ``$REPRO_TRANSPORT`` ->
    ``"threads"``.  Unknown names fail loudly at launch time.
    """
    if name is None:
        from repro.config import from_env

        name = from_env().transport or DEFAULT_TRANSPORT
    if name not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {name!r}; available: {list(TRANSPORTS)}"
        )
    return name


def launch_spmd(
    size: int,
    fn: Callable[..., Any],
    *,
    transport: str | None = None,
    rank_args: list[tuple] | None = None,
    timeout: float | None = 300.0,
    slot_bytes: int = DEFAULT_SLOT_BYTES,
) -> list[Any]:
    """Run *fn* as ``fn(comm, *rank_args[rank])`` on every rank of a
    fresh *size*-rank world of the chosen transport; returns per-rank
    results in rank order.

    *slot_bytes* sizes the process transport's shared-memory ring slots
    (ignored by threads); pass the bulk-message size so array transfers
    are single-chunk.
    """
    transport = resolve_transport(transport)
    if transport == "threads":
        return LocalCluster(size).run(fn, rank_args=rank_args, timeout=timeout)
    cluster = ProcessCluster(size, slot_bytes=slot_bytes)
    return cluster.run(fn, rank_args=rank_args, timeout=timeout)
