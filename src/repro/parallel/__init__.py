"""Message-passing substrate: an MPI-like communicator, slab decomposition
with ghost planes, halo exchange, plane migration, and the parallel LBM
driver mirroring the paper's Figure 2 pseudocode.

mpi4py and a physical cluster are unavailable in this reproduction, so
the world runs inside one machine on either of two transports sharing
one :class:`Communicator` contract: ``threads`` (ranks are threads
exchanging numpy buffers through blocking channels — emulated
multi-node, zero startup cost) and ``processes`` (ranks are forked
processes moving array payloads through shared-memory rings — real
multi-core execution).  The protocol — who sends which directions to
which neighbour, where the two synchronization points sit, how planes
migrate — is exactly the paper's; only the transport is swappable (see
:mod:`repro.parallel.launch` and ``REPRO_TRANSPORT``).
"""

from repro.parallel.api import (
    Communicator,
    CommunicatorTimeout,
    ReceivedMessage,
)
from repro.parallel.threads import ThreadCommunicator, LocalCluster, run_spmd
from repro.parallel.process import (
    ProcessCluster,
    ProcessCommunicator,
    run_spmd_processes,
)
from repro.parallel.launch import TRANSPORTS, launch_spmd, resolve_transport
from repro.parallel.decomposition import SlabDecomposition, slab_shape
from repro.parallel.halo import HaloExchanger
from repro.parallel.migration import pack_planes, unpack_planes
from repro.parallel.driver import ParallelLBM, ParallelRunResult, run_parallel_lbm

__all__ = [
    "Communicator",
    "CommunicatorTimeout",
    "ReceivedMessage",
    "ThreadCommunicator",
    "LocalCluster",
    "run_spmd",
    "ProcessCluster",
    "ProcessCommunicator",
    "run_spmd_processes",
    "TRANSPORTS",
    "launch_spmd",
    "resolve_transport",
    "SlabDecomposition",
    "slab_shape",
    "HaloExchanger",
    "pack_planes",
    "unpack_planes",
    "ParallelLBM",
    "ParallelRunResult",
    "run_parallel_lbm",
]
