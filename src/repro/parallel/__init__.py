"""Message-passing substrate: an MPI-like communicator, slab decomposition
with ghost planes, halo exchange, plane migration, and the parallel LBM
driver mirroring the paper's Figure 2 pseudocode.

mpi4py and a physical cluster are unavailable in this reproduction, so
ranks run as threads inside one process (emulated multi-node) exchanging
real numpy buffers through blocking channels.  The protocol — who sends
which directions to which neighbour, where the two synchronization points
sit, how planes migrate — is exactly the paper's; only the transport is
in-process.
"""

from repro.parallel.api import Communicator, ReceivedMessage
from repro.parallel.threads import ThreadCommunicator, LocalCluster, run_spmd
from repro.parallel.decomposition import SlabDecomposition, slab_shape
from repro.parallel.halo import HaloExchanger
from repro.parallel.migration import pack_planes, unpack_planes
from repro.parallel.driver import ParallelLBM, ParallelRunResult, run_parallel_lbm

__all__ = [
    "Communicator",
    "ReceivedMessage",
    "ThreadCommunicator",
    "LocalCluster",
    "run_spmd",
    "SlabDecomposition",
    "slab_shape",
    "HaloExchanger",
    "pack_planes",
    "unpack_planes",
    "ParallelLBM",
    "ParallelRunResult",
    "run_parallel_lbm",
]
