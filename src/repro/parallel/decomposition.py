"""1-D slab decomposition bookkeeping for the parallel solver.

Axis 0 (x, the flow direction) is cut into contiguous runs of planes, one
per rank; every rank pads its slab with one ghost plane on each side to
receive neighbour boundary data (the halo).  The physical domain is
periodic along x, so the halo topology is a ring even though the
remapping topology (who balances with whom) is the linear chain of the
paper.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.util.validation import check_integer


def slab_shape(
    local_planes: int, cross_section: tuple[int, ...]
) -> tuple[int, ...]:
    """Local array spatial shape including the two ghost planes."""
    check_integer(local_planes, "local_planes", minimum=1)
    return (local_planes + 2, *cross_section)


class SlabDecomposition:
    """Maps ranks to global plane ranges.

    Parameters
    ----------
    plane_counts:
        Planes per rank, in rank order (all >= 1).
    """

    def __init__(self, plane_counts: Sequence[int]):
        counts = [check_integer(c, "plane count", minimum=1) for c in plane_counts]
        if not counts:
            raise ValueError("need at least one rank")
        self._counts = list(counts)

    @property
    def size(self) -> int:
        return len(self._counts)

    @property
    def total_planes(self) -> int:
        return sum(self._counts)

    def planes(self, rank: int) -> int:
        return self._counts[rank]

    def start(self, rank: int) -> int:
        """Global index of this rank's first plane (Figure 2's ``s``)."""
        self._check_rank(rank)
        return sum(self._counts[:rank])

    def end(self, rank: int) -> int:
        """One past this rank's last plane (Figure 2's ``e``)."""
        return self.start(rank) + self._counts[rank]

    def left_neighbour(self, rank: int) -> int:
        """Ring neighbour supplying the low-x halo."""
        self._check_rank(rank)
        return (rank - 1) % self.size

    def right_neighbour(self, rank: int) -> int:
        """Ring neighbour supplying the high-x halo."""
        self._check_rank(rank)
        return (rank + 1) % self.size

    def interior(self) -> slice:
        """Slice selecting the interior planes of a padded local array."""
        return slice(1, -1)

    def global_slice(self, rank: int) -> slice:
        """Slice of the global x axis owned by *rank*."""
        return slice(self.start(rank), self.end(rank))

    def adjust(self, rank: int, delta: int) -> None:
        """Grow/shrink *rank*'s allocation by *delta* planes (used by the
        migration bookkeeping; neighbour adjustments are the caller's
        responsibility)."""
        new = self._counts[rank] + delta
        if new < 1:
            raise ValueError(f"rank {rank} would drop to {new} planes")
        self._counts[rank] = new

    def counts(self) -> list[int]:
        return list(self._counts)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range [0, {self.size})")

    def assemble(self, pieces: Sequence[np.ndarray], axis: int = 0) -> np.ndarray:
        """Concatenate per-rank interior arrays back into the global field
        (inverse of the decomposition; used by gather/tests)."""
        if len(pieces) != self.size:
            raise ValueError(f"need {self.size} pieces, got {len(pieces)}")
        for r, piece in enumerate(pieces):
            if piece.shape[axis] != self._counts[r]:
                raise ValueError(
                    f"piece {r} has {piece.shape[axis]} planes, "
                    f"expected {self._counts[r]}"
                )
        return np.concatenate(list(pieces), axis=axis)
