"""Domain-decomposition bookkeeping for the parallel solver.

:class:`SlabDecomposition` is the paper's 1-D scheme: axis 0 (x, the
flow direction) is cut into contiguous runs of planes, one per rank;
every rank pads its slab with one ghost plane on each side to receive
neighbour boundary data (the halo).  The physical domain is periodic
along x, so the halo topology is a ring even though the remapping
topology (who balances with whom) is the linear chain of the paper.

:class:`CartTopology` generalizes this to a 2-D cartesian grid: axis 0
is cut into *rows* bands of planes and the first cross-section axis
(axis 1, e.g. y) into *cols* bands of columns, so each rank owns a
rectangle.  ``rows × 1`` degenerates exactly to the slab scheme —
same rank order, same neighbour rings — which the differential tests
exploit for bit-identity between the decompositions.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.util.validation import check_integer


def slab_shape(
    local_planes: int, cross_section: tuple[int, ...]
) -> tuple[int, ...]:
    """Local array spatial shape including the two ghost planes."""
    check_integer(local_planes, "local_planes", minimum=1)
    return (local_planes + 2, *cross_section)


class SlabDecomposition:
    """Maps ranks to global plane ranges.

    Parameters
    ----------
    plane_counts:
        Planes per rank, in rank order (all >= 1).
    """

    def __init__(self, plane_counts: Sequence[int]):
        counts = [check_integer(c, "plane count", minimum=1) for c in plane_counts]
        if not counts:
            raise ValueError("need at least one rank")
        self._counts = list(counts)

    @property
    def size(self) -> int:
        return len(self._counts)

    @property
    def total_planes(self) -> int:
        return sum(self._counts)

    def planes(self, rank: int) -> int:
        return self._counts[rank]

    def start(self, rank: int) -> int:
        """Global index of this rank's first plane (Figure 2's ``s``)."""
        self._check_rank(rank)
        return sum(self._counts[:rank])

    def end(self, rank: int) -> int:
        """One past this rank's last plane (Figure 2's ``e``)."""
        return self.start(rank) + self._counts[rank]

    def left_neighbour(self, rank: int) -> int:
        """Ring neighbour supplying the low-x halo."""
        self._check_rank(rank)
        return (rank - 1) % self.size

    def right_neighbour(self, rank: int) -> int:
        """Ring neighbour supplying the high-x halo."""
        self._check_rank(rank)
        return (rank + 1) % self.size

    def interior(self) -> slice:
        """Slice selecting the interior planes of a padded local array."""
        return slice(1, -1)

    def global_slice(self, rank: int) -> slice:
        """Slice of the global x axis owned by *rank*."""
        return slice(self.start(rank), self.end(rank))

    def adjust(self, rank: int, delta: int) -> None:
        """Grow/shrink *rank*'s allocation by *delta* planes (used by the
        migration bookkeeping; neighbour adjustments are the caller's
        responsibility)."""
        new = self._counts[rank] + delta
        if new < 1:
            raise ValueError(f"rank {rank} would drop to {new} planes")
        self._counts[rank] = new

    def counts(self) -> list[int]:
        return list(self._counts)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range [0, {self.size})")

    def assemble(self, pieces: Sequence[np.ndarray], axis: int = 0) -> np.ndarray:
        """Concatenate per-rank interior arrays back into the global field
        (inverse of the decomposition; used by gather/tests)."""
        if len(pieces) != self.size:
            raise ValueError(f"need {self.size} pieces, got {len(pieces)}")
        for r, piece in enumerate(pieces):
            if piece.shape[axis] != self._counts[r]:
                raise ValueError(
                    f"piece {r} has {piece.shape[axis]} planes, "
                    f"expected {self._counts[r]}"
                )
        return np.concatenate(list(pieces), axis=axis)


def even_split(total: int, parts: int) -> list[int]:
    """Split *total* cells into *parts* contiguous bands, as evenly as
    possible (the first ``total % parts`` bands get one extra)."""
    check_integer(total, "total", minimum=1)
    check_integer(parts, "parts", minimum=1)
    base, extra = divmod(total, parts)
    if base < 1:
        raise ValueError(f"cannot split {total} cells into {parts} bands")
    return [base + (1 if p < extra else 0) for p in range(parts)]


def grid_for(ranks: int, shape: Sequence[int]) -> tuple[int, int]:
    """The most-square ``(rows, cols)`` factorization of *ranks* that
    fits *shape* (rows ≤ nx, cols ≤ the first cross extent); falls back
    toward the slab as the domain forces it."""
    check_integer(ranks, "ranks", minimum=1)
    nx = int(shape[0])
    ny = int(shape[1]) if len(shape) > 1 else 1
    best: tuple[int, int] | None = None
    for rows in range(1, ranks + 1):
        if ranks % rows:
            continue
        cols = ranks // rows
        if rows > nx or cols > ny:
            continue
        if best is None or abs(rows - cols) < abs(best[0] - best[1]):
            best = (rows, cols)
    if best is None:
        raise ValueError(
            f"no (rows, cols) factorization of {ranks} ranks fits the "
            f"{tuple(shape)} domain"
        )
    return best


class CartTopology:
    """2-D cartesian rank grid with explicit per-band ownership.

    Ranks are laid out row-major: ``rank = row * cols + col``.  A *row*
    is a band of x planes (axis 0 of the geometry), a *col* a band of
    columns along the first cross-section axis (axis 1).  Remaining axes
    (z in 3-D) are never decomposed.  Both axes are periodic rings, like
    the slab scheme's x ring.

    ``row_counts``/``col_counts`` are the per-band extents; every rank
    in a row owns the same plane count (and likewise per column), so the
    grid stays cartesian through 2-D remapping by construction.
    """

    def __init__(self, row_counts: Sequence[int], col_counts: Sequence[int]):
        self._row_counts = [
            check_integer(c, "row plane count", minimum=1) for c in row_counts
        ]
        self._col_counts = [
            check_integer(c, "column count", minimum=1) for c in col_counts
        ]
        if not self._row_counts or not self._col_counts:
            raise ValueError("need at least one row and one column band")

    @classmethod
    def from_shape(
        cls, shape: Sequence[int], rows: int, cols: int
    ) -> "CartTopology":
        """Even decomposition of *shape* into a ``rows × cols`` grid."""
        if cols > 1 and len(shape) < 2:
            raise ValueError("a 2-D decomposition needs a cross-section axis")
        col_total = int(shape[1]) if len(shape) > 1 else 1
        return cls(even_split(int(shape[0]), rows), even_split(col_total, cols))

    # ------------------------------------------------------------- geometry
    @property
    def rows(self) -> int:
        return len(self._row_counts)

    @property
    def cols(self) -> int:
        return len(self._col_counts)

    @property
    def size(self) -> int:
        return self.rows * self.cols

    @property
    def total_planes(self) -> int:
        return sum(self._row_counts)

    @property
    def total_cols(self) -> int:
        return sum(self._col_counts)

    def coords(self, rank: int) -> tuple[int, int]:
        self._check_rank(rank)
        return divmod(rank, self.cols)

    def rank_of(self, row: int, col: int) -> int:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        if not 0 <= col < self.cols:
            raise IndexError(f"col {col} out of range [0, {self.cols})")
        return row * self.cols + col

    def neighbour(self, rank: int, axis: int, step: int) -> int:
        """Ring neighbour *step* bands away along *axis* (0: x rows,
        1: cross columns) — both axes are periodic."""
        row, col = self.coords(rank)
        if axis == 0:
            return self.rank_of((row + step) % self.rows, col)
        if axis == 1:
            return self.rank_of(row, (col + step) % self.cols)
        raise ValueError(f"axis must be 0 or 1, got {axis}")

    # ------------------------------------------------------------ ownership
    def planes(self, row: int) -> int:
        return self._row_counts[row]

    def cols_of(self, col: int) -> int:
        return self._col_counts[col]

    def plane_start(self, row: int) -> int:
        return sum(self._row_counts[:row])

    def col_start(self, col: int) -> int:
        return sum(self._col_counts[:col])

    def rectangle(self, rank: int) -> tuple[int, int, int, int]:
        """This rank's global ownership rectangle as
        ``(plane_start, plane_count, col_start, col_count)`` — the tuple
        checkpoint shard manifests carry."""
        row, col = self.coords(rank)
        return (
            self.plane_start(row),
            self._row_counts[row],
            self.col_start(col),
            self._col_counts[col],
        )

    def row_counts(self) -> list[int]:
        return list(self._row_counts)

    def col_counts(self) -> list[int]:
        return list(self._col_counts)

    # ----------------------------------------------------------- remapping
    def adjust_row(self, row: int, delta: int) -> None:
        """Grow/shrink the plane band of *row* by *delta* (the caller
        adjusts the neighbouring row symmetrically)."""
        new = self._row_counts[row] + delta
        if new < 1:
            raise ValueError(f"row {row} would drop to {new} planes")
        self._row_counts[row] = new

    def adjust_col(self, col: int, delta: int) -> None:
        new = self._col_counts[col] + delta
        if new < 1:
            raise ValueError(f"col {col} would drop to {new} columns")
        self._col_counts[col] = new

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range [0, {self.size})")
