"""Thread-backed communicator: the emulated multi-node transport.

Each rank is a Python thread; messages travel through per-(source, dest)
blocking queues.  Because every receive names its exact (source, tag), the
lock-step LBM protocol is deterministic under any thread scheduling.
"""

from __future__ import annotations

import queue
import threading
from collections import defaultdict
from collections.abc import Callable
from typing import Any, Hashable

from repro.parallel.api import (
    DEFAULT_RECV_TIMEOUT,
    Communicator,
    CommunicatorTimeout,
    Request,
)
from repro.util.validation import check_integer


class _World:
    """Shared mailbox fabric + barrier for one communicator world."""

    def __init__(self, size: int):
        self.size = size
        # One queue per (source, dest); messages carry their tag.
        self.channels: dict[tuple[int, int], queue.Queue] = defaultdict(queue.Queue)
        self.barrier = threading.Barrier(size)


class ThreadCommunicator(Communicator):
    """One rank's endpoint in a :class:`_World`.

    Out-of-order arrivals under the same channel are parked in a stash
    keyed by tag, so receives by (source, tag) never mis-deliver.
    """

    def __init__(self, world: _World, rank: int):
        self._world = world
        self._rank = rank
        self._stash: dict[tuple[int, Hashable], list[Any]] = defaultdict(list)

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} out of range [0, {self.size})")
        if peer == self._rank:
            raise ValueError("self-messaging is not part of the protocol")

    def isend(self, dest: int, tag: Hashable, payload: Any) -> Request:
        # A queue.put into the per-channel mailbox is the whole transfer:
        # the send is buffered and completes eagerly.
        self._check_peer(dest)
        self._world.channels[(self._rank, dest)].put((tag, payload))
        return Request.completed()

    def irecv(self, source: int, tag: Hashable) -> Request:
        self._check_peer(source)
        return Request(
            resolve=lambda timeout: self._pull(source, tag, timeout),
            test=lambda: bool(self._stash[(source, tag)]),
        )

    def _pull(
        self, source: int, tag: Hashable, timeout: float | None
    ) -> Any:
        """The blocking delivery engine behind every posted receive."""
        if timeout is None:
            timeout = DEFAULT_RECV_TIMEOUT
        stash = self._stash[(source, tag)]
        if stash:
            return stash.pop(0)
        chan = self._world.channels[(source, self._rank)]
        while True:
            try:
                got_tag, payload = chan.get(timeout=timeout)
            except queue.Empty:
                raise CommunicatorTimeout(
                    self._rank, source, tag, timeout, transport="threads"
                ) from None
            if got_tag == tag:
                return payload
            self._stash[(source, got_tag)].append(payload)

    def barrier(self) -> None:
        self._world.barrier.wait()

    def allgather(self, payload: Any, tag: Hashable) -> list[Any]:
        for dest in range(self.size):
            if dest != self._rank:
                self.send(dest, ("allgather", tag), payload)
        out: list[Any] = []
        for source in range(self.size):
            if source == self._rank:
                out.append(payload)
            else:
                out.append(self.recv(source, ("allgather", tag)))
        return out


class LocalCluster:
    """Spawns *size* rank threads running one SPMD function.

    The function receives ``(comm, rank_args)`` and its return value is
    collected per rank.  Exceptions in any rank are re-raised in the
    caller (with the failing rank noted) after all threads stop.
    """

    def __init__(self, size: int):
        self.size = check_integer(size, "size", minimum=1)
        self._world = _World(self.size)

    def communicator(self, rank: int) -> ThreadCommunicator:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return ThreadCommunicator(self._world, rank)

    def run(
        self,
        fn: Callable[..., Any],
        *,
        rank_args: list[tuple] | None = None,
        timeout: float | None = 300.0,
    ) -> list[Any]:
        results: list[Any] = [None] * self.size
        errors: list[tuple[int, BaseException]] = []

        def worker(rank: int) -> None:
            comm = self.communicator(rank)
            args = rank_args[rank] if rank_args is not None else ()
            try:
                # repro: allow[REP002] -- each rank owns exactly slot [rank];
                # disjoint list-cell stores are race-free, read after join()
                results[rank] = fn(comm, *args)
            except BaseException as exc:  # propagate to the caller
                # repro: allow[REP002] -- list.append is atomic under the
                # GIL and the single consumer reads only after join()
                errors.append((rank, exc))

        threads = [
            threading.Thread(target=worker, args=(r,), daemon=True)
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout)
            if t.is_alive():
                raise TimeoutError("a rank thread failed to finish (deadlock?)")
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return results


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *,
    rank_args: list[tuple] | None = None,
    timeout: float | None = 300.0,
) -> list[Any]:
    """Convenience: build a :class:`LocalCluster` and run *fn* on every
    rank, returning per-rank results."""
    return LocalCluster(size).run(fn, rank_args=rank_args, timeout=timeout)
