"""Metric primitives for the observability layer.

Three instrument kinds, all thread-safe (ranks in
:mod:`repro.parallel.threads` share one registry):

``Counter``
    Monotonically increasing float/int total — halo bytes shipped,
    planes migrated, events emitted.

``Gauge``
    Last-written value — current plane count, current slab points.

``Histogram``
    Streaming summary of a sample distribution: count, sum, min, max and
    the sum of reciprocals, so both the arithmetic **and harmonic** mean
    are available.  The harmonic mean mirrors
    :func:`repro.core.prediction.harmonic_mean` — the paper's load-index
    filter — so a trace can be post-processed with exactly the statistic
    the remapper used online.  Histograms over the same bucket bounds
    merge associatively (fold per-rank histograms into a cluster-wide
    one in any order).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

#: Default bucket upper bounds (seconds) for span-duration histograms.
DEFAULT_BOUNDS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """Monotonic accumulator; ``add`` rejects negative increments."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; got increment {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": "counter", "name": self.name, "value": self._value}


class Gauge:
    """Last-value-wins instrument."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": "gauge", "name": self.name, "value": self._value}


@dataclass
class Histogram:
    """Streaming distribution summary with fixed bucket bounds.

    ``bucket_counts[i]`` counts samples ``<= bounds[i]``; the final slot
    counts the overflow.  ``sum_reciprocals`` accumulates ``1/x`` for
    positive samples so :meth:`harmonic_mean` matches
    :func:`repro.core.prediction.harmonic_mean` on the same data.
    """

    name: str
    bounds: tuple[float, ...] = DEFAULT_BOUNDS
    count: int = 0
    total: float = 0.0
    sum_reciprocals: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    bucket_counts: list[int] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if tuple(self.bounds) != tuple(sorted(self.bounds)):
            raise ValueError(f"bucket bounds must be sorted, got {self.bounds}")
        self.bounds = tuple(float(b) for b in self.bounds)
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)
        elif len(self.bucket_counts) != len(self.bounds) + 1:
            raise ValueError(
                f"need {len(self.bounds) + 1} bucket counts, "
                f"got {len(self.bucket_counts)}"
            )

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram {self.name!r} got non-finite {value}")
        with self._lock:
            self.count += 1
            self.total += value
            if value > 0:
                self.sum_reciprocals += 1.0 / value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.bucket_counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def harmonic_mean(self) -> float:
        """Harmonic mean of the positive samples seen so far (the paper's
        spike-resistant load-index filter); 0 before any sample."""
        if self.count == 0 or self.sum_reciprocals == 0.0:
            return 0.0
        return self.count / self.sum_reciprocals

    def merge(self, other: "Histogram") -> "Histogram":
        """Pure merge: a new histogram summarizing both inputs.

        Requires identical bucket bounds.  Associative and commutative on
        the integer fields; the float accumulators are associative up to
        floating-point rounding.
        """
        if tuple(self.bounds) != tuple(other.bounds):
            raise ValueError(
                f"cannot merge histograms with bounds {self.bounds} "
                f"and {other.bounds}"
            )
        merged = Histogram(name=self.name, bounds=self.bounds)
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.sum_reciprocals = self.sum_reciprocals + other.sum_reciprocals
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        merged.bucket_counts = [
            a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
        ]
        return merged

    def snapshot(self) -> dict:
        return {
            "kind": "histogram",
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "harmonic_mean": self.harmonic_mean(),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create; asking for an
    existing name with a different kind raises, so one registry can be
    shared by every rank thread without silent aliasing.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, factory):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory()
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name=name, bounds=bounds)
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready snapshot of every instrument, keyed by name."""
        with self._lock:
            instruments = list(self._instruments.values())
        return {inst.name: inst.snapshot() for inst in instruments}
