"""The observer: one handle combining a metrics registry, an event sink
and span-based tracing.

Observability is **off by default**.  Code under instrumentation holds an
observer that is either a real :class:`Observer` or the shared
:data:`NULL_OBSERVER`; hot paths guard on the ``enabled`` flag — a plain
attribute load — so a disabled run performs no event construction, no
timing calls and no allocations on account of the instrumentation.

Spans are built on :class:`repro.util.timers.Timer`: entering a span
starts a lap, exiting records the lap duration into a histogram named
``span.<name>`` and (optionally) emits a ``span`` event.  A span whose
body raises records nothing (the Timer discards aborted laps) but emits
an ``error`` event so the trace shows where a run died.

Enable tracing globally by setting ``REPRO_OBS_TRACE=/path/to/trace.jsonl``
in the environment, or explicitly by passing an :class:`Observer` to the
instrumented constructors (solver, parallel driver, cluster simulator).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.config import ENV_TRACE, from_env
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sink import EventSink, JsonlSink, MemorySink
from repro.util.timers import Timer

#: Environment variable: path of the JSONL trace to write (empty = off).
#: Parsed by :mod:`repro.config`; re-exported here for compatibility.
TRACE_ENV_VAR = ENV_TRACE

#: Bucket bounds for span-duration histograms (seconds).
SPAN_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class _NullSpan:
    """Reusable do-nothing context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullObserver:
    """The disabled observer: every operation is a no-op.

    A single shared instance (:data:`NULL_OBSERVER`) stands in wherever
    no observer was requested, so instrumented code never needs a
    ``None`` check — only the cheap ``enabled`` guard.
    """

    __slots__ = ()

    enabled = False
    rank: int | None = None

    def emit(self, type_: str, **fields: Any) -> None:
        return None

    def span(self, name: str, emit: bool = True, **fields: Any) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str) -> None:
        return None

    def gauge(self, name: str) -> None:
        return None

    def histogram(self, name: str) -> None:
        return None

    def child(self, rank: int) -> "NullObserver":
        return self

    def emit_metrics(self) -> None:
        return None

    def close(self) -> None:
        return None


#: The shared disabled observer.
NULL_OBSERVER = NullObserver()


class Span:
    """Times one block with a :class:`~repro.util.timers.Timer` lap and
    records the duration under ``span.<name>``."""

    __slots__ = ("_obs", "name", "emit", "fields", "_timer")

    def __init__(
        self, obs: "Observer", name: str, emit: bool, fields: dict[str, Any]
    ):
        self._obs = obs
        self.name = name
        self.emit = emit
        self.fields = fields
        self._timer = Timer()

    def __enter__(self) -> "Span":
        self._timer.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.__exit__(exc_type, exc, tb)
        if exc_type is not None:
            self._obs.emit(
                "error", span=self.name, error=exc_type.__name__, **self.fields
            )
            return False
        self._obs.histogram(f"span.{self.name}").observe(self._timer.elapsed)
        if self.emit:
            self._obs.emit(
                "span", name=self.name, duration=self._timer.elapsed,
                **self.fields,
            )
        return False

    @property
    def elapsed(self) -> float:
        return self._timer.elapsed


class Observer:
    """An enabled observability handle.

    Rank threads share one sink and one registry; :meth:`child` derives a
    per-rank view that stamps its rank onto every event.
    """

    enabled = True

    def __init__(
        self,
        sink: EventSink | None = None,
        registry: MetricsRegistry | None = None,
        rank: int | None = None,
    ):
        self.sink = sink if sink is not None else MemorySink()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.rank = rank

    # -------------------------------------------------------------- events
    def emit(self, type_: str, **fields: Any) -> dict:
        event: dict[str, Any] = {"type": type_}
        if self.rank is not None:
            event["rank"] = self.rank
        event.update(fields)
        return self.sink.emit(event)

    def span(self, name: str, emit: bool = True, **fields: Any) -> Span:
        return Span(self, name, emit, fields)

    # ------------------------------------------------------------- metrics
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name, bounds=SPAN_BOUNDS)

    def emit_metrics(self) -> dict:
        """Emit a ``metrics`` event carrying the full registry snapshot
        (conventionally once, at the end of a run)."""
        return self.emit("metrics", metrics=self.registry.snapshot())

    # ------------------------------------------------------------ plumbing
    def child(self, rank: int) -> "Observer":
        return Observer(sink=self.sink, registry=self.registry, rank=rank)

    def close(self) -> None:
        self.sink.close()


_env_observers: dict[str, Observer] = {}


def observer_from_env(environ=None) -> Observer | NullObserver:
    """The process-default observer.

    Returns :data:`NULL_OBSERVER` unless ``REPRO_OBS_TRACE`` (parsed by
    :func:`repro.config.from_env`) names a trace path, in which case one
    :class:`Observer` per distinct path is created (and cached, so
    several solvers in one process append to a single trace rather than
    truncating each other).
    """
    path = from_env(environ).trace
    if not path:
        return NULL_OBSERVER
    key = str(Path(path))
    obs = _env_observers.get(key)
    if obs is None:
        obs = Observer(sink=JsonlSink(key))
        _env_observers[key] = obs
    return obs


#: Union accepted everywhere an observer parameter appears.
ObserverLike = Observer | NullObserver


def resolve_observer(
    observer: "Observer | NullObserver | None" = NULL_OBSERVER,
) -> "Observer | NullObserver":
    """Resolve an observer parameter to a concrete handle.

    The shared :data:`NULL_OBSERVER` sentinel (the parameter default
    everywhere, enforced by the REP004 static rule) and ``None`` both
    mean "unspecified" and resolve against ``REPRO_OBS_TRACE``; any
    other observer — including a *fresh* ``NullObserver()``, which
    force-disables tracing even when the environment requests it —
    passes through unchanged.
    """
    if observer is None or observer is NULL_OBSERVER:
        return observer_from_env()
    return observer
