"""``repro.obs`` — the run-trace observability layer.

Off-by-default metrics (:mod:`repro.obs.metrics`), span tracing and the
central :class:`Observer` handle (:mod:`repro.obs.observer`), JSONL/memory
event sinks (:mod:`repro.obs.sink`) and the ``summary``/``compare`` trace
CLI (:mod:`repro.obs.report`, runnable as ``python -m repro.obs.report``).

Enable globally with ``REPRO_OBS_TRACE=/path/trace.jsonl`` or per run by
passing an :class:`Observer` to the solver, the parallel driver or the
cluster simulator.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    Observer,
    ObserverLike,
    NullObserver,
    Span,
    TRACE_ENV_VAR,
    observer_from_env,
    resolve_observer,
)
from repro.obs.sink import EventSink, JsonlSink, MemorySink, read_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "Span",
    "TRACE_ENV_VAR",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "ObserverLike",
    "observer_from_env",
    "read_trace",
    "resolve_observer",
]
