"""Trace post-processing CLI: ``summary`` and ``compare``.

Usage::

    python -m repro.obs.report summary trace.jsonl
    python -m repro.obs.report compare new.jsonl old.jsonl --tolerance 0.10
    python -m repro.obs.report compare new.jsonl BENCH_kernels.json

``summary`` turns one JSONL trace into the paper-style views: a per-rank
execution profile (computation / halo / remapping — the Figure 9 shape),
a migration summary (planes and bytes moved per rank — the Table 1
bookkeeping), and a per-kernel timing table in the same µs/point unit as
``BENCH_kernels.json``.

``compare`` extracts a flat ``{metric: value}`` dict from each input —
either a JSONL trace or a ``BENCH_kernels.json``-style file — and flags
every time-like metric whose *candidate* value exceeds the *baseline* by
more than the tolerance.  It exits nonzero when any regression is found,
so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

from repro.obs.sink import read_trace
from repro.util.tables import format_table


# ---------------------------------------------------------------- summaries
def phase_profile(events: list[dict]) -> dict[int, dict[str, float]]:
    """Aggregate ``phase`` events into a per-rank profile: phase count,
    computation / halo seconds, halo bytes, last plane count."""
    profile: dict[int, dict[str, float]] = defaultdict(
        lambda: {
            "phases": 0,
            "computation": 0.0,
            "halo": 0.0,
            "halo_f_bytes": 0.0,
            "halo_rho_bytes": 0.0,
            "planes": 0.0,
        }
    )
    for ev in events:
        if ev.get("type") != "phase":
            continue
        row = profile[int(ev.get("rank", 0))]
        row["phases"] += 1
        row["computation"] += (
            ev.get("t_collide", 0.0)
            + ev.get("t_stream_bounce", 0.0)
            + ev.get("t_moments", 0.0)
        )
        row["halo"] += ev.get("t_halo_f", 0.0) + ev.get("t_halo_rho", 0.0)
        row["halo_f_bytes"] += ev.get("halo_f_bytes", 0)
        row["halo_rho_bytes"] += ev.get("halo_rho_bytes", 0)
        row["planes"] = ev.get("planes", row["planes"])
    return dict(profile)


def migration_summary(events: list[dict]) -> dict[int, dict[str, float]]:
    """Aggregate ``migrate`` events per rank: planes/bytes sent and
    received, number of remap rounds that moved anything."""
    summary: dict[int, dict[str, float]] = defaultdict(
        lambda: {"sent": 0, "received": 0, "bytes": 0.0, "rounds": 0}
    )
    rounds: dict[int, set] = defaultdict(set)
    for ev in events:
        if ev.get("type") != "migrate":
            continue
        rank = int(ev.get("rank", 0))
        row = summary[rank]
        planes = int(ev.get("planes", 0))
        if ev.get("action") == "send":
            row["sent"] += planes
        else:
            row["received"] += planes
        row["bytes"] += ev.get("bytes", 0)
        rounds[rank].add(ev.get("round"))
    for rank, rset in rounds.items():
        summary[rank]["rounds"] = len(rset)
    return dict(summary)


def kernel_table(events: list[dict]) -> list[tuple[str, int, float, float]]:
    """Rows ``(kernel, calls, total_s, us_per_point)`` from the final
    ``metrics`` event's kernel histograms/counters."""
    metrics: dict[str, dict] = {}
    for ev in events:
        if ev.get("type") == "metrics":
            metrics = ev.get("metrics", {})
    rows = []
    for name, snap in sorted(metrics.items()):
        if not name.startswith("kernel.") or snap.get("kind") != "histogram":
            continue
        points = metrics.get(f"{name}.points", {}).get("value", 0.0)
        total = snap.get("total", 0.0)
        us_per_point = 1e6 * total / points if points else 0.0
        rows.append((name[len("kernel."):], snap.get("count", 0), total,
                     us_per_point))
    return rows


def sim_summary(events: list[dict]) -> dict | None:
    """The cluster simulator's ``sim_end`` payload, if this is a
    simulator trace."""
    for ev in events:
        if ev.get("type") == "sim_end":
            return ev
    return None


def render_summary(events: list[dict]) -> str:
    sections: list[str] = []
    meta = next((e for e in events if e.get("type") == "run_start"), None)
    if meta is not None:
        pairs = ", ".join(
            f"{k}={meta[k]}"
            for k in ("n_ranks", "backend", "policy", "shape", "phases")
            if k in meta
        )
        sections.append(f"run: {pairs}")

    prof = phase_profile(events)
    if prof:
        rows = [
            (
                rank,
                int(p["phases"]),
                p["computation"],
                p["halo"],
                int(p["halo_f_bytes"] + p["halo_rho_bytes"]),
                int(p["planes"]),
            )
            for rank, p in sorted(prof.items())
        ]
        sections.append(
            format_table(
                ["rank", "phases", "compute (s)", "halo (s)",
                 "halo bytes", "final planes"],
                rows,
                title="-- per-rank execution profile --",
                float_fmt="{:.4f}",
            )
        )

    mig = migration_summary(events)
    if mig:
        rows = [
            (rank, int(m["rounds"]), int(m["sent"]), int(m["received"]),
             int(m["bytes"]))
            for rank, m in sorted(mig.items())
        ]
        sections.append(
            format_table(
                ["rank", "rounds", "planes sent", "planes received", "bytes"],
                rows,
                title="-- migration summary --",
            )
        )
    elif prof:
        sections.append("no migration events (run stayed balanced)")

    kernels = kernel_table(events)
    if kernels:
        sections.append(
            format_table(
                ["kernel", "calls", "total (s)", "us/point"],
                kernels,
                title="-- kernel timings --",
                float_fmt="{:.4f}",
            )
        )

    sim = sim_summary(events)
    if sim is not None:
        rows = [
            (i, c, m, r)
            for i, (c, m, r) in enumerate(
                zip(sim.get("computation", []), sim.get("communication", []),
                    sim.get("remapping", []))
            )
        ]
        sections.append(
            format_table(
                ["node", "computation (s)", "communication (s)",
                 "remapping (s)"],
                rows,
                title=(
                    f"-- simulated cluster profile "
                    f"(total {sim.get('total_time', 0.0):.1f}s, "
                    f"{sim.get('planes_moved', 0)} planes moved) --"
                ),
                float_fmt="{:.2f}",
            )
        )

    if not sections:
        sections.append("trace contains no recognized events")
    return "\n\n".join(sections)


# ------------------------------------------------------------------ compare
#: Metric-name suffixes where *larger is worse* (time-like quantities).
_TIME_LIKE = ("duration", "us_per_point", "total_time", "mean", "seconds")

#: Metric-name suffixes where *larger is better* (rate-like quantities,
#: e.g. the batched ensemble's scenarios-per-second throughput or the
#: scheduler's jobs/sec, cache hit-rate and dedup ratio); a regression
#: is a *drop* beyond the tolerance.
_RATE_LIKE = (
    "throughput_scenarios_per_s",
    "per_second",
    "hit_rate",
    "dedup_ratio",
)


def trace_metrics(events: list[dict]) -> dict[str, float]:
    """Flatten a trace into comparable scalar metrics."""
    out: dict[str, float] = {}
    prof = phase_profile(events)
    for rank, p in prof.items():
        if p["phases"]:
            out[f"phase.rank{rank}.compute.mean"] = (
                p["computation"] / p["phases"]
            )
            out[f"phase.rank{rank}.halo.mean"] = p["halo"] / p["phases"]
    if prof:
        total_phases = sum(p["phases"] for p in prof.values())
        out["phase.compute.mean"] = (
            sum(p["computation"] for p in prof.values()) / total_phases
        )
        out["migration.planes"] = float(
            sum(m["sent"] for m in migration_summary(events).values())
        )
    for name, calls, total, us_per_point in kernel_table(events):
        if us_per_point:
            out[f"kernel.{name}.us_per_point"] = us_per_point
    sim = sim_summary(events)
    if sim is not None:
        out["sim.total_time"] = float(sim.get("total_time", 0.0))
        out["sim.planes_moved"] = float(sim.get("planes_moved", 0))
    return out


def bench_metrics(doc: dict) -> dict[str, float]:
    """Comparable metrics from a ``BENCH_kernels.json``-style document.

    The per-kernel section yields ``kernel.<backend>.<kernel>.
    us_per_point`` time-like metrics; the ``batched`` ensemble section
    yields ``ensemble.n<N>.*`` entries — µs/point (time-like) and
    scenarios-per-second throughput (rate-like) per ensemble size; the
    ``sweep`` section (``BENCH_sweep.json``) yields per-scenario
    ``sweep.<scenario>.*`` entries — samples/s, cache hit-rate and
    dedup ratio (rate-like: a drop is the regression) plus µs/point
    (time-like); the ``halo`` section (``BENCH_halo.json``) yields
    per-schedule ``halo.<schedule>.*_seconds`` entries — wall-clock and
    exposed communication wait, both time-like, so an overlap regression
    (exposed wait creeping back toward the blocking schedule's) trips
    the gate.
    """
    out: dict[str, float] = {}
    for kernel, values in doc.get("benchmarks", {}).items():
        for backend, value in values.items():
            if backend.startswith("speedup"):
                continue
            out[f"kernel.{backend}.{kernel}.us_per_point"] = float(value)
    for size, values in doc.get("batched", {}).get("sizes", {}).items():
        for key, value in values.items():
            if key.startswith("speedup"):
                continue
            out[f"ensemble.n{size}.{key}"] = float(value)
    for frac, values in doc.get("serve", {}).get("duplicates", {}).items():
        for key, value in values.items():
            if (
                key.startswith("speedup")
                or isinstance(value, bool)
                or not isinstance(value, (int, float))
            ):
                continue
            out[f"serve.dup{frac}.{key}"] = float(value)
    for scenario, values in doc.get("sweep", {}).get("scenarios", {}).items():
        for key, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out[f"sweep.{scenario}.{key}"] = float(value)
    for schedule, values in doc.get("halo", {}).get("schedules", {}).items():
        for key, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out[f"halo.{schedule}.{key}"] = float(value)
    return out


def load_metrics(path: str | Path) -> dict[str, float]:
    """Metrics from either a JSONL trace or a JSON benchmark document."""
    path = Path(path)
    text = path.read_text(encoding="utf-8").strip()
    if not text:
        raise ValueError(f"{path} is empty")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None  # multi-line JSONL trace
    if isinstance(doc, dict) and (
        "benchmarks" in doc
        or "serve" in doc
        or "sweep" in doc
        or "halo" in doc
    ):
        return bench_metrics(doc)
    return trace_metrics(read_trace(path))


def compare_metrics(
    candidate: dict[str, float],
    baseline: dict[str, float],
    tolerance: float,
) -> list[tuple[str, float, float, float]]:
    """Regressions ``(metric, candidate, baseline, change)`` among the
    comparable metrics both sides report; ``change`` is the fractional
    *worsening* — slowdown for time-like metrics (+0.25 = 25% slower),
    throughput loss for rate-like ones (+0.25 = 25% fewer scenarios/s)."""
    regressions = []
    for name in sorted(set(candidate) & set(baseline)):
        rate_like = name.endswith(_RATE_LIKE)
        if not rate_like and not name.endswith(_TIME_LIKE):
            continue
        base = baseline[name]
        if base <= 0:
            continue
        if rate_like:
            change = 1.0 - candidate[name] / base
        else:
            change = candidate[name] / base - 1.0
        if change > tolerance:
            regressions.append((name, candidate[name], base, change))
    return regressions


def run_compare(
    candidate_path: str | Path,
    baseline_path: str | Path,
    tolerance: float = 0.10,
    out=None,
) -> int:
    if out is None:
        out = sys.stdout
    candidate = load_metrics(candidate_path)
    baseline = load_metrics(baseline_path)
    shared = sorted(
        n
        for n in set(candidate) & set(baseline)
        if n.endswith(_TIME_LIKE) or n.endswith(_RATE_LIKE)
    )
    if not shared:
        print("no comparable time-like metrics between the two inputs",
              file=out)
        return 2
    regressions = compare_metrics(candidate, baseline, tolerance)
    rows = [
        (name, candidate[name], baseline[name],
         # a zero baseline (e.g. cache hit rate with no duplicates) has no
         # meaningful percentage change; compare_metrics skips it too
         100.0 * (candidate[name] / baseline[name] - 1.0)
         if baseline[name] > 0 else float("nan"),
         "REGRESSION" if any(r[0] == name for r in regressions) else "ok")
        for name in shared
    ]
    print(
        format_table(
            ["metric", "candidate", "baseline", "change (%)", "verdict"],
            rows,
            title=f"-- compare (tolerance {tolerance:.0%}) --",
            float_fmt="{:.4g}",
        ),
        file=out,
    )
    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed beyond "
            f"{tolerance:.0%}",
            file=out,
        )
        return 1
    print("\nno regressions", file=out)
    return 0


# ---------------------------------------------------------------------- CLI
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize or diff repro.obs JSONL traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="render one trace")
    p_summary.add_argument("trace", help="JSONL trace path")

    p_compare = sub.add_parser(
        "compare", help="diff two traces (or a trace vs BENCH_kernels.json)"
    )
    p_compare.add_argument("candidate", help="trace under test")
    p_compare.add_argument("baseline", help="reference trace or bench JSON")
    p_compare.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional slowdown before flagging (default 0.10)",
    )

    args = parser.parse_args(argv)
    if args.command == "summary":
        print(render_summary(read_trace(args.trace)))
        return 0
    return run_compare(args.candidate, args.baseline, args.tolerance)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    sys.exit(main())
