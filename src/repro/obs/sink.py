"""Event sinks: where trace events go.

Events are plain dicts.  The sink assigns each a global sequence number
(``seq``) and a timestamp relative to the sink's creation (``ts``), both
under one lock, so a multi-rank trace has a single total order even
though rank threads emit concurrently.  Per-rank sub-orders (filter by
``rank``) are deterministic for a deterministic run; the interleaving
between ranks is not.
"""

from __future__ import annotations

import io
import json
import threading
import time
from pathlib import Path


class EventSink:
    """Base sink: orders events and hands them to :meth:`_write`.

    *t0* pins the timestamp origin explicitly.  The default
    (``perf_counter`` at construction) is right for a single process;
    sinks created in forked rank processes pass the parent sink's
    :attr:`t0` so their timestamps share one origin — on Linux
    ``perf_counter`` is ``CLOCK_MONOTONIC``, comparable across
    processes — and :meth:`absorb` can merge the events into one trace.
    """

    def __init__(self, clock=time.perf_counter, t0: float | None = None):
        self._clock = clock
        self._t0 = clock() if t0 is None else t0
        self._seq = 0
        self._lock = threading.Lock()

    @property
    def t0(self) -> float:
        """The clock reading all ``ts`` stamps are relative to."""
        return self._t0

    def emit(self, event: dict) -> dict:
        """Stamp *event* with ``seq``/``ts`` and record it; returns the
        stamped event (the same dict, mutated)."""
        with self._lock:
            event["seq"] = self._seq
            event["ts"] = round(self._clock() - self._t0, 9)
            self._seq += 1
            self._write(event)
        return event

    def absorb(self, events: list[dict]) -> None:
        """Merge already-timestamped *events* (from a rank process's
        sink sharing this sink's *t0*) into this sink: each keeps its
        ``ts`` but is assigned the next ``seq`` here, so the combined
        trace still has a single total order.  Pre-sort by ``ts`` when
        interleaving several ranks' event lists."""
        with self._lock:
            for event in events:
                event["seq"] = self._seq
                self._seq += 1
                self._write(event)

    def _write(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resource (idempotent)."""


class MemorySink(EventSink):
    """Keeps events in a list — the test and report-building sink, and
    the per-rank collection sink of the process transport."""

    def __init__(self, clock=time.perf_counter, t0: float | None = None):
        super().__init__(clock, t0=t0)
        self.events: list[dict] = []

    def _write(self, event: dict) -> None:
        self.events.append(event)


class JsonlSink(EventSink):
    """Appends one JSON object per line to a file.

    The file is opened lazily on the first event and closed via
    :meth:`close` (or context-manager exit); lines are flushed per event
    so a crashed run still leaves a readable prefix.
    """

    def __init__(
        self,
        path: str | Path,
        clock=time.perf_counter,
        t0: float | None = None,
    ):
        super().__init__(clock, t0=t0)
        self.path = Path(path)
        self._fh: io.TextIOBase | None = None

    def _write(self, event: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps(event, sort_keys=True, default=_jsonable))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _jsonable(value: object) -> object:
    """Fallback encoder: numpy scalars/arrays and other sequence-likes."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"event field of type {type(value).__name__} "
                    f"is not JSON-serializable: {value!r}")


def read_trace(path: str | Path) -> list[dict]:
    """Load a JSONL trace back into a list of event dicts (in ``seq``
    order — re-sorted defensively in case lines were appended out of
    order by a crashing writer)."""
    events: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not a JSON event line: {exc}"
                ) from exc
    events.sort(key=lambda e: e.get("seq", 0))
    return events
