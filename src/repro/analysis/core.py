"""Core of the ``repro.analysis`` static-invariant checker suite.

The suite exists because the repo's two hardest guarantees are invisible
to ordinary linters:

- the fused kernel backend performs **zero full-grid allocation** per
  step (pinned at runtime by the tracemalloc test in
  ``tests/lbm/test_backends.py``);
- parallel ranks exchange state **only** through the halo / migration /
  communicator APIs, and every run is **deterministic from its seed**
  (pinned by the golden-run trace test in
  ``tests/obs/test_golden_run.py``).

Runtime tests catch a violation only on the code paths they execute;
the AST checkers here flag the violating *source line* on every path.

Architecture
------------
A :class:`Checker` declares a rule id (``REP001`` …), decides which files
it :meth:`~Checker.applies_to`, and yields :class:`Finding` objects from
one parsed file (:class:`FileContext`).  A :class:`ProjectChecker`
instead receives the whole parsed tree at once (:class:`ProjectContext`,
with a lazily built :mod:`repro.analysis.flow` call graph) — that is how
the whole-program rules (REP008–REP010) see across file boundaries.
Checkers self-register via :func:`register_checker`;
:func:`run_analysis` drives every registered checker over a file tree,
applies suppressions centrally, reports *unused* suppressions as
``REP000``, and returns a :class:`Report`.

Suppressions
------------
A finding is silenced by a comment on the same line (or on a standalone
comment line directly above)::

    buf = np.empty_like(f)  # repro: allow[REP001] -- cold fallback after migration

The reason string after ``--`` is **mandatory**: a suppression without
one (or naming an unknown rule) is itself reported as ``REP000`` and
cannot be suppressed.  A suppression whose rule ran but produced **no**
finding on the covered line is also reported as ``REP000`` ("unused
suppression"), so allows cannot rot in place once the code they excuse
is gone.  This keeps every exception in the codebase self-documenting.
"""

from __future__ import annotations

import abc
import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Iterator

#: Rule id reserved for problems with the suppression comments themselves.
SUPPRESSION_RULE = "REP000"

_RULE_ID_RE = re.compile(r"^REP\d{3}$")
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)
@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # posix path relative to the scan root
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    suppressed: bool = False
    suppress_reason: str | None = None

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...] -- reason`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str


@dataclass
class FileContext:
    """Everything a checker needs about one source file."""

    path: Path  # absolute
    rel_path: str  # posix, relative to the scan root
    source: str
    tree: ast.Module

    @property
    def module_parts(self) -> tuple[str, ...]:
        """Path components with the ``.py`` suffix stripped from the last."""
        parts = Path(self.rel_path).parts
        return parts[:-1] + (Path(self.rel_path).stem,)


class Checker(abc.ABC):
    """One static rule.  Subclasses set ``rule`` / ``title`` and register
    themselves with :func:`register_checker`."""

    #: Rule id, e.g. ``"REP001"``.
    rule: ClassVar[str] = ""
    #: One-line human description shown by ``--list-rules``.
    title: ClassVar[str] = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this checker runs on *ctx* at all (path-scoped rules
        override this)."""
        return True

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (suppressions are applied by the
        driver, not here)."""

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class ProjectContext:
    """Every parsed file of one analysis run, for project-level rules."""

    root: Path
    files: list[FileContext]
    _callgraph: object = field(default=None, repr=False, compare=False)

    @property
    def callgraph(self):
        """The whole-program :class:`repro.analysis.flow.CallGraph`,
        built on first access and shared by every project checker."""
        if self._callgraph is None:
            from repro.analysis.flow import CallGraph  # lazy: heavy pass

            self._callgraph = CallGraph.build(self.files)
        return self._callgraph


class ProjectChecker(Checker):
    """A rule that needs to see all files at once (call-graph rules).

    ``applies_to`` keeps its per-file meaning — it scopes which files
    the rule may *report into* (and whether it runs at all); the checker
    still sees the full :class:`ProjectContext` so chains may pass
    through out-of-scope modules.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Project rules produce nothing per-file; the driver calls
        :meth:`check_project` instead."""
        return iter(())

    @abc.abstractmethod
    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Yield findings over the whole parsed tree."""

    def scoped_paths(self, project: ProjectContext) -> set[str]:
        """rel_paths of the files this rule reports into."""
        return {c.rel_path for c in project.files if self.applies_to(c)}


_CHECKERS: dict[str, type[Checker]] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator: add *cls* to the rule registry under its id."""
    if not _RULE_ID_RE.match(cls.rule or ""):
        raise ValueError(f"checker {cls.__name__} needs a REPnnn rule id")
    if cls.rule == SUPPRESSION_RULE:
        raise ValueError(f"{SUPPRESSION_RULE} is reserved for bad suppressions")
    if cls.rule in _CHECKERS and _CHECKERS[cls.rule] is not cls:
        raise ValueError(f"rule {cls.rule} is already registered")
    _CHECKERS[cls.rule] = cls
    return cls


def registered_rules() -> dict[str, str]:
    """``rule id -> title`` for every registered checker, plus REP000."""
    _ensure_checkers_loaded()
    rules = {SUPPRESSION_RULE: "malformed or reason-less suppression comment"}
    for rule_id in sorted(_CHECKERS):
        rules[rule_id] = _CHECKERS[rule_id].title
    return rules


def _ensure_checkers_loaded() -> None:
    # Import for the registration side effect; late to avoid a cycle
    # (checkers import this module).
    from repro.analysis import checkers  # noqa: F401


# ----------------------------------------------------------- suppressions
def parse_suppressions(
    source: str, rel_path: str
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Extract suppression comments and REP000 findings from *source*.

    Returns ``(by_line, errors)`` where *by_line* maps every source line
    covered by a valid suppression (the comment's own line, plus the next
    line when the comment stands alone) to its :class:`Suppression`.
    """
    by_line: dict[int, Suppression] = {}
    errors: list[Finding] = []
    known = set(registered_rules())
    lines = source.splitlines()
    for lineno, col, comment in _iter_comments(source):
        if "repro:" not in comment:
            continue
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            if re.search(r"repro:\s*allow", comment):
                errors.append(
                    Finding(
                        rule=SUPPRESSION_RULE,
                        path=rel_path,
                        line=lineno,
                        col=0,
                        message=(
                            "malformed suppression; expected "
                            "'# repro: allow[REPnnn] -- reason'"
                        ),
                    )
                )
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = (match.group("reason") or "").strip()
        bad = [r for r in rules if r not in known or r == SUPPRESSION_RULE]
        if not rules or bad:
            errors.append(
                Finding(
                    rule=SUPPRESSION_RULE,
                    path=rel_path,
                    line=lineno,
                    col=0,
                    message=(
                        f"suppression names unknown rule(s) {bad or ['<none>']}; "
                        f"known: {sorted(known - {SUPPRESSION_RULE})}"
                    ),
                )
            )
            continue
        if not reason:
            errors.append(
                Finding(
                    rule=SUPPRESSION_RULE,
                    path=rel_path,
                    line=lineno,
                    col=0,
                    message=(
                        f"suppression of {list(rules)} has no reason; append "
                        "'-- <why this exception is sound>'"
                    ),
                )
            )
            continue
        supp = Suppression(line=lineno, rules=rules, reason=reason)
        by_line[lineno] = supp
        text = lines[lineno - 1] if lineno <= len(lines) else ""
        if not text[:col].strip():
            # Standalone comment: covers the statement below the comment
            # block (continuation comment lines are skipped over).
            target = lineno + 1
            while (
                target <= len(lines)
                and lines[target - 1].lstrip().startswith("#")
            ):
                target += 1
            by_line.setdefault(target, supp)
    return by_line, errors


def _iter_comments(source: str) -> Iterator[tuple[int, int, str]]:
    """``(line, col, text)`` of every real comment token in *source* —
    tokenizer-accurate, so '#' inside string literals and docstrings
    never reads as a suppression."""
    readline = iter(source.splitlines(keepends=True)).__next__
    try:
        for tok in tokenize.generate_tokens(readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # unparsable files are reported by analyze_file already


# ----------------------------------------------------------------- driver
@dataclass
class Report:
    """Outcome of one analysis run."""

    root: str
    files_scanned: int
    findings: list[Finding] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.unsuppressed:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts


def iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    yield from sorted(p for p in root.rglob("*.py") if p.is_file())


def _parse_one(
    path: Path, root: Path
) -> tuple[FileContext | None, dict[int, Suppression], list[Finding]]:
    """Parse one file: ``(ctx, suppressions, REP000 findings)``; *ctx*
    is ``None`` (with a parse-error finding) for unparsable files."""
    source = path.read_text(encoding="utf-8")
    rel_path = (
        path.name if path == root else path.relative_to(root).as_posix()
    )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(
            rule=SUPPRESSION_RULE,
            path=rel_path,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 0),
            message=f"file does not parse: {exc.msg}",
        )
        return None, {}, [finding]
    ctx = FileContext(path=path, rel_path=rel_path, source=source, tree=tree)
    suppressions, errors = parse_suppressions(source, rel_path)
    return ctx, suppressions, errors


def analyze_file(
    path: Path, root: Path, rules: Iterable[str] | None = None
) -> list[Finding]:
    """All findings (suppression-resolved) for one file.

    Back-compat single-file entry point: per-file checkers only —
    project rules and unused-suppression detection need the whole tree
    and run in :func:`run_analysis`.
    """
    _ensure_checkers_loaded()
    ctx, suppressions, findings = _parse_one(path, root)
    if ctx is None:
        return findings
    wanted = set(rules) if rules is not None else None
    raw: list[Finding] = []
    for rule_id, cls in sorted(_CHECKERS.items()):
        if wanted is not None and rule_id not in wanted:
            continue
        checker = cls()
        if isinstance(checker, ProjectChecker) or not checker.applies_to(ctx):
            continue
        raw.extend(checker.check(ctx))
    findings.extend(
        _apply_suppression(f, suppressions.get(f.line)) for f in raw
    )
    return findings


def _apply_suppression(
    finding: Finding, supp: Suppression | None
) -> Finding:
    if supp is None or finding.rule not in supp.rules:
        return finding
    return Finding(
        rule=finding.rule,
        path=finding.path,
        line=finding.line,
        col=finding.col,
        message=finding.message,
        suppressed=True,
        suppress_reason=supp.reason,
    )


def run_analysis(
    root: Path | str, rules: Iterable[str] | None = None
) -> Report:
    """Run every (selected) checker over *root* (a file or directory).

    Phases: parse everything, run per-file checkers, run project
    checkers over the whole tree, apply suppressions centrally, then
    report every *unused* suppression (a covered line where the named
    rule ran but found nothing) as ``REP000``.
    """
    _ensure_checkers_loaded()
    root = Path(root)
    if not root.exists():
        raise FileNotFoundError(f"no such file or directory: {root}")
    wanted = set(rules) if rules is not None else None

    contexts: list[FileContext] = []
    suppression_maps: dict[str, dict[int, Suppression]] = {}
    findings: list[Finding] = []
    n_files = 0
    for path in iter_python_files(root):
        n_files += 1
        ctx, suppressions, errors = _parse_one(path, root)
        findings.extend(errors)
        if ctx is None:
            continue
        contexts.append(ctx)
        suppression_maps[ctx.rel_path] = suppressions

    executed: set[str] = set()
    raw: list[Finding] = []
    project: ProjectContext | None = None
    for rule_id, cls in sorted(_CHECKERS.items()):
        if wanted is not None and rule_id not in wanted:
            continue
        checker = cls()
        executed.add(rule_id)
        if isinstance(checker, ProjectChecker):
            if any(checker.applies_to(ctx) for ctx in contexts):
                if project is None:
                    project = ProjectContext(root=root, files=contexts)
                raw.extend(checker.check_project(project))
        else:
            for ctx in contexts:
                if checker.applies_to(ctx):
                    raw.extend(checker.check(ctx))

    # Central suppression application, tracking which allows fired.
    used: set[tuple[str, int, str]] = set()
    for finding in raw:
        supp = suppression_maps.get(finding.path, {}).get(finding.line)
        resolved = _apply_suppression(finding, supp)
        if resolved.suppressed:
            used.add((finding.path, supp.line, finding.rule))
        findings.append(resolved)

    # Unused suppressions: the named rule ran and matched nothing on any
    # line the comment covers.  Gated on *executed* so a --rules subset
    # never flags allows for rules that were not run.
    for rel_path, suppressions in suppression_maps.items():
        seen_lines: set[int] = set()
        for supp in suppressions.values():
            if supp.line in seen_lines:
                continue  # the same comment covers two lines
            seen_lines.add(supp.line)
            stale = [
                r
                for r in supp.rules
                if r in executed and (rel_path, supp.line, r) not in used
            ]
            if stale:
                findings.append(
                    Finding(
                        rule=SUPPRESSION_RULE,
                        path=rel_path,
                        line=supp.line,
                        col=0,
                        message=(
                            f"unused suppression: {', '.join(stale)} "
                            "produced no finding on this line; delete the "
                            "allow (or fix its rule list)"
                        ),
                    )
                )

    findings.sort(key=Finding.sort_key)
    return Report(root=str(root), files_scanned=n_files, findings=findings)
