"""``repro.analysis.flow`` — whole-program call graph and summaries.

Per-file checkers see one :class:`~repro.analysis.core.FileContext` at a
time; the concurrency rules (REP008–REP010) need to reason about what a
function *reaches*, not just what it contains.  This subpackage builds
that view in two layers:

- :mod:`repro.analysis.flow.summaries` condenses every function into a
  :class:`FunctionSummary`: does it allocate, block, await, talk to a
  communicator (with which tag, under which rank condition)?
- :mod:`repro.analysis.flow.callgraph` links the summaries into a
  :class:`CallGraph` by resolving call sites through import maps, module
  locals and ``self.``/``cls.`` method lookup, and offers BFS
  reachability over the resolved edges.

The graph is deliberately *unsound* in the directions Python makes
undecidable — dynamic dispatch through arbitrary attribute chains
(``self.backend.step``), ``getattr``, callables passed as values
(``asyncio.to_thread(fn)`` creates **no** edge) — and sound enough for
the repo's own idioms; docs/STATIC_ANALYSIS.md spells out the limits.
"""

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.summaries import (
    AllocSite,
    BlockSite,
    CallSite,
    CommCall,
    FunctionSummary,
    RankBranch,
    summarize_file,
    tags_unify,
)

__all__ = [
    "AllocSite",
    "BlockSite",
    "CallGraph",
    "CallSite",
    "CommCall",
    "FunctionSummary",
    "RankBranch",
    "summarize_file",
    "tags_unify",
]
