"""Per-function summaries: the facts the project-level rules consume.

One :func:`summarize_file` pass walks a parsed module and condenses every
top-level function and method into a :class:`FunctionSummary` recording

- every call site (with awaited/scheduled flags, for REP009),
- every allocating NumPy call (REP001's detection sets, for REP010),
- every blocking call (``time.sleep``, ``subprocess``, file I/O, for
  REP009),
- every communicator call with its normalized tag and whether it sits
  under a rank-conditional branch (for REP008), and
- rank-conditional ``if`` branches with their collective-call sequences
  (for REP008's order-divergence check).

Nested ``def``s are folded into their enclosing function — the same
jurisdiction REP001 uses — so the call graph stays first-order.

Tag normalization
-----------------
A communicator tag is summarized element-wise: literal constants become
``("c", repr(value))``, anything dynamic becomes the wildcard ``"*"``,
and a tag that is just a forwarded function parameter (the generic
``sendrecv``/``exchange_with_neighbours`` shape) is recorded as
``tag=None`` with ``tag_is_param=True`` so protocol matching can skip
generic forwarders while still letting them satisfy the in-function
mirrored-send exemption.  :func:`tags_unify` is the matching relation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.checkers._astutil import (
    chain_attrs,
    decorator_names,
    dotted_name,
    has_kwarg,
    is_numpy_call,
)
from repro.analysis.checkers.hotpath import (
    ALLOC_CONSTRUCTORS,
    ALLOC_METHODS,
    HOT_DECORATOR,
    OUT_REQUIRED,
)
from repro.analysis.core import FileContext

#: Identifiers treated as "the rank" when deciding whether a branch is
#: rank-conditional (``rank``, ``_rank``, ``my_rank``, ``self.rank`` …).
_RANK_NAME_RE = re.compile(r"^_*\w*rank$")

#: Dotted callables that block the calling thread.
BLOCKING_DOTTED = {
    "time.sleep",
    "os.system",
    "io.open",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
}

#: Bare callables that block (builtins).
BLOCKING_BARE = {"open", "input"}

#: Method names that perform file I/O on path-like receivers.
BLOCKING_METHODS = {"read_text", "read_bytes", "write_text", "write_bytes"}

#: Call wrappers that *schedule* a coroutine rather than awaiting it.
SCHEDULING_CALLS = {"create_task", "ensure_future", "gather", "wait", "as_completed"}

#: Reused from REP002: anything whose name smells like a mutex.
_LOCKLIKE_RE = re.compile(r"lock|mutex|barrier|semaphore", re.IGNORECASE)

#: Communicator collective kinds (must be rank-uniform).
COLLECTIVE_KINDS = ("allgather", "barrier")


@dataclass
class CallSite:
    """One call expression inside a function body."""

    text: str  # dotted callee as written ("self._feq", "np.zeros", "run")
    line: int
    col: int
    awaited: bool = False
    scheduled: bool = False
    bare_expr: bool = False  # the call is a whole Expr statement
    resolved: str | None = None  # qualname, filled by CallGraph


@dataclass(frozen=True)
class AllocSite:
    """A NumPy allocation by REP001's detection sets."""

    line: int
    col: int
    what: str  # e.g. "np.zeros()" or ".astype()"


@dataclass(frozen=True)
class BlockSite:
    """A call that blocks the calling thread."""

    line: int
    col: int
    what: str  # e.g. "time.sleep()"


@dataclass(frozen=True)
class CommCall:
    """One communicator call with its normalized tag."""

    kind: str  # send | recv | sendrecv | allgather | barrier
    line: int
    col: int
    tag: tuple | None  # normalized elements, None = full wildcard
    tag_is_param: bool  # tag is a bare function parameter (forwarder)
    rank_conditional: bool  # under an if/while/ternary testing the rank


@dataclass(frozen=True)
class RankBranch:
    """A rank-conditional ``if`` with the collectives of each branch."""

    line: int
    col: int
    body_collectives: tuple  # ordered (kind, tag) pairs
    else_collectives: tuple


@dataclass
class FunctionSummary:
    """Everything the project rules need to know about one function."""

    qualname: str  # module.[Class.]name
    module: str
    name: str
    class_name: str | None
    path: str  # rel_path of the defining file
    line: int
    is_async: bool
    is_hot: bool
    has_await: bool
    params: tuple[str, ...]
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False, default=None)
    calls: list[CallSite] = field(default_factory=list)
    allocations: list[AllocSite] = field(default_factory=list)
    blocking: list[BlockSite] = field(default_factory=list)
    comm_calls: list[CommCall] = field(default_factory=list)
    rank_branches: list[RankBranch] = field(default_factory=list)
    #: ``(line, col, context text)`` of sync ``with <lock>`` held across an await.
    sync_locks_across_await: list[tuple[int, int, str]] = field(default_factory=list)


def tags_unify(a: tuple | None, b: tuple | None) -> bool:
    """Whether two normalized tags can name the same message."""
    if a is None or b is None:
        return True
    if len(a) != len(b):
        return False
    for ea, eb in zip(a, b):
        if ea == "*" or eb == "*":
            continue
        if ea != eb:
            return False
    return True


def format_tag(tag: tuple | None) -> str:
    """Human form of a normalized tag for messages."""
    if tag is None:
        return "<dynamic>"
    parts = [e[1] if isinstance(e, tuple) else "*" for e in tag]
    return "(" + ", ".join(parts) + ")"


def _mentions_rank(node: ast.AST, tainted: set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and (
            _RANK_NAME_RE.match(sub.id) or sub.id in tainted
        ):
            return True
        if isinstance(sub, ast.Attribute) and _RANK_NAME_RE.match(sub.attr):
            return True
    return False


def _taint_rank_locals(fn: ast.AST) -> set[str]:
    """Local names whose value derives from the rank (fixpoint over
    assignments, tuple targets matched element-wise so ``rank, size =
    comm.rank, comm.size`` taints only ``rank``)."""
    tainted: set[str] = set()
    assignments: list[tuple[ast.AST, ast.AST]] = []  # (target, value)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Tuple)
                    and isinstance(node.value, ast.Tuple)
                    and len(target.elts) == len(node.value.elts)
                ):
                    assignments.extend(zip(target.elts, node.value.elts))
                else:
                    assignments.append((target, node.value))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and node.value:
            assignments.append((node.target, node.value))
        elif isinstance(node, ast.NamedExpr):
            assignments.append((node.target, node.value))
    changed = True
    while changed:
        changed = False
        for target, value in assignments:
            if not _mentions_rank(value, tainted):
                continue
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name) and sub.id not in tainted:
                    tainted.add(sub.id)
                    changed = True
    return tainted


def _is_commish(receiver: ast.AST) -> bool:
    """Heuristic for barrier(): the receiver must look like a communicator."""
    text = dotted_name(receiver) or ""
    return bool(re.search(r"comm|world", text, re.IGNORECASE)) or text in (
        "self",
        "cls",
    )


def _classify_comm(call: ast.Call) -> tuple[str, ast.AST | None] | None:
    """``(kind, tag_node)`` when *call* is a communicator call.

    Arity gates keep ``multiprocessing`` pipe ``conn.send(obj)`` /
    ``conn.recv()`` out of the corpus: the Communicator API always takes
    an explicit tag argument.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    meth = func.attr
    args = call.args
    if meth == "send" and len(args) >= 3:
        return "send", args[1]
    if meth == "recv" and len(args) >= 2:
        return "recv", args[1]
    if meth == "isend" and len(args) >= 3:
        return "isend", args[1]
    if meth == "irecv" and len(args) >= 2:
        return "irecv", args[1]
    if meth == "sendrecv" and len(args) >= 4:
        return "sendrecv", args[3]
    if meth == "allgather" and len(args) >= 2:
        return "allgather", args[1]
    if meth == "barrier" and not args and _is_commish(func.value):
        return "barrier", None
    return None


def _normalize_tag(
    tag_node: ast.AST | None, params: set[str]
) -> tuple[tuple | None, bool]:
    """``(tag, tag_is_param)`` — see the module docstring."""
    if tag_node is None:
        return None, False
    if isinstance(tag_node, ast.Name) and tag_node.id in params:
        return None, True
    if isinstance(tag_node, ast.Tuple):
        elements = []
        for el in tag_node.elts:
            if isinstance(el, ast.Constant):
                elements.append(("c", repr(el.value)))
            else:
                elements.append("*")
        return tuple(elements), False
    if isinstance(tag_node, ast.Constant):
        return (("c", repr(tag_node.value)),), False
    return None, False


def _alloc_of(call: ast.Call) -> str | None:
    """REP001's allocation classification, reused verbatim."""
    ctor = is_numpy_call(call, ALLOC_CONSTRUCTORS)
    if ctor is not None:
        return f"{ctor}()"
    ufunc = is_numpy_call(call, OUT_REQUIRED)
    if ufunc is not None and not has_kwarg(call, "out"):
        return f"{ufunc}() without out="
    attrs = chain_attrs(call.func)
    if attrs and attrs[-1] in ALLOC_METHODS:
        return f".{attrs[-1]}()"
    return None


def _blocking_of(call: ast.Call) -> str | None:
    dotted = dotted_name(call.func)
    if dotted in BLOCKING_DOTTED:
        return f"{dotted}()"
    if isinstance(call.func, ast.Name) and call.func.id in BLOCKING_BARE:
        return f"{call.func.id}()"
    if isinstance(call.func, ast.Attribute) and call.func.attr in BLOCKING_METHODS:
        return f".{call.func.attr}()"
    return None


class _FunctionScanner:
    """One recursive pass over a function body, tracking the enclosing
    rank-conditional state and skipping nested ``def``s' *own* defs
    (their bodies fold into this summary, like REP001)."""

    def __init__(self, summary: FunctionSummary, fn: ast.AST):
        self.summary = summary
        self.params = set(summary.params)
        self.tainted = _taint_rank_locals(fn)
        self.awaited_ids: set[int] = set()
        self.scheduled_ids: set[int] = set()
        self.bare_expr_ids: set[int] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                self.awaited_ids.add(id(node.value))
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                self.bare_expr_ids.add(id(node.value))
            if isinstance(node, ast.Call):
                target = dotted_name(node.func) or ""
                if target.rsplit(".", 1)[-1] in SCHEDULING_CALLS:
                    for arg in node.args:
                        if isinstance(arg, ast.Call):
                            self.scheduled_ids.add(id(arg))

    def _test_is_rank(self, test: ast.AST) -> bool:
        return _mentions_rank(test, self.tainted)

    def scan(self, fn: ast.AST) -> None:
        for stmt in getattr(fn, "body", []):
            self._visit(stmt, rank_cond=False)

    def _visit(self, node: ast.AST, rank_cond: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: its body folds into this summary at the same
            # conditional depth (it may only run when called, but the
            # comm/alloc facts still belong to this function's region).
            for stmt in node.body:
                self._visit(stmt, rank_cond)
            return
        if isinstance(node, ast.If):
            tainted_test = self._test_is_rank(node.test)
            self._visit(node.test, rank_cond)
            if tainted_test:
                self.summary.rank_branches.append(
                    RankBranch(
                        line=node.lineno,
                        col=node.col_offset,
                        body_collectives=tuple(self._collectives(node.body)),
                        else_collectives=tuple(self._collectives(node.orelse)),
                    )
                )
            for stmt in node.body:
                self._visit(stmt, rank_cond or tainted_test)
            for stmt in node.orelse:
                self._visit(stmt, rank_cond or tainted_test)
            return
        if isinstance(node, ast.IfExp):
            tainted_test = self._test_is_rank(node.test)
            self._visit(node.test, rank_cond)
            self._visit(node.body, rank_cond or tainted_test)
            self._visit(node.orelse, rank_cond or tainted_test)
            return
        if isinstance(node, ast.While):
            tainted_test = self._test_is_rank(node.test)
            self._visit(node.test, rank_cond)
            for stmt in node.body:
                self._visit(stmt, rank_cond or tainted_test)
            for stmt in node.orelse:
                self._visit(stmt, rank_cond)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, rank_cond)
        if isinstance(node, ast.With) and self.summary.is_async:
            self._check_lock_across_await(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child, rank_cond)

    def _collectives(self, stmts: list[ast.stmt]) -> list[tuple]:
        """Ordered ``(kind, tag)`` of every collective in *stmts*."""
        out: list[tuple] = []

        def rec(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return
            if isinstance(node, ast.Call):
                comm = _classify_comm(node)
                if comm is not None and comm[0] in COLLECTIVE_KINDS:
                    tag, _ = _normalize_tag(comm[1], self.params)
                    out.append((comm[0], tag))
            for child in ast.iter_child_nodes(node):
                rec(child)

        for stmt in stmts:
            rec(stmt)
        return out

    def _record_call(self, call: ast.Call, rank_cond: bool) -> None:
        comm = _classify_comm(call)
        if comm is not None:
            kind, tag_node = comm
            tag, is_param = _normalize_tag(tag_node, self.params)
            self.summary.comm_calls.append(
                CommCall(
                    kind=kind,
                    line=call.lineno,
                    col=call.col_offset,
                    tag=tag,
                    tag_is_param=is_param,
                    rank_conditional=rank_cond,
                )
            )
        alloc = _alloc_of(call)
        if alloc is not None:
            self.summary.allocations.append(
                AllocSite(line=call.lineno, col=call.col_offset, what=alloc)
            )
        blocking = _blocking_of(call)
        if blocking is not None:
            self.summary.blocking.append(
                BlockSite(line=call.lineno, col=call.col_offset, what=blocking)
            )
        text = dotted_name(call.func)
        if text is not None:
            self.summary.calls.append(
                CallSite(
                    text=text,
                    line=call.lineno,
                    col=call.col_offset,
                    awaited=id(call) in self.awaited_ids,
                    scheduled=id(call) in self.scheduled_ids,
                    bare_expr=id(call) in self.bare_expr_ids,
                )
            )

    def _check_lock_across_await(self, node: ast.With) -> None:
        for item in node.items:
            text = ast.unparse(item.context_expr)
            if not _LOCKLIKE_RE.search(text):
                continue
            if any(
                isinstance(sub, ast.Await)
                for stmt in node.body
                for sub in _walk_no_defs(stmt)
            ):
                self.summary.sync_locks_across_await.append(
                    (node.lineno, node.col_offset, text)
                )
            break


def _walk_no_defs(node: ast.AST):
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield from _walk_no_defs(child)


def _summarize_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    module: str,
    class_name: str | None,
    path: str,
) -> FunctionSummary:
    qual = (
        f"{module}.{class_name}.{fn.name}" if class_name else f"{module}.{fn.name}"
    )
    args = fn.args
    params = tuple(
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    )
    summary = FunctionSummary(
        qualname=qual,
        module=module,
        name=fn.name,
        class_name=class_name,
        path=path,
        line=fn.lineno,
        is_async=isinstance(fn, ast.AsyncFunctionDef),
        is_hot=HOT_DECORATOR in decorator_names(fn),
        has_await=any(isinstance(n, ast.Await) for n in ast.walk(fn)),
        params=params,
        node=fn,
    )
    _FunctionScanner(summary, fn).scan(fn)
    return summary


def summarize_file(
    ctx: FileContext, module: str
) -> tuple[list[FunctionSummary], dict[str, list[str]]]:
    """Summaries for every top-level function and method in *ctx*, plus
    ``class name -> textual base names`` for method resolution."""
    summaries: list[FunctionSummary] = []
    class_bases: dict[str, list[str]] = {}
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summaries.append(
                _summarize_function(
                    node, module=module, class_name=None, path=ctx.rel_path
                )
            )
        elif isinstance(node, ast.ClassDef):
            class_bases[node.name] = [
                b for b in (dotted_name(base) for base in node.bases) if b
            ]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    summaries.append(
                        _summarize_function(
                            item,
                            module=module,
                            class_name=node.name,
                            path=ctx.rel_path,
                        )
                    )
    return summaries, class_bases
