"""Project-wide call graph over :class:`FunctionSummary` nodes.

Resolution covers the repo's static idioms:

- bare names: same-module top-level functions, then the file's import
  map (``from repro.api import run`` makes ``run(...)`` an edge to
  ``repro.api.run``);
- ``self.x(...)`` / ``cls.x(...)``: methods of the enclosing class,
  then base classes (by textual base name, transitively within the
  scanned tree);
- dotted names: the leftmost segment through the import map
  (``halo.exchange_f`` after ``from repro.parallel import halo``), with
  fully-qualified spellings accepted as-is;
- calls to a scanned class resolve to its ``__init__``.

Everything else — arbitrary attribute chains (``self.backend.step``),
``getattr``, callables passed as values — stays unresolved: a
documented soundness limit, not a bug (see docs/STATIC_ANALYSIS.md).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Callable, Iterable, Iterator

from repro.analysis.core import FileContext
from repro.analysis.flow.summaries import CallSite, FunctionSummary, summarize_file


def module_name(rel_path: str) -> str:
    """Dotted module for a scan-relative path; a leading ``src/`` is
    dropped so scans rooted at the repo root and at ``src/`` agree."""
    parts = list(PurePosixPath(rel_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _import_map(tree: ast.Module, module: str, is_package: bool) -> dict[str, str]:
    """Local binding -> fully-qualified dotted name for one file."""
    imports: dict[str, str] = {}
    pkg_parts = module.split(".") if is_package else module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base else alias.name
    return imports


@dataclass
class _ModuleInfo:
    module: str
    rel_path: str
    imports: dict[str, str]
    class_bases: dict[str, list[str]]


@dataclass
class CallGraph:
    """Resolved call graph for one analysis run."""

    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: class qualname -> {method name -> function qualname}
    methods: dict[str, dict[str, str]] = field(default_factory=dict)
    #: class qualname -> resolved base class qualnames
    bases: dict[str, list[str]] = field(default_factory=dict)
    modules: dict[str, _ModuleInfo] = field(default_factory=dict)

    @classmethod
    def build(cls, files: Iterable[FileContext]) -> "CallGraph":
        graph = cls()
        infos: list[tuple[FileContext, _ModuleInfo]] = []
        for ctx in files:
            module = module_name(ctx.rel_path)
            is_package = PurePosixPath(ctx.rel_path).name == "__init__.py"
            info = _ModuleInfo(
                module=module,
                rel_path=ctx.rel_path,
                imports=_import_map(ctx.tree, module, is_package),
                class_bases={},
            )
            summaries, class_bases = summarize_file(ctx, module)
            info.class_bases = class_bases
            graph.modules[module] = info
            infos.append((ctx, info))
            for summary in summaries:
                graph.functions[summary.qualname] = summary
                if summary.class_name:
                    class_qual = f"{module}.{summary.class_name}"
                    graph.methods.setdefault(class_qual, {})[
                        summary.name
                    ] = summary.qualname
        # Resolve textual base names to class qualnames.
        for ctx, info in infos:
            for class_name, base_texts in info.class_bases.items():
                class_qual = f"{info.module}.{class_name}"
                graph.methods.setdefault(class_qual, {})
                resolved: list[str] = []
                for text in base_texts:
                    base_qual = graph._resolve_class(text, info)
                    if base_qual is not None:
                        resolved.append(base_qual)
                graph.bases[class_qual] = resolved
        # Resolve every call site.
        for summary in graph.functions.values():
            info = graph.modules[summary.module]
            for call in summary.calls:
                call.resolved = graph._resolve_call(summary, call, info)
        return graph

    # ------------------------------------------------------------ resolution
    def _resolve_class(self, text: str, info: _ModuleInfo) -> str | None:
        if "." not in text:
            local = f"{info.module}.{text}"
            if local in self.methods:
                return local
            qual = info.imports.get(text)
            return qual if qual in self.methods else None
        head, rest = text.split(".", 1)
        root = info.imports.get(head)
        if root is not None:
            qual = f"{root}.{rest}"
            if qual in self.methods:
                return qual
        return text if text in self.methods else None

    def _method_on(self, class_qual: str, name: str) -> str | None:
        """Look *name* up on the class, then its (scanned) bases."""
        seen: set[str] = set()
        queue = deque([class_qual])
        while queue:
            cq = queue.popleft()
            if cq in seen:
                continue
            seen.add(cq)
            qual = self.methods.get(cq, {}).get(name)
            if qual is not None:
                return qual
            queue.extend(self.bases.get(cq, ()))
        return None

    def _resolve_call(
        self, caller: FunctionSummary, call: CallSite, info: _ModuleInfo
    ) -> str | None:
        parts = call.text.split(".")
        if parts[0] in ("self", "cls") and caller.class_name:
            if len(parts) != 2:
                return None  # self.a.b(...): dynamic dispatch, unresolved
            class_qual = f"{caller.module}.{caller.class_name}"
            return self._method_on(class_qual, parts[1])
        if len(parts) == 1:
            name = parts[0]
            local = f"{caller.module}.{name}"
            if local in self.functions:
                return local
            qual = info.imports.get(name)
            if qual is None:
                return None
            return self._as_callable(qual)
        root = info.imports.get(parts[0])
        if root is not None:
            qual = ".".join([root, *parts[1:]])
            resolved = self._as_callable(qual)
            if resolved is not None:
                return resolved
        return self._as_callable(call.text)

    def _as_callable(self, qual: str) -> str | None:
        if qual in self.functions:
            return qual
        if qual in self.methods:  # instantiating a scanned class
            return self.methods[qual].get("__init__")
        return None

    # ---------------------------------------------------------- reachability
    def reachable_calls(
        self,
        root: str,
        *,
        enter: Callable[[FunctionSummary], bool] | None = None,
    ) -> Iterator[tuple[CallSite, FunctionSummary, tuple[str, ...]]]:
        """BFS over resolved edges from *root* (a function qualname).

        Yields ``(first_site, callee, chain)`` for every function
        reachable through resolved calls, where *first_site* is the call
        site **in the root function** that begins the chain (so findings
        can anchor where a suppression is actionable) and *chain* is the
        qualname path from root to callee.  *enter* gates traversal
        *into* a yielded callee (it is yielded either way); each callee
        is yielded once, via its first-discovered chain.
        """
        start = self.functions.get(root)
        if start is None:
            return
        visited: set[str] = {root}
        queue: deque[
            tuple[FunctionSummary, CallSite | None, tuple[str, ...]]
        ] = deque([(start, None, (root,))])
        while queue:
            current, first_site, chain = queue.popleft()
            for call in current.calls:
                if call.resolved is None or call.resolved in visited:
                    continue
                callee = self.functions.get(call.resolved)
                if callee is None:
                    continue
                visited.add(call.resolved)
                site = first_site if first_site is not None else call
                yield site, callee, chain + (call.resolved,)
                if enter is None or enter(callee):
                    queue.append((callee, site, chain + (call.resolved,)))
