"""Report rendering for the analysis suite.

The JSON shape is a stable contract (``SCHEMA_VERSION``) pinned by the
golden test in ``tests/analysis/test_json_schema.py`` so future tooling
(CI annotators, trend dashboards) can parse reports without chasing the
checker implementations.
"""

from __future__ import annotations

import json

from repro.analysis.core import Report, registered_rules

#: Bump only with a corresponding golden-test update.
SCHEMA_VERSION = 1


def render_text(report: Report, *, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.format() for f in report.unsuppressed]
    if verbose:
        lines.extend(f.format() for f in report.suppressed)
    counts = report.counts_by_rule()
    total = len(report.unsuppressed)
    summary = (
        f"{report.files_scanned} files scanned: "
        + (
            ", ".join(f"{r}={n}" for r, n in sorted(counts.items()))
            if counts
            else "clean"
        )
        + f" ({total} finding{'s' if total != 1 else ''}, "
        f"{len(report.suppressed)} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """Machine-readable report (schema pinned by the golden test)."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro.analysis",
        "root": report.root,
        "files_scanned": report.files_scanned,
        "rules": registered_rules(),
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
                "suppress_reason": f.suppress_reason,
            }
            for f in report.findings
        ],
        "summary": {
            "total": len(report.findings),
            "unsuppressed": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
            "by_rule": report.counts_by_rule(),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=False)
