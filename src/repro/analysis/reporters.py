"""Report rendering for the analysis suite.

The JSON shape is a stable contract (``SCHEMA_VERSION``) pinned by the
golden test in ``tests/analysis/test_json_schema.py`` so future tooling
(CI annotators, trend dashboards) can parse reports without chasing the
checker implementations.  The SARIF 2.1.0 rendering is pinned the same
way (``SARIF_VERSION``, ``golden_report.sarif``) — CI uploads it as an
artifact so findings can annotate PRs.
"""

from __future__ import annotations

import json

from repro.analysis.core import Finding, Report, registered_rules

#: Bump only with a corresponding golden-test update.
SCHEMA_VERSION = 1

#: The SARIF spec revision the ``--format sarif`` output conforms to.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(report: Report, *, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.format() for f in report.unsuppressed]
    if verbose:
        lines.extend(f.format() for f in report.suppressed)
    counts = report.counts_by_rule()
    total = len(report.unsuppressed)
    summary = (
        f"{report.files_scanned} files scanned: "
        + (
            ", ".join(f"{r}={n}" for r, n in sorted(counts.items()))
            if counts
            else "clean"
        )
        + f" ({total} finding{'s' if total != 1 else ''}, "
        f"{len(report.suppressed)} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """Machine-readable report (schema pinned by the golden test)."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro.analysis",
        "root": report.root,
        "files_scanned": report.files_scanned,
        "rules": registered_rules(),
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
                "suppress_reason": f.suppress_reason,
            }
            for f in report.findings
        ],
        "summary": {
            "total": len(report.findings),
            "unsuppressed": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
            "by_rule": report.counts_by_rule(),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def _sarif_result(finding: Finding) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.suppressed:
        # Presence of a non-empty suppressions array marks the result
        # suppressed in SARIF; viewers hide it but keep the record.
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": finding.suppress_reason or "",
            }
        ]
    return result


def render_sarif(report: Report) -> str:
    """SARIF 2.1.0 report (schema pinned by the golden test).

    Every finding becomes a ``result``; in-source suppressions are
    carried as SARIF suppressions so annotators show only live findings
    while the suppressed ones stay auditable.
    """
    doc = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {"text": title},
                            }
                            for rule_id, title in registered_rules().items()
                        ],
                    }
                },
                "results": [_sarif_result(f) for f in report.findings],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False)
