"""Small AST helpers shared by the checkers."""

from __future__ import annotations

import ast

#: Spellings of the numpy module accepted as a call root.  ``xp`` is the
#: conventional local binding of the array-API namespace handle
#: (:mod:`repro.lbm.backends.xp`) — under the default NumPy binding it
#: has identical allocation/dtype semantics, so the allocation and dtype
#: rules police it the same way.
NUMPY_ALIASES = ("np", "numpy", "xp")


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> str | None:
    """Leftmost ``Name`` id of an attribute/subscript/call chain
    (``self`` for ``self._world.channels[k]``), else ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def chain_attrs(node: ast.AST) -> tuple[str, ...]:
    """All attribute segments of a chain, left to right (subscripts and
    calls are transparent): ``self._world.channels[k].put`` ->
    ``("_world", "channels", "put")``."""
    parts: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            node = node.func
    return tuple(reversed(parts))


def has_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def is_numpy_call(call: ast.Call, names: set[str]) -> str | None:
    """If *call* is ``np.<fn>(...)``/``numpy.<fn>(...)`` with ``fn`` in
    *names*, return the dotted name, else ``None``."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    for alias in NUMPY_ALIASES:
        prefix = alias + "."
        if dotted.startswith(prefix) and dotted[len(prefix):] in names:
            return dotted
    return None


def decorator_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Terminal names of each decorator (``hot_path`` for both
    ``@hot_path`` and ``@util.hotpath.hot_path``)."""
    names = []
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted:
            names.append(dotted.rsplit(".", 1)[-1])
    return names
