"""REP005 — file writes must go through the atomic-write helpers.

A torn write is how a checkpoint (or an exported result) turns into a
file that parses halfway: the process died, the power went, the disk
filled — and the bytes on disk are a prefix of what was meant.
:mod:`repro.ckpt.io` provides the discipline (tempfile in the
destination directory + flush + fsync + ``os.replace`` + directory
fsync), and this rule makes it the only way the library puts bytes on
disk.

Flagged everywhere except the allowlisted modules:

- ``open(...)`` / ``*.open(...)`` with a literal write-capable mode —
  any mode containing ``w``, ``a``, ``x`` or ``+`` (so ``"r+b"`` in-place
  edits count too);
- ``*.write_text(...)`` / ``*.write_bytes(...)`` (``pathlib`` one-shots);
- ``np.save`` / ``np.savez`` / ``np.savez_compressed`` and ``*.tofile``
  (numpy writers that open the path themselves).

Read-mode opens and writes to already-open handles are not flagged —
the rule polices who *creates* the file, not who fills it.  Allowlisted:
``repro/ckpt/io.py`` (the helpers themselves) and ``repro/obs/sink.py``
(a streaming JSONL sink appends events as they happen; there is no
final rename point for an unbounded stream, and a truncated trace tail
is recoverable by design).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._astutil import dotted_name
from repro.analysis.core import Checker, FileContext, Finding, register_checker

#: Modules allowed to call raw file-writing primitives.
ALLOWED_MODULES = frozenset(
    {
        "repro/ckpt/io.py",
        "repro/obs/sink.py",
    }
)

#: Dotted-suffix method names that write a file they open themselves.
BANNED_METHOD_SUFFIXES = {
    "write_text": "use repro.ckpt.io.atomic_write_text",
    "write_bytes": "use repro.ckpt.io.atomic_write_bytes",
    "tofile": "use repro.ckpt.io.atomic_open and array.tofile(handle)",
}

#: numpy module-level writers.
BANNED_NUMPY_CALLS = {
    "save": "use repro.ckpt.io.atomic_savez",
    "savez": "use repro.ckpt.io.atomic_savez",
    "savez_compressed": "use repro.ckpt.io.atomic_savez",
}

_WRITE_MODE_CHARS = set("wax+")


def _literal_mode(node: ast.Call, mode_pos: int) -> str | None:
    """The call's ``mode`` argument if it is a string literal: positional
    index *mode_pos* (1 for builtin ``open(file, mode)``, 0 for
    ``Path.open(mode)``) or the ``mode=`` keyword."""
    candidates: list[ast.expr] = []
    if len(node.args) > mode_pos:
        candidates.append(node.args[mode_pos])
    candidates.extend(
        kw.value for kw in node.keywords if kw.arg == "mode"
    )
    for expr in candidates:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
    return None


def _is_write_mode(mode: str) -> bool:
    return bool(_WRITE_MODE_CHARS.intersection(mode))


@register_checker
class AtomicWriteChecker(Checker):
    rule = "REP005"
    title = "file writes go through repro.ckpt.io atomic helpers"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.rel_path not in ALLOWED_MODULES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        dotted = dotted_name(func)
        if isinstance(func, ast.Attribute):
            # Method call on any expression — `Path(p).open(...)` and
            # `arr.tofile(...)` have no plain dotted chain, only a tail.
            tail = func.attr
            is_method = True
            display = dotted or f"<expr>.{tail}"
        elif isinstance(func, ast.Name):
            tail = func.id
            is_method = False
            display = tail
        else:
            return

        if tail == "open":
            # Builtin open() and every .open() method (pathlib mirrors the
            # builtin's signature); atomic_open never collides — the rule
            # only fires on literal write modes and atomic_open's second
            # positional IS its mode.
            if display.endswith("atomic_open"):
                return
            mode = _literal_mode(node, 0 if is_method else 1)
            if mode is not None and _is_write_mode(mode):
                yield self.finding(
                    ctx,
                    node,
                    f"{display}(..., {mode!r}) writes in place; a crash "
                    "mid-write leaves a torn file — use "
                    "repro.ckpt.io.atomic_open (tempfile + fsync + rename)",
                )
            return

        if is_method:
            why = BANNED_METHOD_SUFFIXES.get(tail)
            if why is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"call to {display}() writes in place: {why}",
                )
                return

        why = BANNED_NUMPY_CALLS.get(tail)
        if (
            why is not None
            and dotted is not None
            and dotted.split(".")[0] in ("np", "numpy")
        ):
            yield self.finding(
                ctx,
                node,
                f"call to {dotted}() writes in place: {why}",
            )
