"""REP001 — no allocation inside ``@hot_path`` functions.

The fused backend's contract (PR 1) is that the steady-state step loop
performs **no full-grid allocation**: every kernel writes through the
scratch pool preallocated in ``__init__``.  The tracemalloc test pins
this at runtime for the paths it runs; this rule pins it for every line
of every function carrying the :func:`repro.util.hotpath.hot_path`
marker, which is how fused-backend hot paths are registered.

Flagged inside a hot function (and its nested helpers):

- allocating NumPy constructors/copies (``np.zeros``, ``np.empty``,
  ``np.array``, ``np.concatenate``, ``np.where``, the ``*_like``
  family, …);
- NumPy ufunc/reduction calls **without** an ``out=`` argument
  (``np.add(a, b)`` allocates; ``np.add(a, b, out=c)`` does not);
- allocating array methods: ``.copy()``, ``.astype()``, ``.flatten()``,
  ``.tolist()``.

Views (``.reshape``, ``.view``, slicing) and in-place operators
(``*=``, ``+=``) are the sanctioned idioms and pass.  Deliberate cold
fallbacks (e.g. rebuilding a buffer after plane migration) must carry a
reasoned suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._astutil import (
    chain_attrs,
    decorator_names,
    has_kwarg,
    is_numpy_call,
)
from repro.analysis.core import Checker, FileContext, Finding, register_checker

#: NumPy callables that always allocate a fresh array.
ALLOC_CONSTRUCTORS = {
    "zeros", "ones", "empty", "full",
    "zeros_like", "ones_like", "empty_like", "full_like",
    "array", "asarray", "asanyarray", "ascontiguousarray", "copy",
    "arange", "linspace", "meshgrid", "indices",
    "concatenate", "stack", "vstack", "hstack", "dstack", "column_stack",
    "tile", "repeat", "pad", "where", "roll", "einsum", "outer", "kron",
}

#: NumPy ufuncs/reductions that allocate unless given ``out=``.
OUT_REQUIRED = {
    "add", "subtract", "multiply", "divide", "true_divide", "floor_divide",
    "matmul", "dot", "maximum", "minimum", "clip", "abs", "absolute",
    "negative", "exp", "log", "sqrt", "square", "power", "tanh", "cos",
    "sin", "sum", "prod", "cumsum", "mean", "take",
}

#: ndarray methods that copy.
ALLOC_METHODS = {"copy", "astype", "flatten", "tolist"}

HOT_DECORATOR = "hot_path"


@register_checker
class HotPathAllocChecker(Checker):
    rule = "REP001"
    title = "no allocating numpy call inside an @hot_path function"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if HOT_DECORATOR not in decorator_names(fn):
                continue
            yield from self._check_hot_function(ctx, fn)

    def _check_hot_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            ctor = is_numpy_call(node, ALLOC_CONSTRUCTORS)
            if ctor is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"hot path '{fn.name}' calls allocating constructor "
                    f"{ctor}(); preallocate scratch in __init__ instead",
                )
                continue
            ufunc = is_numpy_call(node, OUT_REQUIRED)
            if ufunc is not None and not has_kwarg(node, "out"):
                yield self.finding(
                    ctx,
                    node,
                    f"hot path '{fn.name}' calls {ufunc}() without out=; "
                    "the result is a fresh full-grid temporary",
                )
                continue
            attrs = chain_attrs(node.func)
            if attrs and attrs[-1] in ALLOC_METHODS:
                method = attrs[-1]
                yield self.finding(
                    ctx,
                    node,
                    f"hot path '{fn.name}' calls .{method}(), which copies; "
                    "use a view or a preallocated buffer",
                )
