"""REP002 — no unguarded writes to cross-rank shared state.

The load balancer (PR 2's conservation-through-migration test, the
decision-parity properties) is only sound if ranks exchange state
exclusively through the sanctioned channels: the communicator's
send/recv/allgather, the halo exchange, and plane migration.  A rank
that writes directly into an object another rank can see — a closure
variable of the SPMD launcher, a parameter array it does not own, the
``_World`` mailbox fabric — bypasses both the protocol's determinism and
the conservation bookkeeping.

Within ``repro/parallel/`` this rule flags:

- stores (``x[...] = v``, ``x.attr = v``, augmented forms) whose root is
  **not** ``self`` and **not** a local binding created inside the
  current function — i.e. writes through parameters, closure variables,
  or module globals;
- calls to known container mutators (``.append``, ``.put``,
  ``.update``, …) on such roots;
- any store or mutator call whose attribute chain passes through the
  shared mailbox fabric (``_world`` / ``world`` / ``channels`` /
  ``barrier``), even when rooted at ``self``.

Exempt:

- ``__init__`` / ``__post_init__`` bodies (construction happens-before
  the object is shared with other rank threads);
- code inside a ``with`` block whose context expression names a lock,
  mutex or barrier;
- the sanctioned transport/halo APIs listed in :data:`SANCTIONED`
  (their interior writes *are* the protocol: the mailbox ``Queue`` is
  internally locked, and the halo exchanger filling its caller's ghost
  planes is the API's contract).

Anything else needs a reasoned ``# repro: allow[REP002] -- ...``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.checkers._astutil import chain_attrs, root_name
from repro.analysis.core import Checker, FileContext, Finding, register_checker

#: Attribute segments that identify the shared mailbox fabric.
SHARED_FABRIC_ATTRS = {"_world", "world", "channels", "barrier"}

#: Container methods that mutate their receiver.
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear",
    "update", "setdefault", "add", "discard", "put", "put_nowait",
}

#: ``rel_path -> function qualnames`` allowed to write shared state:
#: the cross-rank APIs themselves.
SANCTIONED: dict[str, frozenset[str]] = {
    "repro/parallel/threads.py": frozenset(
        {"ThreadCommunicator.send", "ThreadCommunicator.isend"}
    ),
    "repro/parallel/halo.py": frozenset(
        {
            "HaloExchanger.exchange_f",
            "HaloExchanger.exchange_scalar",
            "HaloExchanger._exchange_f_y",
            "HaloExchanger._exchange_scalar_y",
        }
    ),
    "repro/parallel/migration.py": frozenset(
        {"pack_planes", "unpack_planes"}
    ),
    "repro/parallel/process.py": frozenset(
        {"_Link.pull_bytes", "_rank_entry"}
    ),
}

#: Functions always exempt: they run before the object escapes its
#: constructing thread.
CONSTRUCTOR_NAMES = {"__init__", "__post_init__"}

_LOCKLIKE_RE = re.compile(r"lock|mutex|barrier|semaphore", re.IGNORECASE)


def _is_parallel_module(rel_path: str) -> bool:
    return rel_path.startswith("repro/parallel/")


def _locals_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound inside *fn* itself (params + plain-name stores +
    loop/with/except/comprehension targets), excluding nested functions."""
    bound: set[str] = set()
    args = fn.args
    for a in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ):
        bound.add(a.arg)

    declared_nonlocal: set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(child.name)
                continue  # separate scope
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                bound.add(child.id)
            if isinstance(child, ast.ExceptHandler) and child.name:
                bound.add(child.name)
            if isinstance(child, (ast.Global, ast.Nonlocal)):
                declared_nonlocal.update(child.names)
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            visit(child)

    visit(fn)
    return bound - declared_nonlocal


def _params_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


class _FunctionScanner(ast.NodeVisitor):
    """Walks one function body, tracking lock-``with`` nesting; nested
    functions are scanned by their own scanner (with their own locals)."""

    def __init__(
        self,
        checker: "SharedWriteChecker",
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
    ):
        self.checker = checker
        self.ctx = ctx
        self.fn = fn
        self.qualname = qualname
        self.locals = _locals_of(fn)
        self.params = _params_of(fn)
        self.lock_depth = 0
        self.findings: list[Finding] = []

    # ------------------------------------------------------------- scopes
    def scan(self) -> list[Finding]:
        for stmt in self.fn.body:
            self.visit(stmt)
        return self.findings

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested(node)

    def _nested(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        sub = _FunctionScanner(
            self.checker, self.ctx, node, f"{self.qualname}.{node.name}"
        )
        sub.lock_depth = self.lock_depth
        self.findings.extend(sub.scan())

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # methods of a nested class get their own top-level pass

    # -------------------------------------------------------------- locks
    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        locked = any(
            _LOCKLIKE_RE.search(ast.dump(item.context_expr))
            for item in node.items
        )
        if locked:
            self.lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self.lock_depth -= 1

    # ------------------------------------------------------------- stores
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        attrs = chain_attrs(node.func)
        if attrs and attrs[-1] in MUTATOR_METHODS:
            receiver = node.func.value if isinstance(
                node.func, ast.Attribute
            ) else node.func
            self._check_shared(node, receiver, f".{attrs[-1]}() call")
        self.generic_visit(node)

    def _check_store(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return  # plain-name rebinding is scope-local
        self._check_shared(target, target, "write")

    def _check_shared(
        self, node: ast.AST, chain: ast.AST, what: str
    ) -> None:
        if self.lock_depth > 0:
            return
        root = root_name(chain)
        if root is None:
            return
        attrs = chain_attrs(chain)
        through_fabric = bool(SHARED_FABRIC_ATTRS.intersection(attrs))
        if root == "self" and not through_fabric:
            return
        if root != "self" and root in self.locals and root not in self.params:
            if not through_fabric:
                return
        kind = (
            "the shared mailbox fabric"
            if through_fabric
            else "a parameter"
            if root in self.params
            else "a closure/global binding"
        )
        self.findings.append(
            self.checker.finding(
                self.ctx,
                node,
                f"{what} through {kind} ({root!r}) in '{self.qualname}': "
                "cross-rank state must go through the halo/migration/"
                "communicator APIs or a lock",
            )
        )


@register_checker
class SharedWriteChecker(Checker):
    rule = "REP002"
    title = "no unguarded cross-rank shared-state writes in repro.parallel"

    def applies_to(self, ctx: FileContext) -> bool:
        return _is_parallel_module(ctx.rel_path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        sanctioned = SANCTIONED.get(ctx.rel_path, frozenset())
        for fn, qualname in _top_level_functions(ctx.tree):
            if fn.name in CONSTRUCTOR_NAMES or qualname in sanctioned:
                continue
            yield from _FunctionScanner(self, ctx, fn, qualname).scan()


def _top_level_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    """Module functions and class methods with their qualnames (nested
    functions are handled inside their parent's scanner)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.name
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, f"{node.name}.{item.name}"
