"""REP009 — asyncio discipline in ``repro.serve``.

The serve layer's latency numbers (BENCH_serve.json) depend on the
event loop never being stalled: one synchronous ``repro.api.run`` on
the loop serializes every concurrent client.  Three shapes are checked
over the call graph:

1. **Blocking call reachable from ``async def``** — ``time.sleep``,
   ``subprocess``, file I/O, or a call chain that reaches
   ``repro.api.run``/``run_batch``, without an executor hop.  The
   sanctioned idiom passes by construction: ``asyncio.to_thread(fn,
   ...)`` passes *fn* by reference, so no call edge exists and the
   sync helper is invisible from the coroutine.
2. **Coroutine called but never awaited** — a bare expression statement
   calling an ``async def`` without ``await``/``create_task``/
   ``ensure_future``/``gather`` silently does nothing.
3. **Sync lock held across ``await``** — ``with <lock-like>:`` whose
   body awaits parks every other task on a thread lock; use
   ``asyncio.Lock`` (``async with``) instead.

Chains may pass through modules outside ``repro.serve`` (the scope
only gates where findings land); unresolved dispatch (callables passed
as values, ``getattr``) is a documented soundness limit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.core import (
    Finding,
    FileContext,
    ProjectChecker,
    ProjectContext,
    register_checker,
)

if TYPE_CHECKING:  # runtime import is lazy: flow imports this package
    from repro.analysis.flow import CallSite, FunctionSummary

#: Scanned functions that block by doing a full solver run, even though
#: their bodies contain no syscall-shaped blocking site.
BLOCKING_QUALNAMES = {"repro.api.run", "repro.api.run_batch"}


@register_checker
class AsyncDisciplineChecker(ProjectChecker):
    rule = "REP009"
    title = "asyncio discipline: no blocking on the event loop, no stray coroutines"

    def applies_to(self, ctx: FileContext) -> bool:
        return "serve" in ctx.module_parts

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        scoped = self.scoped_paths(project)
        graph = project.callgraph
        for summary in graph.functions.values():
            if summary.path not in scoped:
                continue
            if summary.is_async:
                yield from self._check_blocking(graph, summary)
                yield from self._check_locks(summary)
            yield from self._check_stray_coroutines(graph, summary)

    # ------------------------------------------------- blocking reachability
    def _check_blocking(self, graph, summary: FunctionSummary) -> Iterator[Finding]:
        for site in summary.blocking:
            yield Finding(
                rule=self.rule,
                path=summary.path,
                line=site.line,
                col=site.col,
                message=(
                    f"async '{summary.name}' performs blocking {site.what} "
                    "directly on the event loop; move it behind "
                    "asyncio.to_thread() or run_in_executor()"
                ),
            )
        for first_site, callee, chain in graph.reachable_calls(
            summary.qualname, enter=lambda c: not c.is_async
        ):
            if callee.is_async:
                continue  # awaited coroutines are checked on their own
            hop = " -> ".join(q.rsplit(".", 1)[-1] for q in chain)
            if callee.qualname in BLOCKING_QUALNAMES:
                yield self._at(
                    summary,
                    first_site,
                    f"async '{summary.name}' runs the solver synchronously "
                    f"on the event loop via {hop}; wrap the sync call in "
                    "asyncio.to_thread()",
                )
            elif callee.blocking:
                site = callee.blocking[0]
                yield self._at(
                    summary,
                    first_site,
                    f"async '{summary.name}' reaches blocking {site.what} "
                    f"({callee.path}:{site.line}) via {hop} without an "
                    "executor hop",
                )

    # ------------------------------------------------------ stray coroutines
    def _check_stray_coroutines(
        self, graph, summary: FunctionSummary
    ) -> Iterator[Finding]:
        for call in summary.calls:
            if not call.bare_expr or call.awaited or call.scheduled:
                continue
            if call.resolved is None:
                continue
            callee = graph.functions.get(call.resolved)
            if callee is None or not callee.is_async:
                continue
            yield self._at(
                summary,
                call,
                f"coroutine '{callee.name}' is called but never awaited or "
                "scheduled — the call creates a coroutine object and "
                "discards it",
            )

    # ------------------------------------------------------ locks over await
    def _check_locks(self, summary: FunctionSummary) -> Iterator[Finding]:
        for line, col, text in summary.sync_locks_across_await:
            yield Finding(
                rule=self.rule,
                path=summary.path,
                line=line,
                col=col,
                message=(
                    f"sync lock 'with {text}' in async '{summary.name}' is "
                    "held across an await; every other task parks on a "
                    "thread lock — use asyncio.Lock with 'async with'"
                ),
            )

    def _at(
        self, summary: FunctionSummary, site: CallSite, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule,
            path=summary.path,
            line=site.line,
            col=site.col,
            message=message,
        )
