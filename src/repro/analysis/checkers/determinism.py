"""REP003 — every run must be deterministic from its seed.

PR 2's golden-run test hashes the structural fields of a full parallel
trace; it stays green only while nothing in the library consults
ambient entropy.  The codebase's contract (``repro.util.rng``) is that
all randomness flows through an explicit ``numpy.random.Generator``
created by ``make_rng``/``spawn_rngs``, and all timing through
``time.perf_counter`` / ``repro.util.timers`` (monotonic, never used as
a decision input).

Flagged everywhere except the allowlisted plumbing modules:

- ``import random`` / ``from random import ...`` (the stdlib global-state
  generator) and calls through any alias of it;
- calls to ``np.random.*`` / ``numpy.random.*`` (``default_rng``,
  ``seed``, legacy samplers) — use :func:`repro.util.rng.make_rng`;
- ``from numpy import random`` / ``from numpy.random import ...``;
- wall-clock and entropy taps: ``time.time``, ``time.time_ns``,
  ``datetime.now/utcnow/today``, ``os.urandom``, ``uuid.uuid1/uuid4``,
  and any use of ``secrets``.

``time.perf_counter`` and attribute references in annotations
(``np.random.Generator``) are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._astutil import dotted_name
from repro.analysis.core import Checker, FileContext, Finding, register_checker

#: Modules allowed to touch raw RNG / clock primitives: the plumbing the
#: rest of the library is required to go through.
ALLOWED_MODULES = frozenset(
    {
        "repro/util/rng.py",
        "repro/util/timers.py",
    }
)

#: Banned call targets (dotted suffix match on the called name).
BANNED_CALLS = {
    "time.time": "use time.perf_counter (monotonic) or util.timers",
    "time.time_ns": "use time.perf_counter_ns",
    "datetime.now": "wall-clock state breaks trace determinism",
    "datetime.utcnow": "wall-clock state breaks trace determinism",
    "datetime.today": "wall-clock state breaks trace determinism",
    "date.today": "wall-clock state breaks trace determinism",
    "os.urandom": "unseeded entropy; derive from util.rng instead",
    "uuid.uuid1": "host/time dependent; derive ids from the seed",
    "uuid.uuid4": "unseeded entropy; derive ids from the seed",
}

#: Module imports banned outright.
BANNED_IMPORTS = {
    "random": "stdlib global-state RNG; use repro.util.rng.make_rng",
    "secrets": "unseeded entropy source",
}


@register_checker
class DeterminismChecker(Checker):
    rule = "REP003"
    title = "no ambient entropy/clock outside util.rng and util.timers"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.rel_path not in ALLOWED_MODULES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        random_aliases = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    why = BANNED_IMPORTS.get(alias.name)
                    if why is not None:
                        random_aliases.add(alias.asname or alias.name)
                        yield self.finding(
                            ctx, node, f"import of {alias.name!r}: {why}"
                        )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                why = BANNED_IMPORTS.get(mod)
                if why is not None:
                    yield self.finding(
                        ctx, node, f"import from {mod!r}: {why}"
                    )
                elif mod in ("numpy", "numpy.random") and any(
                    a.name == "random" or mod == "numpy.random"
                    for a in node.names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "importing numpy.random directly; route draws "
                        "through repro.util.rng",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, random_aliases)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, random_aliases: set[str]
    ) -> Iterator[Finding]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        for banned, why in BANNED_CALLS.items():
            if dotted == banned or dotted.endswith("." + banned):
                yield self.finding(ctx, node, f"call to {dotted}(): {why}")
                return
        parts = dotted.split(".")
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            yield self.finding(
                ctx,
                node,
                f"direct call to {dotted}(); create generators with "
                "repro.util.rng.make_rng/spawn_rngs so the stream is "
                "seed-reproducible",
            )
        elif parts[0] in random_aliases and len(parts) >= 2:
            yield self.finding(
                ctx,
                node,
                f"call through stdlib random alias ({dotted}); use "
                "repro.util.rng",
            )
