"""REP004 — dtype discipline and observer-default discipline.

Two invariants with the same failure mode (a silent default changing a
numeric contract):

1. **Explicit dtypes.**  Every state array in the solver is float64 by
   contract (the fused/reference differential tests compare at 1e-12,
   and halo/migration payload sizes are budgeted in float64 bytes).
   ``np.zeros(shape)`` happens to default to float64 today, but the
   intent is invisible and one refactor away from a dtype drift — so the
   shape-only constructors (``zeros``/``ones``/``empty``/``full``) and
   ``np.arange`` (whose dtype depends on its *arguments*) must spell it
   out.  ``np.array``/``asarray`` (dtype inferred from data) and the
   ``*_like`` family (dtype inherited) are exempt by design.

2. **Observer defaults.**  Instrumented constructors take an
   ``observer`` parameter.  Its default must be the shared
   ``NULL_OBSERVER`` sentinel (resolved against ``REPRO_OBS_TRACE`` by
   ``repro.obs.resolve_observer``), not ``None``: the null-object
   contract is what lets hot paths guard on a plain ``.enabled``
   attribute instead of a ``None`` check (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._astutil import (
    dotted_name,
    has_kwarg,
    is_numpy_call,
)
from repro.analysis.core import Checker, FileContext, Finding, register_checker

#: Constructors whose dtype is an invisible default unless spelled out.
DTYPE_REQUIRED = {"zeros", "ones", "empty", "full", "arange"}

#: Name a default expression must resolve to for observer parameters.
OBSERVER_DEFAULT = "NULL_OBSERVER"


@register_checker
class DtypeDisciplineChecker(Checker):
    rule = "REP004"
    title = "explicit dtype= on array constructors; observer defaults NULL_OBSERVER"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                ctor = is_numpy_call(node, DTYPE_REQUIRED)
                if ctor is not None and not has_kwarg(node, "dtype"):
                    yield self.finding(
                        ctx,
                        node,
                        f"{ctor}() without an explicit dtype=; the array's "
                        "type is a silent default (state arrays are float64 "
                        "by contract)",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_observer_defaults(ctx, node)

    def _check_observer_defaults(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        args = fn.args
        positional = [*args.posonlyargs, *args.args]
        pos_defaults = args.defaults
        paired = list(
            zip(positional[len(positional) - len(pos_defaults):], pos_defaults)
        )
        paired.extend(
            (a, d)
            for a, d in zip(args.kwonlyargs, args.kw_defaults)
            if d is not None
        )
        for arg, default in paired:
            if arg.arg != "observer":
                continue
            name = dotted_name(default)
            terminal = name.rsplit(".", 1)[-1] if name else None
            if terminal != OBSERVER_DEFAULT:
                got = ast.unparse(default)
                yield self.finding(
                    ctx,
                    default,
                    f"parameter 'observer' of '{fn.name}' defaults to "
                    f"{got!r}; default to NULL_OBSERVER so instrumented "
                    "code never needs a None check",
                )
