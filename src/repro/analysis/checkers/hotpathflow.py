"""REP010 — no allocation transitively reachable from an ``@hot_path``.

REP001 polices the *bodies* of ``@hot_path`` functions; a hot kernel can
still launder an allocation through a cold helper one call away.  This
rule follows the call graph from every hot function into its resolved
callees and flags any allocation (REP001's exact detection sets) found
there.

Division of labour: hot callees are **skipped** — their bodies are
REP001's jurisdiction, so a hot→hot edge never double-reports.  The
finding anchors at the *call site inside the hot function* (not at the
callee's allocation line), which keeps the suppression next to the hot
code that takes responsibility for the cold fallback.

Unresolvable dispatch (``self.backend.step``, callables passed as
values, ``getattr``) produces no edge — a documented soundness limit.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import (
    Finding,
    ProjectChecker,
    ProjectContext,
    register_checker,
)


@register_checker
class HotPathFlowChecker(ProjectChecker):
    rule = "REP010"
    title = "no allocating call transitively reachable from an @hot_path function"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.callgraph
        for summary in graph.functions.values():
            if not summary.is_hot:
                continue
            reported: set[tuple[int, str]] = set()
            for first_site, callee, chain in graph.reachable_calls(
                summary.qualname, enter=lambda c: not c.is_hot
            ):
                if callee.is_hot or not callee.allocations:
                    continue
                key = (first_site.line, callee.qualname)
                if key in reported:
                    continue
                reported.add(key)
                alloc = callee.allocations[0]
                extra = (
                    f" (+{len(callee.allocations) - 1} more)"
                    if len(callee.allocations) > 1
                    else ""
                )
                hop = " -> ".join(q.rsplit(".", 1)[-1] for q in chain)
                yield Finding(
                    rule=self.rule,
                    path=summary.path,
                    line=first_site.line,
                    col=first_site.col,
                    message=(
                        f"hot path '{summary.name}' reaches allocating "
                        f"{alloc.what} at {callee.path}:{alloc.line}{extra} "
                        f"via {hop}; preallocate in __init__ or suppress the "
                        "deliberate cold fallback here"
                    ),
                )
