"""The repo-specific checkers.  Importing this package registers every
rule with :mod:`repro.analysis.core`."""

from repro.analysis.checkers.asyncdiscipline import AsyncDisciplineChecker
from repro.analysis.checkers.atomicwrite import AtomicWriteChecker
from repro.analysis.checkers.backendns import BackendNamespaceChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.dtype import DtypeDisciplineChecker
from repro.analysis.checkers.envaccess import EnvAccessChecker
from repro.analysis.checkers.hotpath import HotPathAllocChecker
from repro.analysis.checkers.hotpathflow import HotPathFlowChecker
from repro.analysis.checkers.sharedwrite import SharedWriteChecker
from repro.analysis.checkers.spmd import SpmdProtocolChecker

__all__ = [
    "AsyncDisciplineChecker",
    "AtomicWriteChecker",
    "BackendNamespaceChecker",
    "DeterminismChecker",
    "DtypeDisciplineChecker",
    "EnvAccessChecker",
    "HotPathAllocChecker",
    "HotPathFlowChecker",
    "SharedWriteChecker",
    "SpmdProtocolChecker",
]
