"""The repo-specific checkers.  Importing this package registers every
rule with :mod:`repro.analysis.core`."""

from repro.analysis.checkers.atomicwrite import AtomicWriteChecker
from repro.analysis.checkers.backendns import BackendNamespaceChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.dtype import DtypeDisciplineChecker
from repro.analysis.checkers.envaccess import EnvAccessChecker
from repro.analysis.checkers.hotpath import HotPathAllocChecker
from repro.analysis.checkers.sharedwrite import SharedWriteChecker

__all__ = [
    "AtomicWriteChecker",
    "BackendNamespaceChecker",
    "DeterminismChecker",
    "DtypeDisciplineChecker",
    "EnvAccessChecker",
    "HotPathAllocChecker",
    "SharedWriteChecker",
]
