"""REP008 — SPMD protocol discipline in ``repro.parallel``.

The paper's correctness argument is a hand-checked message protocol:
every halo/migration ``send`` has a matching ``recv`` on the peer, and
collectives (``allgather``, ``barrier``) are executed by **all** ranks
in the same order.  This rule machine-checks three shapes of that
argument over the whole-program call graph summaries:

1. **Tag mismatch** — a ``send`` whose normalized tag unifies with no
   ``recv`` anywhere in scope (or vice versa) is a message that can
   never be delivered/satisfied.  The nonblocking pair ``isend`` /
   ``irecv`` joins the same corpus (posting is sending; a posted
   receive must still be fed).  Generic forwarders whose tag is a
   bare function parameter (``sendrecv``, ``exchange_with_neighbours``)
   are excluded from the corpus.
2. **Deadlock shape** — a blocking ``recv`` reachable only under a
   rank-conditional branch, with no send in the same function whose tag
   unifies.  The repo's sanctioned idiom is the *mirrored pair*: the
   chain-neighbour exchanges guard both directions with ``left is not
   None`` / ``rank > 0`` style conditions but send and receive the same
   tag family inside one function, so every conditional recv has a
   matching conditional send on the peer.
3. **Collective divergence** — a rank-conditional ``if`` whose branches
   execute different collective sequences (including a collective in
   one branch only): some ranks would enter the collective and the rest
   never would.

Soundness limits: rank-conditionality is detected textually (names
binding/derived from ``rank``) plus assignment taint; early-return rank
guards (``if rank == 0: return``) are invisible, as is any dispatch the
call graph cannot resolve.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.core import (
    Finding,
    FileContext,
    ProjectChecker,
    ProjectContext,
    register_checker,
)

if TYPE_CHECKING:  # runtime import is lazy: flow imports this package
    from repro.analysis.flow import CommCall, FunctionSummary


@register_checker
class SpmdProtocolChecker(ProjectChecker):
    rule = "REP008"
    title = "SPMD protocol: matched send/recv tags, rank-uniform collectives"

    def applies_to(self, ctx: FileContext) -> bool:
        return "parallel" in ctx.module_parts

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        scoped = self.scoped_paths(project)
        graph = project.callgraph
        functions = [
            s for s in graph.functions.values() if s.path in scoped
        ]
        functions.sort(key=lambda s: (s.path, s.line))
        yield from self._check_tag_corpus(functions)
        for summary in functions:
            yield from self._check_conditional_recv(summary)
            yield from self._check_collective_divergence(summary)

    # -------------------------------------------------- 1. tag matching
    def _check_tag_corpus(
        self, functions: "list[FunctionSummary]"
    ) -> Iterator[Finding]:
        from repro.analysis.flow.summaries import format_tag, tags_unify

        sends: list[tuple[FunctionSummary, CommCall]] = []
        recvs: list[tuple[FunctionSummary, CommCall]] = []
        for summary in functions:
            for cc in summary.comm_calls:
                if cc.tag_is_param:
                    continue  # generic forwarder, matched at its call sites
                if cc.kind in ("send", "sendrecv", "isend"):
                    sends.append((summary, cc))
                if cc.kind in ("recv", "sendrecv", "irecv"):
                    recvs.append((summary, cc))
        for summary, cc in sends:
            if not any(tags_unify(cc.tag, r.tag) for _, r in recvs):
                yield self._at(
                    summary,
                    cc,
                    f"send tag {format_tag(cc.tag)} in '{summary.name}' "
                    "unifies with no recv tag anywhere in repro.parallel — "
                    "the message can never be consumed",
                )
        for summary, cc in recvs:
            if not any(tags_unify(cc.tag, s.tag) for _, s in sends):
                yield self._at(
                    summary,
                    cc,
                    f"recv tag {format_tag(cc.tag)} in '{summary.name}' "
                    "unifies with no send tag anywhere in repro.parallel — "
                    "the receive blocks forever",
                )

    # ---------------------------------------------- 2. conditional recv
    def _check_conditional_recv(
        self, summary: "FunctionSummary"
    ) -> Iterator[Finding]:
        from repro.analysis.flow.summaries import format_tag, tags_unify

        sends = [
            cc
            for cc in summary.comm_calls
            if cc.kind in ("send", "sendrecv", "isend")
        ]
        for cc in summary.comm_calls:
            if cc.kind != "recv" or not cc.rank_conditional:
                continue
            if any(tags_unify(cc.tag, s.tag) for s in sends):
                continue  # mirrored-pair idiom: peer runs the same code
            yield self._at(
                summary,
                cc,
                f"blocking recv {format_tag(cc.tag)} in '{summary.name}' is "
                "reachable only under a rank-conditional branch and no send "
                "in this function matches its tag — ranks that skip the "
                "branch leave the sender's peer blocked (deadlock shape)",
            )

    # ----------------------------------------- 3. collective divergence
    def _check_collective_divergence(
        self, summary: "FunctionSummary"
    ) -> Iterator[Finding]:
        for branch in summary.rank_branches:
            if branch.body_collectives == branch.else_collectives:
                continue
            body = self._fmt_seq(branch.body_collectives)
            orelse = self._fmt_seq(branch.else_collectives)
            yield Finding(
                rule=self.rule,
                path=summary.path,
                line=branch.line,
                col=branch.col,
                message=(
                    f"collective calls diverge across this rank-conditional "
                    f"branch in '{summary.name}' (if-branch: {body}; "
                    f"else: {orelse}) — collectives must be executed by all "
                    "ranks in the same order"
                ),
            )

    @staticmethod
    def _fmt_seq(seq: tuple) -> str:
        from repro.analysis.flow.summaries import format_tag

        if not seq:
            return "none"
        return ", ".join(f"{kind}{format_tag(tag)}" for kind, tag in seq)

    def _at(
        self, summary: "FunctionSummary", cc: "CommCall", message: str
    ) -> Finding:
        return Finding(
            rule=self.rule,
            path=summary.path,
            line=cc.line,
            col=cc.col,
            message=message,
        )
