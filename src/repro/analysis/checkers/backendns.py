"""REP007 — portable kernel backends never import numpy directly.

The ``arrayapi`` and ``batched`` backends are written against the
array-API namespace handle from :mod:`repro.lbm.backends.xp` so the
same kernel source can run on NumPy today and an accelerator namespace
(CuPy, torch) tomorrow.  One stray ``import numpy as np`` silently
pins such a module back to the CPU: the code keeps passing every test
under the default binding while the portability contract rots.

Flagged in every module under ``repro/lbm/backends/`` **except** the
explicit allowlist (the classic NumPy backends, the registry/ABC, the
instrumentation proxy, and the namespace shim itself):

- ``import numpy`` / ``import numpy.linalg`` (aliased or not);
- ``from numpy import ...`` / ``from numpy.linalg import ...``.

Portable backend modules call
:func:`repro.lbm.backends.xp.get_namespace` and route every array
operation through the returned handle (conventionally a local ``xp``),
which the allocation/dtype rules police like numpy itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Checker, FileContext, Finding, register_checker

#: The backends subtree the rule patrols.
BACKENDS_PREFIX = "repro/lbm/backends/"

#: Modules under the subtree that legitimately import numpy: the classic
#: NumPy-only backends, the registry (validation arrays), the timing
#: proxy, the package façade, and the namespace shim that *provides* the
#: handle.
ALLOWED_MODULES = frozenset(
    {
        "repro/lbm/backends/__init__.py",
        "repro/lbm/backends/fused.py",
        "repro/lbm/backends/instrumented.py",
        "repro/lbm/backends/reference.py",
        "repro/lbm/backends/registry.py",
        "repro/lbm/backends/xp.py",
    }
)


def _is_numpy_module(name: str | None) -> bool:
    return name is not None and (name == "numpy" or name.startswith("numpy."))


@register_checker
class BackendNamespaceChecker(Checker):
    rule = "REP007"
    title = "portable backends use the array-API namespace handle"

    def applies_to(self, ctx: FileContext) -> bool:
        return (
            ctx.rel_path.startswith(BACKENDS_PREFIX)
            and ctx.rel_path not in ALLOWED_MODULES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_numpy_module(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            f"`import {alias.name}` pins this backend to "
                            "the CPU; bind the array-API namespace via "
                            "repro.lbm.backends.xp.get_namespace instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and _is_numpy_module(node.module):
                    names = ", ".join(a.name for a in node.names)
                    yield self.finding(
                        ctx,
                        node,
                        f"`from {node.module} import {names}` pins this "
                        "backend to the CPU; bind the array-API namespace "
                        "via repro.lbm.backends.xp.get_namespace instead",
                    )
