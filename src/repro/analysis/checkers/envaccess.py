"""REP006 — environment variables are read in one place only.

Every ``REPRO_*`` knob used to be parsed wherever it was consumed —
the backend registry read ``REPRO_LBM_BACKEND``, the observer read
``REPRO_OBS_TRACE``, the checkpoint policy read four ``REPRO_CKPT_*``
variables, each with its own truthiness rules and defaults.  Scattered
parsing is how two modules disagree about what ``REPRO_CKPT_RESUME=On``
means, and how a new variable ships without appearing in any inventory.
:mod:`repro.config` is now the single funnel: it owns the variable
names, the parsing, and the :class:`~repro.config.EnvConfig` snapshot
that :func:`repro.api.run` overlays onto a ``RunSpec``.

Flagged everywhere except ``repro/config.py``:

- any mention of ``os.environ`` (reads, writes, ``.get``, ``in`` tests —
  the attribute access itself is the violation);
- calls to ``os.getenv`` / ``os.putenv`` / ``os.unsetenv``;
- ``from os import environ`` / ``from os import getenv`` (aliased or
  not), which would smuggle the primitives past the dotted-name check.

Modules that need a value import :func:`repro.config.from_env` (or the
``ENV_*`` name constants); entry points that must *publish* discovery
variables for child code use :func:`repro.config.set_discovery_env`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers._astutil import dotted_name
from repro.analysis.core import Checker, FileContext, Finding, register_checker

#: The single module allowed to touch the process environment.
ALLOWED_MODULES = frozenset({"repro/config.py"})

#: ``os`` members that read or mutate the environment.
BANNED_OS_MEMBERS = frozenset({"environ", "environb", "getenv", "putenv", "unsetenv"})


@register_checker
class EnvAccessChecker(Checker):
    rule = "REP006"
    title = "environment access goes through repro.config"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.rel_path not in ALLOWED_MODULES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(ctx, node)

    def _check_attribute(
        self, ctx: FileContext, node: ast.Attribute
    ) -> Iterator[Finding]:
        # Only the innermost `os.<member>` node: `os.environ.get(...)`
        # walks three attribute nodes but is one access.
        if not (
            isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and node.attr in BANNED_OS_MEMBERS
        ):
            return
        dotted = dotted_name(node) or f"os.{node.attr}"
        yield self.finding(
            ctx,
            node,
            f"direct environment access via {dotted}; parse REPRO_* "
            "variables in repro.config (from_env / set_discovery_env) "
            "so every module agrees on names, truthiness and defaults",
        )

    def _check_import(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module != "os":
            return
        for alias in node.names:
            if alias.name in BANNED_OS_MEMBERS:
                yield self.finding(
                    ctx,
                    node,
                    f"`from os import {alias.name}` bypasses repro.config; "
                    "import repro.config.from_env instead",
                )
