"""``repro.analysis`` — AST-based invariant checkers for this repo.

Static shadows of the suite's hardest runtime guarantees: the fused
backend's zero-allocation step (REP001), halo/migration-only cross-rank
state exchange (REP002), seed-determinism (REP003), and dtype/observer
default discipline (REP004).  Run ``python -m repro.analysis src`` or
``make lint``; see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue
and the ``# repro: allow[...] -- reason`` suppression syntax.
"""

from repro.analysis.core import (
    Checker,
    FileContext,
    Finding,
    Report,
    Suppression,
    register_checker,
    registered_rules,
    run_analysis,
)
from repro.analysis.reporters import SCHEMA_VERSION, render_json, render_text

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "Report",
    "SCHEMA_VERSION",
    "Suppression",
    "register_checker",
    "registered_rules",
    "render_json",
    "render_text",
    "run_analysis",
]
