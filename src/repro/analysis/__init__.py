"""``repro.analysis`` — AST-based invariant checkers for this repo.

Static shadows of the suite's hardest runtime guarantees: the fused
backend's zero-allocation step (REP001), halo/migration-only cross-rank
state exchange (REP002), seed-determinism (REP003), dtype/observer
default discipline (REP004), and — over the whole-program call graph
(:mod:`repro.analysis.flow`) — SPMD protocol safety (REP008), asyncio
discipline (REP009) and transitive hot-path allocation (REP010).  Run
``python -m repro.analysis src`` or ``make lint``; see
``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
``# repro: allow[...] -- reason`` suppression syntax.
"""

from repro.analysis.core import (
    Checker,
    FileContext,
    Finding,
    ProjectChecker,
    ProjectContext,
    Report,
    Suppression,
    register_checker,
    registered_rules,
    run_analysis,
)
from repro.analysis.reporters import (
    SARIF_VERSION,
    SCHEMA_VERSION,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "ProjectChecker",
    "ProjectContext",
    "Report",
    "SARIF_VERSION",
    "SCHEMA_VERSION",
    "Suppression",
    "register_checker",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "run_analysis",
]
