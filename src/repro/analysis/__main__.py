"""CLI driver: ``python -m repro.analysis <paths> [--format ...] [--rules ...]``.

Exit status 1 when any unsuppressed finding remains — this is what
``make lint`` and the CI ``static-analysis`` job gate on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.core import registered_rules, run_analysis
from repro.analysis.reporters import render_json, render_sarif, render_text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Invariant checkers for this repo: per-file AST rules "
            "(REP001 hot-path allocation, REP002 cross-rank shared "
            "writes, REP003 determinism, REP004 dtype/observer "
            "discipline, REP005-REP007) and whole-program call-graph "
            "rules (REP008 SPMD protocol, REP009 asyncio discipline, "
            "REP010 transitive hot-path allocation).  See "
            "docs/STATIC_ANALYSIS.md."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to scan"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json (kept for older callers)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print suppressed findings (text mode)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, title in registered_rules().items():
            print(f"{rule_id}  {title}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src)")

    rules = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    if rules:
        unknown = sorted(set(rules) - set(registered_rules()))
        if unknown:
            parser.error(f"unknown rule(s): {unknown}")

    fmt = "json" if args.json else args.format
    worst = 0
    for path in args.paths:
        report = run_analysis(path, rules)
        if fmt == "json":
            print(render_json(report))
        elif fmt == "sarif":
            print(render_sarif(report))
        else:
            print(render_text(report, verbose=args.verbose))
        if report.unsuppressed:
            worst = 1
    return worst


if __name__ == "__main__":
    sys.exit(main())
