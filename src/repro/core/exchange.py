"""The neighbour-window balance equations (paper, Section 3.4).

Node i balances the sliding window (i-1, i, i+1).  With point counts
``n_{i-1}, n_i, n_{i+1}``, predicted times ``t_j`` and processing speeds
``S_j = n_j / t_j``, the intended counts after remapping equalize the
windows' completion times:

    n'_j / S_j = (n_{i-1} + n_i + n_{i+1}) / (S_{i-1} + S_i + S_{i+1})

so ``n'_j = S_j * sum(n) / sum(S)``.  Points move from i to i+1 when
``n'_{i+1} > n_{i+1}`` by the difference (equivalently, when
``sum(n)/sum(S) > t_{i+1}``).  Edge nodes use two-node windows.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def speeds_from(counts: Sequence[float], times: Sequence[float]) -> np.ndarray:
    """Processing speeds S_i = n_i / t_i (points per second)."""
    counts_arr = np.asarray(counts, dtype=np.float64)
    times_arr = np.asarray(times, dtype=np.float64)
    if counts_arr.shape != times_arr.shape:
        raise ValueError("counts and times must have the same length")
    if (times_arr <= 0).any():
        raise ValueError("predicted times must be positive")
    if (counts_arr <= 0).any():
        raise ValueError("point counts must be positive")
    return counts_arr / times_arr


def window_targets(
    counts: Sequence[float], speeds: Sequence[float]
) -> np.ndarray:
    """Intended counts ``n'_j`` for one window: ``S_j * sum(n) / sum(S)``.

    Accepts a window of any size >= 2 (three nodes in the interior, two at
    the ends of the linear array).
    """
    counts_arr = np.asarray(counts, dtype=np.float64)
    speeds_arr = np.asarray(speeds, dtype=np.float64)
    if counts_arr.shape != speeds_arr.shape or counts_arr.size < 2:
        raise ValueError("window needs >= 2 matching counts/speeds")
    if (speeds_arr <= 0).any():
        raise ValueError("speeds must be positive")
    return speeds_arr * counts_arr.sum() / speeds_arr.sum()


def desired_transfer(
    counts: Sequence[float],
    speeds: Sequence[float],
    giver: int,
    receiver: int,
) -> float:
    """Points the window wants moved from *giver* to *receiver* (window-
    local indices); positive iff the receiver is under-loaded relative to
    its speed (``n'_recv > n_recv``), else 0."""
    targets = window_targets(counts, speeds)
    delta = targets[receiver] - float(np.asarray(counts, dtype=np.float64)[receiver])
    if delta <= 0:
        return 0.0
    # The giver can only offer what the window says it should shed.
    giver_surplus = float(np.asarray(counts, dtype=np.float64)[giver]) - targets[giver]
    if giver_surplus <= 0:
        return 0.0
    return float(min(delta, giver_surplus))


def proportional_targets(
    total_points: float, speeds: Sequence[float]
) -> np.ndarray:
    """Global remapping targets: points proportional to speed across *all*
    nodes (the paper's global information-exchange baseline)."""
    speeds_arr = np.asarray(speeds, dtype=np.float64)
    if speeds_arr.size == 0 or (speeds_arr <= 0).any():
        raise ValueError("speeds must be a non-empty positive vector")
    if total_points <= 0:
        raise ValueError("total_points must be positive")
    return speeds_arr * (total_points / speeds_arr.sum())


def chain_flows_for_targets(
    current: Sequence[int], target: Sequence[float]
) -> np.ndarray:
    """Edge flows realizing a global reassignment on the linear array.

    With 1-D slice decomposition, moving to target counts means shifting
    every slab boundary; the net flow across edge (i, i+1) is the prefix
    imbalance ``sum_{j<=i} (n_j - n'_j)``.  Positive = planes travel from
    node i to node i+1 (possibly relayed onward — the multi-hop cost the
    paper charges against the global scheme).
    """
    cur = np.asarray(current, dtype=np.float64)
    tgt = np.asarray(target, dtype=np.float64)
    if cur.shape != tgt.shape or cur.size < 1:
        raise ValueError("current and target must match and be non-empty")
    if not np.isclose(cur.sum(), tgt.sum()):
        raise ValueError(
            f"targets must conserve points: {cur.sum()} vs {tgt.sum()}"
        )
    prefix = np.cumsum(cur - tgt)[:-1]
    return prefix
