"""Plane-granular 1-D slice partition of the lattice.

The channel is decomposed along x into contiguous runs of yz-planes, one
run per node (the paper's "cubics").  A partition is fully described by
the number of planes each node owns; migration moves whole planes across
the edges of the linear node array, so contiguity is preserved by
construction.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.util.validation import check_integer


class SlicePartition:
    """Ownership of x-planes by the P nodes of a linear array.

    Parameters
    ----------
    plane_counts:
        Planes owned by each node, in node order; all >= min_planes.
    plane_points:
        Lattice points per plane (ny * nz); converts plane counts to the
        point counts the paper's formulas use (e.g. the 4000-point
        threshold is one 200 x 20 plane).
    min_planes:
        Smallest allowed allocation per node (>= 1: a node must keep at
        least one plane so halo exchange stays well-defined).
    """

    def __init__(
        self,
        plane_counts: Sequence[int],
        plane_points: int,
        *,
        min_planes: int = 1,
    ):
        counts = [check_integer(c, "plane count", minimum=0) for c in plane_counts]
        if not counts:
            raise ValueError("partition needs at least one node")
        self.plane_points = check_integer(plane_points, "plane_points", minimum=1)
        self.min_planes = check_integer(min_planes, "min_planes", minimum=1)
        for i, c in enumerate(counts):
            if c < self.min_planes:
                raise ValueError(
                    f"node {i} has {c} planes, below min_planes={self.min_planes}"
                )
        self._counts = np.array(counts, dtype=np.int64)

    # --------------------------------------------------------------- factory
    @classmethod
    def even(
        cls,
        total_planes: int,
        n_nodes: int,
        plane_points: int,
        *,
        min_planes: int = 1,
    ) -> "SlicePartition":
        """Initial even distribution (Figure 4-a): nodes get
        floor/ceil(total/P) planes, the remainder spread from node 0."""
        total_planes = check_integer(total_planes, "total_planes", minimum=1)
        n_nodes = check_integer(n_nodes, "n_nodes", minimum=1)
        base, extra = divmod(total_planes, n_nodes)
        if base < min_planes:
            raise ValueError(
                f"{total_planes} planes over {n_nodes} nodes violates "
                f"min_planes={min_planes}"
            )
        counts = [base + (1 if i < extra else 0) for i in range(n_nodes)]
        return cls(counts, plane_points, min_planes=min_planes)

    # ------------------------------------------------------------ properties
    @property
    def n_nodes(self) -> int:
        return int(self._counts.size)

    @property
    def total_planes(self) -> int:
        return int(self._counts.sum())

    def planes(self, node: int) -> int:
        """Planes owned by *node*."""
        return int(self._counts[node])

    def plane_counts(self) -> np.ndarray:
        """Copy of the per-node plane counts."""
        return self._counts.copy()

    def point_counts(self) -> np.ndarray:
        """Per-node lattice-point counts (the paper's n_i)."""
        return self._counts * self.plane_points

    def points(self, node: int) -> int:
        return int(self._counts[node]) * self.plane_points

    def start_end(self, node: int) -> tuple[int, int]:
        """Global [start, end) plane indices of *node*'s slab — the
        ``s``/``e`` of Figure 2."""
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range")
        start = int(self._counts[:node].sum())
        return start, start + int(self._counts[node])

    def boundaries(self) -> np.ndarray:
        """Global plane index at each of the P+1 slab boundaries."""
        return np.concatenate(([0], np.cumsum(self._counts)))

    def owner_of_plane(self, plane: int) -> int:
        """Node owning global plane index *plane*."""
        if not 0 <= plane < self.total_planes:
            raise IndexError(f"plane {plane} out of range")
        return int(np.searchsorted(np.cumsum(self._counts), plane, side="right"))

    # -------------------------------------------------------------- mutation
    def apply_edge_flows(self, flows: Sequence[int]) -> None:
        """Apply migration: ``flows[i]`` planes move from node i to node
        i+1 (negative values move the other way).  The caller (policy /
        conflict resolution) is responsible for producing feasible flows;
        infeasible flows (driving a node below min_planes) raise
        ``ValueError`` and leave the partition unchanged.
        """
        flows_arr = np.asarray(list(flows), dtype=np.int64)
        if flows_arr.shape != (self.n_nodes - 1,):
            raise ValueError(
                f"need {self.n_nodes - 1} edge flows, got {flows_arr.shape}"
            )
        new_counts = self._counts.copy()
        new_counts[:-1] -= flows_arr
        new_counts[1:] += flows_arr
        if (new_counts < self.min_planes).any():
            bad = int(np.argmin(new_counts))
            raise ValueError(
                f"edge flows would leave node {bad} with {int(new_counts[bad])} "
                f"planes (min {self.min_planes})"
            )
        self._counts = new_counts

    def max_outflow(self, node: int) -> int:
        """Most planes *node* may shed in one remap step while keeping
        min_planes."""
        return max(0, int(self._counts[node]) - self.min_planes)

    def copy(self) -> "SlicePartition":
        return SlicePartition(
            self._counts.tolist(), self.plane_points, min_planes=self.min_planes
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SlicePartition):
            return NotImplemented
        return (
            self.plane_points == other.plane_points
            and self.min_planes == other.min_planes
            and bool(np.array_equal(self._counts, other._counts))
        )

    def __repr__(self) -> str:
        return (
            f"SlicePartition(counts={self._counts.tolist()}, "
            f"plane_points={self.plane_points})"
        )
