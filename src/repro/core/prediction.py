"""Load-index predictors.

A predictor maps a node's recent phase times to the *predicted time* of the
next phase — the load index exchanged between neighbours.  The paper's
choice is the **harmonic mean** of the last K phase times:

    T_pred = K / (1/t_1 + 1/t_2 + ... + 1/t_K)

The harmonic mean is dominated by the *small* samples, so a single load
spike (one huge t_i) barely moves it: "if there is a load spike during the
last phase, no migration will be made unless this machine is really slow
for the last phases".  The alternatives here (last-phase, arithmetic mean,
exponentially weighted) exist for the ablation benchmarks: last-phase
prediction is what causes the paper's "migration oscillation".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.history import PhaseTimeHistory
from repro.util.validation import check_in_range


class Predictor(ABC):
    """Maps a phase-time history to the predicted next-phase time."""

    @abstractmethod
    def predict(self, history: PhaseTimeHistory) -> float:
        """Predicted time for the next phase; raises ``ValueError`` on an
        empty history (callers must not remap before any phase ran)."""

    def _require_samples(self, history: PhaseTimeHistory) -> list[float]:
        times = history.times()
        if not times:
            raise ValueError("cannot predict from an empty history")
        return times


class HarmonicMeanPredictor(Predictor):
    """The paper's filter: harmonic mean of the last K phase times."""

    def predict(self, history: PhaseTimeHistory) -> float:
        times = self._require_samples(history)
        return len(times) / sum(1.0 / t for t in times)


class LastPhasePredictor(Predictor):
    """Naive predictor: the most recent phase time (known to oscillate)."""

    def predict(self, history: PhaseTimeHistory) -> float:
        return self._require_samples(history)[-1]


class ArithmeticMeanPredictor(Predictor):
    """Plain average — reacts to spikes proportionally to their size."""

    def predict(self, history: PhaseTimeHistory) -> float:
        times = self._require_samples(history)
        return sum(times) / len(times)


class ExponentialPredictor(Predictor):
    """Exponentially weighted moving average with weight *alpha* on the most
    recent sample (the "give more weight to recent data" style of Yang,
    Foster & Schopf that the paper argues against for this workload)."""

    def __init__(self, alpha: float = 0.5):
        self.alpha = check_in_range(alpha, "alpha", 0.0, 1.0, inclusive=False)

    def predict(self, history: PhaseTimeHistory) -> float:
        times = self._require_samples(history)
        est = times[0]
        for t in times[1:]:
            est = self.alpha * t + (1.0 - self.alpha) * est
        return est


class LinearTrendPredictor(Predictor):
    """Least-squares linear extrapolation of the phase-time series — the
    "load is consistently predictable with simple linear models" approach
    of Dinda & O'Hallaron that the paper discusses.  Reacts fast to trends
    but, like the last-phase predictor, chases spikes."""

    def __init__(self, floor: float = 1e-9):
        if floor <= 0:
            raise ValueError(f"floor must be > 0, got {floor}")
        self.floor = floor

    def predict(self, history: PhaseTimeHistory) -> float:
        times = self._require_samples(history)
        n = len(times)
        if n == 1:
            return times[0]
        xs = list(range(n))
        mean_x = sum(xs) / n
        mean_y = sum(times) / n
        denom = sum((x - mean_x) ** 2 for x in xs)
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, times)) / denom
        predicted = mean_y + slope * (n - mean_x)  # extrapolate one step
        return max(predicted, self.floor)


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of positive values (module-level helper for tests)."""
    vals = list(values)
    if not vals:
        raise ValueError("harmonic mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


_PREDICTORS = {
    "harmonic": HarmonicMeanPredictor,
    "last": LastPhasePredictor,
    "arithmetic": ArithmeticMeanPredictor,
    "exponential": ExponentialPredictor,
    "linear": LinearTrendPredictor,
}


def make_predictor(name: str, **kwargs: float) -> Predictor:
    """Factory by name: harmonic (default in the paper), last, arithmetic,
    exponential."""
    try:
        cls = _PREDICTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; available: {sorted(_PREDICTORS)}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]
