"""Per-node phase-time history.

Each node records the wall time of its *computation* in the most recent
phases (the paper's ``estimate_time()`` of Figure 2, line 21).  The
predictors in :mod:`repro.core.prediction` turn this history into the load
index exchanged with neighbours.
"""

from __future__ import annotations

from collections import deque

from repro.util.validation import check_integer, check_positive


class PhaseTimeHistory:
    """Fixed-capacity ring buffer of recent per-phase execution times.

    The paper keeps the last K = 10 phase times.
    """

    def __init__(self, capacity: int = 10):
        self.capacity = check_integer(capacity, "capacity", minimum=1)
        self._times: deque[float] = deque(maxlen=self.capacity)

    def record(self, phase_time: float) -> None:
        """Append one phase's execution time (seconds, > 0)."""
        check_positive(phase_time, "phase_time")
        self._times.append(float(phase_time))

    def times(self) -> list[float]:
        """Recorded times, oldest first."""
        return list(self._times)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def full(self) -> bool:
        """True once the buffer holds *capacity* samples."""
        return len(self._times) == self.capacity

    def clear(self) -> None:
        self._times.clear()

    def __repr__(self) -> str:
        return f"PhaseTimeHistory(capacity={self.capacity}, n={len(self)})"
