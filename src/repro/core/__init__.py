"""The paper's contribution: filtered dynamic remapping of lattice points.

The remapping machinery is written as pure functions over per-node state
(point counts + phase-time histories), so the *same* policy code drives
both the virtual-time cluster simulator (:mod:`repro.cluster`) and the real
in-process parallel LBM driver (:mod:`repro.parallel.driver`).
"""

from repro.core.history import PhaseTimeHistory
from repro.core.prediction import (
    Predictor,
    HarmonicMeanPredictor,
    LastPhasePredictor,
    ArithmeticMeanPredictor,
    ExponentialPredictor,
    LinearTrendPredictor,
    make_predictor,
)
from repro.core.partition import SlicePartition
from repro.core.exchange import window_targets, desired_transfer
from repro.core.policies import (
    RemappingConfig,
    RemappingPolicy,
    NoRemappingPolicy,
    ConservativePolicy,
    FilteredPolicy,
    GlobalPolicy,
    DiffusionPolicy,
    window_proposal,
    make_policy,
    POLICY_NAMES,
)
from repro.core.remapper import Remapper, RemapDecision

__all__ = [
    "PhaseTimeHistory",
    "Predictor",
    "HarmonicMeanPredictor",
    "LastPhasePredictor",
    "ArithmeticMeanPredictor",
    "ExponentialPredictor",
    "LinearTrendPredictor",
    "make_predictor",
    "SlicePartition",
    "window_targets",
    "desired_transfer",
    "RemappingConfig",
    "RemappingPolicy",
    "NoRemappingPolicy",
    "ConservativePolicy",
    "FilteredPolicy",
    "GlobalPolicy",
    "DiffusionPolicy",
    "window_proposal",
    "make_policy",
    "POLICY_NAMES",
    "Remapper",
    "RemapDecision",
]
