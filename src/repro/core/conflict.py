"""Conflict resolution and feasibility clamping for migration proposals.

Two adjacent windows can issue opposing transfers across the same edge
(node i says "give to i+1" while node i+1 says "give to i").  The paper
deploys a conflict resolution between the two nodes to "redistribute a
proper amount"; we net the two proposals.  Afterwards, flows are rounded
to whole planes and clamped so no node is driven below its minimum
allocation even when it gives on both edges simultaneously.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import SlicePartition


def net_edge_proposals(
    give_right: np.ndarray, give_left: np.ndarray
) -> np.ndarray:
    """Net opposing point proposals per edge.

    Parameters
    ----------
    give_right:
        ``give_right[i]`` = points node i proposes to send to node i+1
        (length P; the last entry must be 0).
    give_left:
        ``give_left[i]`` = points node i proposes to send to node i-1
        (length P; the first entry must be 0).

    Returns
    -------
    Net point flow per edge, length P-1; positive = from i to i+1.
    """
    give_right = np.asarray(give_right, dtype=np.float64)
    give_left = np.asarray(give_left, dtype=np.float64)
    if give_right.shape != give_left.shape or give_right.ndim != 1:
        raise ValueError("proposal vectors must be 1-D and equal length")
    if (give_right < 0).any() or (give_left < 0).any():
        raise ValueError("proposals must be non-negative")
    if give_right.size and give_right[-1] != 0:
        raise ValueError("last node cannot give right")
    if give_left.size and give_left[0] != 0:
        raise ValueError("first node cannot give left")
    return give_right[:-1] - give_left[1:]


def flows_to_planes(point_flows: np.ndarray, plane_points: int) -> np.ndarray:
    """Round point flows toward zero to whole planes (lazy: partial planes
    never move)."""
    if plane_points <= 0:
        raise ValueError("plane_points must be positive")
    return np.trunc(np.asarray(point_flows, dtype=np.float64) / plane_points).astype(
        np.int64
    )


def clamp_plane_flows(
    flows: np.ndarray, partition: SlicePartition
) -> np.ndarray:
    """Reduce flows so every node keeps >= min_planes after applying them.

    A node may give on both edges at once; clamping reduces its outflows
    *proportionally* (so an evacuation spreads to both neighbours instead
    of lopsidedly to one), deterministically, until the plan is feasible.
    Returns a new flow vector (never mutates the input).
    """
    flows = np.asarray(flows, dtype=np.int64).copy()
    counts = partition.plane_counts()
    n = partition.n_nodes
    if flows.shape != (n - 1,):
        raise ValueError(f"need {n - 1} flows, got {flows.shape}")
    min_planes = partition.min_planes

    for _ in range(n * 2 + 4):  # generous bound; each pass strictly reduces flow
        new_counts = counts.copy()
        new_counts[:-1] -= flows
        new_counts[1:] += flows
        deficits = min_planes - new_counts
        worst = int(np.argmax(deficits))
        if deficits[worst] <= 0:
            return flows
        need = int(deficits[worst])
        # Outflows of the deficit node: right edge (flow[worst] > 0) and
        # left edge (flow[worst-1] < 0).
        out_right = int(flows[worst]) if worst < n - 1 and flows[worst] > 0 else 0
        out_left = -int(flows[worst - 1]) if worst > 0 and flows[worst - 1] < 0 else 0
        total_out = out_right + out_left
        if total_out == 0:
            raise ValueError(
                f"node {worst} infeasible without any outflow to reduce "
                f"(counts={counts.tolist()}, flows={flows.tolist()})"
            )
        need = min(need, total_out)
        cut_right = min(out_right, -(-need * out_right // total_out))  # ceil
        cut_left = min(out_left, need - cut_right)
        if cut_right:
            flows[worst] -= cut_right
        if cut_left:
            flows[worst - 1] += cut_left
    raise RuntimeError("flow clamping failed to converge (internal error)")
