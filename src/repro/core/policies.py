"""Remapping policies: no-remapping, conservative, filtered (the paper's
contribution) and global.

A policy maps the current partition plus per-node predicted phase times to
integer *edge flows*: ``flows[i]`` planes move from node i to node i+1
(negative values move leftward).  Policies are pure decision functions —
the virtual-time cluster simulator and the real parallel driver both call
them and then charge/perform the migration themselves.

The distributed driver does not see global arrays; it reuses
:func:`window_proposal` on each rank's own three-node window, which is
exactly what the centralized ``decide`` evaluates per node — so the two
substrates make identical decisions given identical load indices.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.core.conflict import (
    clamp_plane_flows,
    flows_to_planes,
    net_edge_proposals,
)
from repro.core.exchange import (
    chain_flows_for_targets,
    desired_transfer,
    proportional_targets,
    speeds_from,
)
from repro.core.overredistribution import (
    is_confirmed_slow,
    over_redistribution_factor,
)
from repro.core.partition import SlicePartition
from repro.core.prediction import HarmonicMeanPredictor, Predictor
from repro.util.validation import check_in_range, check_integer, check_positive


@dataclass(frozen=True)
class RemappingConfig:
    """Tunables shared by the remapping schemes.

    Attributes
    ----------
    interval:
        Phases between remap attempts (Figure 2's REMAPPING_INTERVAL).
    history:
        Number of recent phase times kept per node (the paper's K = 10).
    predictor:
        Load-index predictor; the paper uses the harmonic mean.
    threshold_points:
        Lazy-migration threshold: proposals below this many points are
        dropped.  ``None`` means one plane (the paper's 4000 points for a
        200 x 20 cross-section).
    fast_to_slow_tolerance:
        "Don't move points from a fast node to a slow node": a transfer is
        blocked when the receiver's speed is below ``(1 - tol)`` times the
        giver's.  The paper states the strict form (S_recv > S_giver); the
        small tolerance keeps equal-speed nodes able to re-balance counts
        after a slow node recovers.
    slow_ratio:
        Confirmed-slow detection: node speed below ``slow_ratio`` times its
        fastest neighbour.
    conservative_factor:
        Fraction of the computed transfer the conservative scheme actually
        ships (the classic delta/r with r = 2).
    max_beta:
        Cap on the over-redistribution factor beta = S_recv / S_giver.
    over_redistribution:
        Ablation switch: disable to make the filtered scheme ship the raw
        computed transfer from confirmed-slow nodes.
    exclude_slow_from_window:
        Ablation switch: disable the "minimize the use of a slow node"
        refinement where a confirmed-slow bystander is dropped from the
        window balance target (which is what lets the evacuated load keep
        diffusing outward past the slow node).
    """

    interval: int = 10
    history: int = 10
    predictor: Predictor = field(default_factory=HarmonicMeanPredictor)
    threshold_points: int | None = None
    fast_to_slow_tolerance: float = 0.05
    slow_ratio: float = 0.8
    conservative_factor: float = 0.5
    max_beta: float = 8.0
    over_redistribution: bool = True
    exclude_slow_from_window: bool = True

    def __post_init__(self) -> None:
        check_integer(self.interval, "interval", minimum=1)
        check_integer(self.history, "history", minimum=1)
        if self.threshold_points is not None:
            check_integer(self.threshold_points, "threshold_points", minimum=0)
        check_in_range(self.fast_to_slow_tolerance, "fast_to_slow_tolerance", 0.0, 1.0)
        check_in_range(self.slow_ratio, "slow_ratio", 0.0, 1.0)
        check_in_range(self.conservative_factor, "conservative_factor", 0.0, 1.0)
        check_positive(self.max_beta, "max_beta")

    def threshold_for(self, partition: SlicePartition) -> int:
        """Effective lazy threshold in points (default: one plane)."""
        if self.threshold_points is None:
            return partition.plane_points
        return self.threshold_points

    def threshold_points_for(self, plane_points: int) -> int:
        """Threshold given a plane size (for callers without a partition)."""
        if self.threshold_points is None:
            return plane_points
        return self.threshold_points


def window_proposal(
    counts: Sequence[float],
    speeds: Sequence[float],
    giver: int,
    receiver: int,
    config: RemappingConfig,
    threshold: float,
    *,
    filtered: bool,
) -> float:
    """Points that window-owner *giver* proposes to send to its adjacent
    *receiver* (indices into the window arrays, which must hold the
    giver's window: itself plus its existing neighbours).

    Applies, in order: the filtered scheme's slow-bystander exclusion, the
    triple-window balance equation, the lazy threshold, the
    fast-to-slow rule, and the scheme's scaling (conservative delta/2 or
    filtered over-redistribution).
    """
    counts_arr = np.asarray(counts, dtype=np.float64)
    speeds_arr = np.asarray(speeds, dtype=np.float64)
    if counts_arr.shape != speeds_arr.shape or counts_arr.ndim != 1:
        raise ValueError("counts and speeds must be matching 1-D arrays")
    n = counts_arr.size
    if not (0 <= giver < n and 0 <= receiver < n) or abs(giver - receiver) != 1:
        raise ValueError(
            f"giver {giver} and receiver {receiver} must be adjacent window "
            f"indices in [0, {n})"
        )

    members = list(range(n))
    if filtered and config.exclude_slow_from_window:
        kept = []
        for k in members:
            if k in (giver, receiver):
                kept.append(k)
                continue
            others = [float(speeds_arr[m]) for m in members if m != k]
            if is_confirmed_slow(
                float(speeds_arr[k]), others, slow_ratio=config.slow_ratio
            ):
                continue
            kept.append(k)
        members = kept

    amount = desired_transfer(
        counts_arr[members],
        speeds_arr[members],
        members.index(giver),
        members.index(receiver),
    )
    if amount <= threshold:
        return 0.0  # lazy: don't move a small number of points
    if speeds_arr[receiver] < (1.0 - config.fast_to_slow_tolerance) * speeds_arr[giver]:
        return 0.0  # never move points from a fast node to a slow one

    if not filtered:
        return amount * config.conservative_factor
    nbr_speeds = [float(speeds_arr[k]) for k in range(n) if k != giver]
    if config.over_redistribution and is_confirmed_slow(
        float(speeds_arr[giver]), nbr_speeds, slow_ratio=config.slow_ratio
    ):
        beta = over_redistribution_factor(
            float(speeds_arr[giver]),
            float(speeds_arr[receiver]),
            max_beta=config.max_beta,
        )
        return amount * beta
    return amount


class RemappingPolicy(ABC):
    """Decision function from (partition, predicted times) to edge flows."""

    #: Human-readable name used in reports.
    name: str = "abstract"
    #: True when the policy needs an all-node information exchange (the
    #: simulator charges the global synchronization cost for these).
    uses_global_exchange: bool = False

    def __init__(self, config: RemappingConfig | None = None):
        self.config = config or RemappingConfig()

    @abstractmethod
    def decide(
        self, partition: SlicePartition, predicted_times: np.ndarray
    ) -> np.ndarray:
        """Return integer plane flows per edge (length P-1), feasible for
        *partition* (callers may apply them directly)."""

    def _validate_times(
        self, partition: SlicePartition, predicted_times: np.ndarray
    ) -> np.ndarray:
        times = np.asarray(predicted_times, dtype=np.float64)
        if times.shape != (partition.n_nodes,):
            raise ValueError(
                f"need {partition.n_nodes} predicted times, got {times.shape}"
            )
        if (times <= 0).any():
            raise ValueError("predicted times must be positive")
        return times


class NoRemappingPolicy(RemappingPolicy):
    """Static decomposition: never move anything (the paper's baseline)."""

    name = "no-remap"

    def decide(
        self, partition: SlicePartition, predicted_times: np.ndarray
    ) -> np.ndarray:
        self._validate_times(partition, predicted_times)
        return np.zeros(partition.n_nodes - 1, dtype=np.int64)


class _LocalWindowPolicy(RemappingPolicy):
    """Shared machinery of the conservative and filtered schemes: each node
    balances its (i-1, i, i+1) window via :func:`window_proposal`, the
    proposals are netted per edge (conflict resolution) and clamped to
    feasibility."""

    #: Set by subclasses: whether window_proposal runs in filtered mode.
    filtered_mode = False

    def decide(
        self, partition: SlicePartition, predicted_times: np.ndarray
    ) -> np.ndarray:
        times = self._validate_times(partition, predicted_times)
        counts = partition.point_counts().astype(np.float64)
        speeds = speeds_from(counts, times)
        n = partition.n_nodes
        threshold = self.config.threshold_for(partition)

        give_right = np.zeros(n, dtype=np.float64)
        give_left = np.zeros(n, dtype=np.float64)
        for i in range(n):
            lo = max(0, i - 1)
            hi = min(n - 1, i + 1)
            w_counts = counts[lo : hi + 1]
            w_speeds = speeds[lo : hi + 1]
            for j, store in ((i + 1, give_right), (i - 1, give_left)):
                if not 0 <= j < n:
                    continue
                store[i] = window_proposal(
                    w_counts,
                    w_speeds,
                    i - lo,
                    j - lo,
                    self.config,
                    threshold,
                    filtered=self.filtered_mode,
                )

        point_flows = net_edge_proposals(give_right, give_left)
        plane_flows = flows_to_planes(point_flows, partition.plane_points)
        return clamp_plane_flows(plane_flows, partition)


class ConservativePolicy(_LocalWindowPolicy):
    """Local balancing with conservative transfer (delta / 2): the
    Willebeek-Reeves-style baseline the paper compares against."""

    name = "conservative"
    filtered_mode = False


class FilteredPolicy(_LocalWindowPolicy):
    """The paper's filtered dynamic remapping: lazy thresholding plus
    over-redistribution (beta = S_recv / S_giver) from confirmed-slow
    nodes, which are also shunned in the window balance targets."""

    name = "filtered"
    filtered_mode = True


class GlobalPolicy(RemappingPolicy):
    """Global information exchange: assign points proportionally to speed
    across all nodes.  Employs the same lazy prediction but no
    over-redistribution; the simulator charges the all-node communication
    this requires."""

    name = "global"
    uses_global_exchange = True

    def decide(
        self, partition: SlicePartition, predicted_times: np.ndarray
    ) -> np.ndarray:
        times = self._validate_times(partition, predicted_times)
        counts = partition.point_counts().astype(np.float64)
        speeds = speeds_from(counts, times)
        targets_pts = proportional_targets(float(counts.sum()), speeds)
        threshold = self.config.threshold_for(partition)
        if np.abs(targets_pts - counts).max() < threshold:
            return np.zeros(partition.n_nodes - 1, dtype=np.int64)
        target_planes = _round_to_planes(
            targets_pts / partition.plane_points,
            partition.total_planes,
            partition.min_planes,
        )
        point_flows = chain_flows_for_targets(
            partition.plane_counts(), target_planes
        )
        plane_flows = np.rint(point_flows).astype(np.int64)
        return clamp_plane_flows(plane_flows, partition)


def _round_to_planes(
    raw: np.ndarray, total: int, min_planes: int
) -> np.ndarray:
    """Largest-remainder rounding of fractional plane targets to integers
    summing to *total*, respecting *min_planes* per node."""
    raw = np.maximum(np.asarray(raw, dtype=np.float64), min_planes)
    base = np.floor(raw).astype(np.int64)
    short = total - int(base.sum())
    if short > 0:
        order = np.argsort(-(raw - base), kind="stable")
        for k in range(short):
            base[order[k % len(order)]] += 1
    elif short < 0:
        # Shave from the largest allocations, never below min_planes.
        order = np.argsort(-base, kind="stable")
        k = 0
        while short < 0:
            idx = order[k % len(order)]
            if base[idx] > min_planes:
                base[idx] -= 1
                short += 1
            k += 1
            if k > 10 * len(order) * max(1, -short):
                raise ValueError("cannot satisfy min_planes with given total")
    return base


class DiffusionPolicy(RemappingPolicy):
    """Classic first-order diffusion balancing (Cybenko): each edge moves a
    fixed fraction of the *weighted* count difference toward the slower
    side's deficit, using only pairwise information.

    Included as an extra baseline from the load-balancing literature the
    paper builds on (Willebeek-Lemair & Reeves); it neither thresholds by
    confidence nor over-redistributes, so it converges slowly and keeps
    feeding confirmed-slow nodes whenever their count is low.
    """

    name = "diffusion"

    def __init__(
        self,
        config: RemappingConfig | None = None,
        *,
        diffusion_rate: float = 0.5,
    ):
        super().__init__(config)
        if not 0.0 < diffusion_rate <= 1.0:
            raise ValueError(
                f"diffusion_rate must be in (0, 1], got {diffusion_rate}"
            )
        self.diffusion_rate = diffusion_rate

    def decide(
        self, partition: SlicePartition, predicted_times: np.ndarray
    ) -> np.ndarray:
        times = self._validate_times(partition, predicted_times)
        counts = partition.point_counts().astype(np.float64)
        speeds = speeds_from(counts, times)
        n = partition.n_nodes
        threshold = self.config.threshold_for(partition)

        point_flows = np.zeros(n - 1, dtype=np.float64)
        for e in range(n - 1):
            i, j = e, e + 1
            # Pairwise balance target: n'_i/S_i = n'_j/S_j.
            pair_total = counts[i] + counts[j]
            target_j = speeds[j] * pair_total / (speeds[i] + speeds[j])
            delta = target_j - counts[j]  # positive: i -> j
            flow = self.diffusion_rate * delta
            if abs(flow) <= threshold:
                continue
            point_flows[e] = flow

        plane_flows = flows_to_planes(point_flows, partition.plane_points)
        return clamp_plane_flows(plane_flows, partition)


POLICY_NAMES = ("no-remap", "conservative", "filtered", "global", "diffusion")


def make_policy(name: str, config: RemappingConfig | None = None) -> RemappingPolicy:
    """Factory by name: one of :data:`POLICY_NAMES`."""
    mapping = {
        "no-remap": NoRemappingPolicy,
        "conservative": ConservativePolicy,
        "filtered": FilteredPolicy,
        "global": GlobalPolicy,
        "diffusion": DiffusionPolicy,
    }
    try:
        cls = mapping[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {POLICY_NAMES}"
        ) from None
    return cls(config)
