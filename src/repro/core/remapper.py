"""The remapping orchestrator: ties histories, prediction, policy and
partition together.

Both execution substrates drive a :class:`Remapper` the same way: after
every phase they feed the per-node computation times in, and every
``config.interval`` phases the remapper predicts load indices, asks the
policy for edge flows, applies them to the partition, and reports what
moved so the caller can charge (simulator) or perform (parallel driver)
the data transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.history import PhaseTimeHistory
from repro.core.partition import SlicePartition
from repro.core.policies import RemappingConfig, RemappingPolicy
from repro.obs.observer import NULL_OBSERVER


@dataclass(frozen=True)
class RemapDecision:
    """Outcome of one remap attempt.

    Attributes
    ----------
    phase:
        Phase index (1-based count of completed phases) at which the
        attempt ran.
    attempted:
        False when the phase was not on a remap boundary or histories were
        still empty.
    flows:
        Plane flows per edge (length P-1), positive = rightward; all zero
        when nothing moved.
    predicted_times:
        The load indices used (empty array when not attempted).
    planes_moved:
        Total planes that crossed an edge (sum of absolute flows).
    """

    phase: int
    attempted: bool
    flows: np.ndarray
    predicted_times: np.ndarray
    planes_moved: int

    @property
    def moved(self) -> bool:
        return self.planes_moved > 0


class Remapper:
    """Stateful driver of one remapping policy over a partition."""

    def __init__(
        self,
        partition: SlicePartition,
        policy: RemappingPolicy,
        observer=NULL_OBSERVER,
    ):
        self.partition = partition
        self.policy = policy
        self.observer = observer
        self.config: RemappingConfig = policy.config
        self.histories = [
            PhaseTimeHistory(self.config.history)
            for _ in range(partition.n_nodes)
        ]
        self.phases_seen = 0
        self.decisions: list[RemapDecision] = []

    def record_phase(self, comp_times: np.ndarray) -> None:
        """Record one phase's per-node computation times."""
        comp_times = np.asarray(comp_times, dtype=np.float64)
        if comp_times.shape != (self.partition.n_nodes,):
            raise ValueError(
                f"need {self.partition.n_nodes} computation times, "
                f"got {comp_times.shape}"
            )
        for hist, t in zip(self.histories, comp_times):
            hist.record(float(t))
        self.phases_seen += 1

    def due(self) -> bool:
        """True when the current phase count sits on a remap boundary."""
        return (
            self.phases_seen > 0
            and self.phases_seen % self.config.interval == 0
        )

    def predicted_times(self) -> np.ndarray:
        """Current load index per node."""
        return np.array(
            [self.config.predictor.predict(h) for h in self.histories]
        )

    def attempt(self) -> RemapDecision:
        """Run one remap attempt now (regardless of :meth:`due`); applies
        any resulting flows to the partition."""
        if any(len(h) == 0 for h in self.histories):
            decision = RemapDecision(
                phase=self.phases_seen,
                attempted=False,
                flows=np.zeros(self.partition.n_nodes - 1, dtype=np.int64),
                predicted_times=np.array([]),
                planes_moved=0,
            )
            self.decisions.append(decision)
            return decision
        times = self.predicted_times()
        flows = self.policy.decide(self.partition, times)
        if flows.any():
            self.partition.apply_edge_flows(flows)
        decision = RemapDecision(
            phase=self.phases_seen,
            attempted=True,
            flows=flows,
            predicted_times=times,
            planes_moved=int(np.abs(flows).sum()),
        )
        self.decisions.append(decision)
        if self.observer.enabled:
            self.observer.emit(
                "remap_decision",
                phase=self.phases_seen,
                policy=self.policy.name,
                flows=[int(x) for x in flows],
                predicted_times=[float(t) for t in times],
                planes_moved=decision.planes_moved,
                plane_counts=self.partition.plane_counts().tolist(),
            )
            if decision.planes_moved:
                self.observer.counter("migration.planes").add(
                    decision.planes_moved
                )
        return decision

    def after_phase(self, comp_times: np.ndarray) -> RemapDecision | None:
        """Record a phase and remap if the interval boundary is reached.
        Returns the decision when an attempt ran, else ``None``."""
        self.record_phase(comp_times)
        if self.due():
            return self.attempt()
        return None

    def total_planes_moved(self) -> int:
        """Cumulative migration volume (planes) across all decisions."""
        return sum(d.planes_moved for d in self.decisions)
