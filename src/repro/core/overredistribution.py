"""Confirmed-slow detection and the over-redistribution scaling factor.

When a node is detected to be slow *with high confidence* (its filtered
load index is well below its neighbours'), the filtered scheme evacuates
it aggressively: instead of the window's computed transfer ``dn``, it
ships ``beta * dn`` with ``beta = S_receiver / S_giver`` — the paper's
scaling factor.  A slow node not only computes slowly but also drags every
synchronized phase through sluggish communication, so minimizing its load
pays twice.
"""

from __future__ import annotations

from repro.util.validation import check_in_range, check_positive


def is_confirmed_slow(
    speed: float,
    neighbour_speeds: list[float],
    *,
    slow_ratio: float = 0.8,
) -> bool:
    """True when *speed* is below ``slow_ratio`` times the fastest
    neighbour's speed.

    The confidence comes from the harmonic-mean filter feeding these
    speeds: a node only looks slow here after being slow for the whole
    history window, not after one spike.
    """
    check_positive(speed, "speed")
    check_in_range(slow_ratio, "slow_ratio", 0.0, 1.0)
    if not neighbour_speeds:
        return False
    fastest = max(neighbour_speeds)
    if fastest <= 0:
        raise ValueError("neighbour speeds must be positive")
    return speed < slow_ratio * fastest


def over_redistribution_factor(
    giver_speed: float,
    receiver_speed: float,
    *,
    max_beta: float = 8.0,
) -> float:
    """The paper's beta = S_receiver / S_giver, capped at *max_beta* and
    floored at 1 (over-redistribution never ships less than the computed
    transfer)."""
    check_positive(giver_speed, "giver_speed")
    check_positive(receiver_speed, "receiver_speed")
    check_positive(max_beta, "max_beta")
    beta = receiver_speed / giver_speed
    return float(min(max(beta, 1.0), max_beta))
