"""The per-phase cost model, calibrated to the paper's own numbers.

Derivation of the defaults (see DESIGN.md section 5):

- ``cost_per_point``: the paper reports 43.56 h sequential for 20 000
  phases on a 400 x 200 x 20 grid -> 43.56*3600 / (2e4 * 1.6e6) = 4.90 us
  per lattice-point update.
- ``exchange*_bytes``: per phase each edge exchanges the distribution
  functions of both components in the 5 x-leaning directions over a
  200 x 20 cross-section (5 * 2 * 4000 * 8 B = 320 kB), then the number
  densities (2 * 4000 * 8 B = 64 kB).
- ``per_message_overhead``: fixed software/NIC cost per synchronization;
  12 ms reproduces the paper's dedicated 251 s for 600 phases on 20 nodes
  (0.392 s compute + 2 syncs/phase).
- ``sched_delay``: a message endpoint whose node runs a background job
  responds late — the Linux scheduler delays the compute-hungry MPI
  process's wakeups while the competing job holds the CPU; a nearly-empty
  rank blocks in recv and gets priority-boosted instead.  Modeled as
  ``sched_delay * (1 - availability) * min(1, points/avg_points)``;
  0.04 s closes the gap to the paper's 717 s no-remapping run.
- ``collective_penalty``: extra cost a busy node adds to an all-node
  collective (the global scheme's information exchange).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class PhaseCostModel:
    """All timing constants of the virtual cluster.

    Compute fractions split one phase's work into the chunk before the
    distribution-function exchange (collision + streaming), the chunk
    between the two exchanges (bounce-back + yz boundary), and the final
    chunk (force + velocity), mirroring Figure 2.
    """

    cost_per_point: float = 4.9e-6
    compute_fractions: tuple[float, float, float] = (0.70, 0.10, 0.20)
    exchange1_bytes: float = 320_000.0
    exchange2_bytes: float = 64_000.0
    plane_bytes: float = 1_216_000.0  # 4000 pts * 19 dirs * 2 comps * 8 B
    bandwidth: float = 125e6  # gigabit Ethernet payload rate, B/s
    latency: float = 1e-4
    per_message_overhead: float = 12e-3
    sched_delay: float = 0.04
    collective_penalty: float = 1.5
    load_index_bytes: float = 64.0

    def __post_init__(self) -> None:
        check_positive(self.cost_per_point, "cost_per_point")
        fracs = tuple(float(f) for f in self.compute_fractions)
        if len(fracs) != 3 or any(f < 0 for f in fracs) or abs(sum(fracs) - 1.0) > 1e-9:
            raise ValueError(
                f"compute_fractions must be 3 non-negative numbers summing to 1, "
                f"got {self.compute_fractions}"
            )
        object.__setattr__(self, "compute_fractions", fracs)
        check_nonnegative(self.exchange1_bytes, "exchange1_bytes")
        check_nonnegative(self.exchange2_bytes, "exchange2_bytes")
        check_positive(self.plane_bytes, "plane_bytes")
        check_positive(self.bandwidth, "bandwidth")
        check_nonnegative(self.latency, "latency")
        check_nonnegative(self.per_message_overhead, "per_message_overhead")
        check_nonnegative(self.sched_delay, "sched_delay")
        check_nonnegative(self.collective_penalty, "collective_penalty")
        check_nonnegative(self.load_index_bytes, "load_index_bytes")

    # ------------------------------------------------------------- helpers
    def compute_work(self, points: int) -> float:
        """Full-speed seconds to update *points* lattice points once."""
        return points * self.cost_per_point

    def wire_time(self, size_bytes: float) -> float:
        """Latency + serialization for one message."""
        return self.latency + size_bytes / self.bandwidth

    def sched_penalty(self, availability: float, load_ratio: float) -> float:
        """Endpoint scheduling delay for a message touching a node with the
        given instantaneous *availability* and compute-load ratio
        (points / average points, capped at 1)."""
        busy = 1.0 - availability
        if busy <= 0.0:
            return 0.0
        return self.sched_delay * busy * min(1.0, max(0.0, load_ratio))

    def edge_cost(
        self,
        size_bytes: float,
        avail_i: float,
        avail_j: float,
        load_ratio_i: float,
        load_ratio_j: float,
    ) -> float:
        """Total cost of one neighbour exchange across an edge."""
        return (
            self.per_message_overhead
            + self.wire_time(size_bytes)
            + self.sched_penalty(avail_i, load_ratio_i)
            + self.sched_penalty(avail_j, load_ratio_j)
        )

    def collective_cost(self, availabilities: list[float]) -> float:
        """Cost of one all-node information exchange (the global scheme):
        every node contributes a message overhead, and every busy node adds
        its scheduling delay to the collective's critical path."""
        cost = 0.0
        for avail in availabilities:
            cost += self.per_message_overhead
            cost += self.collective_penalty * (1.0 - avail)
        return cost

    def migration_cost(
        self,
        planes: int,
        avail_i: float,
        avail_j: float,
        load_ratio_i: float,
        load_ratio_j: float,
    ) -> float:
        """Cost of shipping *planes* lattice planes across one edge."""
        if planes <= 0:
            return 0.0
        return self.edge_cost(
            planes * self.plane_bytes, avail_i, avail_j, load_ratio_i, load_ratio_j
        )

    def with_(self, **overrides: object) -> "PhaseCostModel":
        """Copy with field overrides (convenience for sweeps/ablations)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


#: Defaults calibrated against the paper's reported constants.
PAPER_COST_MODEL = PhaseCostModel()
