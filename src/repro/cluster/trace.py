"""CPU-availability traces.

A trace gives, for every instant of virtual time, the fraction of full
speed at which the node executes the MPI process (1.0 = dedicated; the
paper's 70%-CPU background job leaves roughly 0.35).  Traces are piecewise
constant and may be extended lazily from a generator so open-ended
workloads (random transient spikes) never run out.

Work integration — "how long does W seconds of full-speed work take when
started at t0" — is the primitive the phase engine builds on; the
monotone :class:`TraceCursor` amortizes the segment walk.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Callable, Iterator

from repro.util.validation import check_nonnegative

#: An extender yields (end_time, availability) segments in increasing
#: end_time order, covering time without gaps from the previous end.
SegmentIterator = Iterator[tuple[float, float]]


class AvailabilityTrace:
    """Piecewise-constant availability over [0, inf).

    Parameters
    ----------
    segments:
        List of ``(end_time, availability)`` pairs: the k-th availability
        holds on ``[end_{k-1}, end_k)`` (with end_{-1} = 0).
    tail:
        Availability after the last segment (default 1.0 = idle machine).
    extender:
        Optional generator supplying further segments on demand; when
        present, *tail* is only used if the generator is exhausted.
    contended:
        Whether reduced availability means CPU *contention* (a competing
        job, the paper's scenario — message endpoints then suffer
        scheduling penalties) or merely slower dedicated hardware
        (heterogeneous clusters — no contention penalties).
    """

    def __init__(
        self,
        segments: list[tuple[float, float]] | None = None,
        *,
        tail: float = 1.0,
        extender: SegmentIterator | None = None,
        contended: bool = True,
    ):
        self.contended = bool(contended)
        self._ends: list[float] = []
        self._avails: list[float] = []
        self.tail = self._check_avail(tail)
        self._extender = extender
        last = 0.0
        for end, avail in segments or []:
            if end <= last:
                raise ValueError(
                    f"segment end times must be increasing, got {end} after {last}"
                )
            self._ends.append(float(end))
            self._avails.append(self._check_avail(avail))
            last = end

    @staticmethod
    def _check_avail(value: float) -> float:
        if not 0.0 < value <= 1.0:
            raise ValueError(f"availability must be in (0, 1], got {value!r}")
        return float(value)

    # ------------------------------------------------------------- extension
    def _ensure(self, t: float) -> None:
        """Pull segments from the extender until the trace covers *t*."""
        if self._extender is None:
            return
        while not self._ends or self._ends[-1] <= t:
            try:
                end, avail = next(self._extender)
            except StopIteration:
                self._extender = None
                return
            last = self._ends[-1] if self._ends else 0.0
            if end <= last:
                raise ValueError(
                    f"extender produced non-increasing end time {end} after {last}"
                )
            self._ends.append(float(end))
            self._avails.append(self._check_avail(avail))

    # --------------------------------------------------------------- queries
    def availability(self, t: float) -> float:
        """Availability at time *t* (>= 0)."""
        check_nonnegative(t, "t")
        self._ensure(t)
        idx = bisect_right(self._ends, t)
        if idx < len(self._ends):
            return self._avails[idx]
        return self.tail

    def segment_end(self, t: float) -> float:
        """End of the segment containing *t* (inf for the tail)."""
        check_nonnegative(t, "t")
        self._ensure(t)
        idx = bisect_right(self._ends, t)
        if idx < len(self._ends):
            return self._ends[idx]
        return float("inf")

    def penalty_availability(self, t: float) -> float:
        """Availability as seen by the scheduling-penalty model: real
        availability for contended traces, 1.0 (no penalty) for merely
        slow dedicated hardware."""
        if not self.contended:
            return 1.0
        return self.availability(t)

    def advance(self, t0: float, work: float) -> float:
        """Earliest t1 with integral of availability over [t0, t1] = *work*
        (seconds of full-speed work)."""
        return TraceCursor(self).advance(t0, work)


class TraceCursor:
    """Monotone reader over a trace: repeated :meth:`advance` /
    :meth:`availability` calls with non-decreasing times walk the segment
    list in amortized O(1)."""

    def __init__(self, trace: AvailabilityTrace):
        self.trace = trace
        self._idx = 0

    def _seek(self, t: float) -> None:
        tr = self.trace
        tr._ensure(t)
        # Mostly-monotone access: scan forward from the cached index, but
        # fall back to a binary search when asked about an earlier time
        # (e.g. evaluating a partner node's trace at a sync point).
        if self._idx > 0 and self._idx - 1 < len(tr._ends) and t < tr._ends[self._idx - 1]:
            self._idx = bisect_right(tr._ends, t)
            return
        while self._idx < len(tr._ends) and tr._ends[self._idx] <= t:
            self._idx += 1

    def availability(self, t: float) -> float:
        check_nonnegative(t, "t")
        self._seek(t)
        tr = self.trace
        if self._idx < len(tr._ends):
            return tr._avails[self._idx]
        return tr.tail

    def advance(self, t0: float, work: float) -> float:
        """Consume *work* seconds of full-speed work starting at *t0*."""
        check_nonnegative(t0, "t0")
        check_nonnegative(work, "work")
        if work == 0.0:
            return t0
        tr = self.trace
        t = t0
        remaining = work
        self._seek(t)
        while True:
            tr._ensure(t)
            if self._idx < len(tr._ends):
                avail = tr._avails[self._idx]
                seg_end = tr._ends[self._idx]
            else:
                avail = tr.tail
                seg_end = float("inf")
            capacity = (seg_end - t) * avail
            if capacity >= remaining:
                return t + remaining / avail
            remaining -= capacity
            t = seg_end
            self._idx += 1
