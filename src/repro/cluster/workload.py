"""Background-load workload generators, mirroring the paper's experiments.

Three disturbance patterns appear in the evaluation:

- **fixed slow nodes** (Figures 8-10): a chosen set of nodes runs a
  CPU-intensive background job taking ~70% of the CPU for the whole run;
- **duty-cycle disturbance** (Figure 3): one node's competing job is busy
  for a fraction of every 10-second window and sleeps the rest;
- **transient spikes** (Table 1): every 10 seconds a *random* node gets a
  background job for 1-4 seconds.

Availability during a busy interval is ``busy_availability`` (default
0.35 — calibrated so one fixed slow node reproduces the paper's 717 s vs.
251 s no-remapping slowdown).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.cluster.trace import AvailabilityTrace
from repro.util.rng import make_rng
from repro.util.validation import check_in_range, check_integer, check_positive

#: Availability of the MPI process while a 70%-CPU background job runs.
DEFAULT_BUSY_AVAILABILITY = 0.35

#: The paper's disturbance window length (seconds).
DEFAULT_PERIOD = 10.0


def dedicated_traces(n_nodes: int) -> list[AvailabilityTrace]:
    """All nodes idle: availability 1 everywhere."""
    check_integer(n_nodes, "n_nodes", minimum=1)
    return [AvailabilityTrace(tail=1.0) for _ in range(n_nodes)]


def fixed_slow_traces(
    n_nodes: int,
    slow_nodes: Iterable[int],
    *,
    busy_availability: float = DEFAULT_BUSY_AVAILABILITY,
    jitter: float = 0.0,
    jitter_period: float = 2.0,
    seed: int | np.random.Generator | None = 0,
) -> list[AvailabilityTrace]:
    """A fixed set of nodes shared with a persistent background job.

    With ``jitter > 0`` the background job is not a metronome: each slow
    node's availability is redrawn every *jitter_period* seconds from a
    normal distribution around *busy_availability* (clipped to (0.05, 1]).
    Real competing jobs behave this way, and the fluctuation is what makes
    the no-remapping run degrade further as more slow nodes join (each
    phase waits for the momentarily slowest one).
    """
    check_integer(n_nodes, "n_nodes", minimum=1)
    check_in_range(busy_availability, "busy_availability", 0.0, 1.0, inclusive=False)
    check_in_range(jitter, "jitter", 0.0, 0.5)
    check_positive(jitter_period, "jitter_period")
    slow = set()
    for node in slow_nodes:
        node = check_integer(node, "slow node index", minimum=0)
        if node >= n_nodes:
            raise ValueError(f"slow node {node} out of range for {n_nodes} nodes")
        slow.add(node)
    rng = make_rng(seed)

    def jittered(node_rng: np.random.Generator) -> Iterator[tuple[float, float]]:
        k = 0
        while True:
            avail = float(
                np.clip(
                    node_rng.normal(busy_availability, jitter), 0.05, 1.0
                )
            )
            yield ((k + 1) * jitter_period, avail)
            k += 1

    traces: list[AvailabilityTrace] = []
    for i in range(n_nodes):
        if i not in slow:
            traces.append(AvailabilityTrace(tail=1.0))
        elif jitter == 0.0:
            traces.append(AvailabilityTrace(tail=busy_availability))
        else:
            child = make_rng(int(rng.integers(0, 2**63)))
            traces.append(
                AvailabilityTrace(
                    extender=jittered(child), tail=busy_availability
                )
            )
    return traces


def duty_cycle_trace(
    duty: float,
    *,
    period: float = DEFAULT_PERIOD,
    busy_availability: float = DEFAULT_BUSY_AVAILABILITY,
) -> AvailabilityTrace:
    """Figure 3's disturbance: every *period* seconds the competing job is
    busy for ``duty * period`` seconds, then sleeps."""
    check_in_range(duty, "duty", 0.0, 1.0)
    check_positive(period, "period")
    check_in_range(busy_availability, "busy_availability", 0.0, 1.0, inclusive=False)
    if duty == 0.0:
        return AvailabilityTrace(tail=1.0)
    if duty == 1.0:
        return AvailabilityTrace(tail=busy_availability)

    def gen() -> Iterator[tuple[float, float]]:
        k = 0
        while True:
            start = k * period
            yield (start + duty * period, busy_availability)
            yield (start + period, 1.0)
            k += 1

    return AvailabilityTrace(extender=gen(), tail=1.0)


def delayed_slow_traces(
    n_nodes: int,
    slow_node: int,
    onset: float,
    *,
    busy_availability: float = DEFAULT_BUSY_AVAILABILITY,
) -> list[AvailabilityTrace]:
    """One node becomes persistently slow at time *onset* (seconds) —
    the adaptation-speed scenario: how quickly does each scheme react to
    a background job that starts mid-run?"""
    check_integer(n_nodes, "n_nodes", minimum=1)
    node = check_integer(slow_node, "slow_node", minimum=0)
    if node >= n_nodes:
        raise ValueError(f"slow_node {node} out of range for {n_nodes} nodes")
    check_positive(onset, "onset")
    check_in_range(busy_availability, "busy_availability", 0.0, 1.0, inclusive=False)
    traces = []
    for i in range(n_nodes):
        if i == node:
            traces.append(
                AvailabilityTrace(
                    [(onset, 1.0)], tail=busy_availability
                )
            )
        else:
            traces.append(AvailabilityTrace(tail=1.0))
    return traces


def heterogeneous_traces(relative_speeds: Iterable[float]) -> list[AvailabilityTrace]:
    """A permanently heterogeneous cluster (mixed hardware generations):
    node i always runs at ``relative_speeds[i]`` of full speed.

    Not a paper experiment, but the natural second use of the remapping
    machinery: the filtered scheme converges to a speed-proportional
    partition on such clusters (see the heterogeneous-cluster example).
    """
    speeds = [float(s) for s in relative_speeds]
    if not speeds:
        raise ValueError("need at least one node speed")
    for s in speeds:
        if not 0.0 < s <= 1.0:
            raise ValueError(f"relative speed must be in (0, 1], got {s}")
    return [AvailabilityTrace(tail=s, contended=False) for s in speeds]


def transient_spike_traces(
    n_nodes: int,
    spike_length: float,
    *,
    period: float = DEFAULT_PERIOD,
    busy_availability: float = DEFAULT_BUSY_AVAILABILITY,
    seed: int | np.random.Generator | None = 0,
) -> list[AvailabilityTrace]:
    """Table 1's workload: every *period* seconds one uniformly random node
    runs a background job for *spike_length* seconds.

    All node traces share one spike schedule drawn from *seed*, generated
    lazily so arbitrarily long simulations stay covered.
    """
    check_integer(n_nodes, "n_nodes", minimum=1)
    check_positive(spike_length, "spike_length")
    check_positive(period, "period")
    if spike_length > period:
        raise ValueError(
            f"spike_length {spike_length} exceeds the window period {period}"
        )
    check_in_range(busy_availability, "busy_availability", 0.0, 1.0, inclusive=False)
    rng = make_rng(seed)

    # One shared lazily-grown schedule: window k hits victims[k].
    victims: list[int] = []

    def victim(k: int) -> int:
        while len(victims) <= k:
            victims.append(int(rng.integers(0, n_nodes)))
        return victims[k]

    def gen(node: int) -> Iterator[tuple[float, float]]:
        k = 0
        while True:
            start = k * period
            if victim(k) == node:
                yield (start + spike_length, busy_availability)
                yield (start + period, 1.0)
            else:
                yield (start + period, 1.0)
            k += 1

    return [AvailabilityTrace(extender=gen(i), tail=1.0) for i in range(n_nodes)]
