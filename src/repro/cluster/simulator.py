"""The neighbour-synchronized phase engine.

Each virtual phase mirrors the parallel LBM's structure (Figure 2):

1. compute chunk A (collision + streaming),
2. neighbour exchange of distribution functions,
3. compute chunk B (bounce-back + yz boundary),
4. neighbour exchange of number densities,
5. compute chunk C (force + velocity),
6. every REMAPPING_INTERVAL phases: load-index exchange, policy decision,
   and plane migration.

There is **no global barrier**: node i's phase p only waits for nodes
i-1 and i+1, so the paper's "ripple effect" — a slow node dragging ever
more distant nodes over 10-20 phases — emerges from the recurrence rather
than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.metrics import sequential_time, speedup
from repro.cluster.profile import NodeProfile
from repro.cluster.trace import TraceCursor
from repro.core.policies import NoRemappingPolicy, RemappingPolicy
from repro.core.partition import SlicePartition
from repro.core.remapper import Remapper
from repro.obs.observer import NULL_OBSERVER, ObserverLike, resolve_observer
from repro.util.validation import check_integer


@dataclass
class SimulationResult:
    """Outcome of one simulated run.

    Attributes
    ----------
    total_time:
        Virtual seconds until the last node finished the last phase.
    node_times:
        Per-node finish times.
    profile:
        Computation/communication/remapping breakdown (Figure 9).
    phases:
        Number of phases executed.
    planes_moved:
        Total migration volume over the run.
    policy_name:
        Which remapping scheme ran.
    final_plane_counts:
        Partition at the end of the run.
    """

    total_time: float
    node_times: np.ndarray
    profile: NodeProfile
    phases: int
    planes_moved: int
    policy_name: str
    final_plane_counts: list[int] = field(default_factory=list)
    #: Per-phase makespan (seconds the slowest node needed), present when
    #: the simulator ran with ``record_timeline=True``.
    phase_makespans: np.ndarray | None = None
    #: Plane counts after every remap attempt (same switch).
    partition_history: list[list[int]] | None = None

    def speedup_vs_sequential(self, spec: ClusterSpec) -> float:
        """Speedup against the sequential single-node run of the same
        problem (the paper's definition)."""
        seq = sequential_time(spec.total_points, self.phases, spec.cost_model)
        return speedup(seq, self.total_time)


class PhaseSimulator:
    """Runs the phase-synchronized LBM skeleton on a virtual cluster under
    one remapping policy."""

    def __init__(
        self,
        spec: ClusterSpec,
        policy: RemappingPolicy,
        *,
        record_timeline: bool = False,
        observer: ObserverLike = NULL_OBSERVER,
        checkpoint_every: int = 0,
        checkpoint_cost: float = 0.0,
    ):
        check_integer(checkpoint_every, "checkpoint_every", minimum=0)
        if checkpoint_cost < 0:
            raise ValueError(
                f"checkpoint_cost must be >= 0, got {checkpoint_cost}"
            )
        self.spec = spec
        self.policy = policy
        #: Periodic-checkpoint model (mirrors repro.ckpt on the real
        #: driver): every ``checkpoint_every`` phases all nodes synchronize
        #: — the snapshot is collective — and each pays ``checkpoint_cost``
        #: seconds scaled by its share of the domain.  0 disables it.
        self.checkpoint_every = checkpoint_every
        self.checkpoint_cost = checkpoint_cost
        # Scenario/timeline trace events (virtual-time observability);
        # NULL_OBSERVER unless an observer or REPRO_OBS_TRACE is given.
        self.observer = resolve_observer(observer)
        self.partition = SlicePartition.even(
            spec.total_planes, spec.n_nodes, spec.plane_points
        )
        self.remapper = Remapper(self.partition, policy, observer=self.observer)
        self._cursors = [TraceCursor(t) for t in spec.traces]
        self._times = np.zeros(spec.n_nodes, dtype=np.float64)
        self.profile = NodeProfile(spec.n_nodes)
        self.phases_run = 0
        self.record_timeline = record_timeline
        self._makespans: list[float] = []
        self._partition_history: list[list[int]] = []

    # ----------------------------------------------------------- internals
    def _sync_neighbours(
        self, ready: np.ndarray, size_bytes: float, ratios: np.ndarray
    ) -> np.ndarray:
        """One neighbour-exchange stage: every edge (i, i+1) completes at
        ``max(ready_i, ready_j) + edge_cost``; a node proceeds once both of
        its edges are done."""
        spec = self.spec
        n = spec.n_nodes
        model = spec.cost_model
        done = np.array(ready, dtype=np.float64)
        if n == 1:
            return done
        edge_done = np.empty(n - 1, dtype=np.float64)
        for e in range(n - 1):
            r = max(ready[e], ready[e + 1])
            cost = model.edge_cost(
                size_bytes,
                spec.traces[e].penalty_availability(r),
                spec.traces[e + 1].penalty_availability(r),
                ratios[e],
                ratios[e + 1],
            )
            edge_done[e] = r + cost
        for i in range(n):
            t = ready[i]
            if i > 0:
                t = max(t, edge_done[i - 1])
            if i < n - 1:
                t = max(t, edge_done[i])
            done[i] = t
        return done

    def _compute_chunk(self, start: np.ndarray, fraction: float) -> np.ndarray:
        """Advance every node through *fraction* of its per-phase work."""
        model = self.spec.cost_model
        counts = self.partition.point_counts()
        out = np.empty_like(start)
        for i in range(self.spec.n_nodes):
            work = fraction * model.compute_work(int(counts[i]))
            out[i] = self._cursors[i].advance(float(start[i]), work)
        return out

    def step_phase(self) -> np.ndarray:
        """Run one phase; returns per-node computation times (the load
        index samples)."""
        spec = self.spec
        model = spec.cost_model
        fa, fb, fc = model.compute_fractions
        ratios = self.partition.point_counts() / spec.average_points

        t0 = self._times
        ta = self._compute_chunk(t0, fa)
        ts1 = self._sync_neighbours(ta, model.exchange1_bytes, ratios)
        tb = self._compute_chunk(ts1, fb)
        ts2 = self._sync_neighbours(tb, model.exchange2_bytes, ratios)
        tc = self._compute_chunk(ts2, fc)

        comp = (ta - t0) + (tb - ts1) + (tc - ts2)
        comm = (ts1 - ta) + (ts2 - tb)
        for i in range(spec.n_nodes):
            self.profile.add_computation(i, float(comp[i]))
            self.profile.add_communication(i, float(comm[i]))

        if self.record_timeline:
            self._makespans.append(float((tc - t0).max()))
        self._times = tc
        self.phases_run += 1
        if self.observer.enabled:
            self.observer.emit(
                "sim_phase",
                phase=self.phases_run,
                makespan=float((tc - t0).max()),
                computation=[float(x) for x in comp],
                communication=[float(x) for x in comm],
            )
        return comp

    def _charge_load_index_exchange(self) -> None:
        """Neighbour (or global) information exchange preceding a remap
        decision."""
        spec = self.spec
        model = spec.cost_model
        n = spec.n_nodes
        t = self._times
        if self.policy.uses_global_exchange:
            t_bar = float(t.max())
            avails = [
                spec.traces[i].penalty_availability(t_bar) for i in range(n)
            ]
            cost = model.collective_cost(avails)
            for i in range(n):
                self.profile.add_remapping(i, t_bar + cost - float(t[i]))
            self._times = np.full(n, t_bar + cost, dtype=np.float64)
            return
        ratios = self.partition.point_counts() / spec.average_points
        done = self._sync_neighbours(t, model.load_index_bytes, ratios)
        for i in range(n):
            self.profile.add_remapping(i, float(done[i] - t[i]))
        self._times = done

    def _charge_migration(self, flows: np.ndarray) -> None:
        """Ship planes across edges, left to right, so multi-hop chains
        (the global scheme's long-distance reshuffles) serialize naturally."""
        spec = self.spec
        model = spec.cost_model
        ratios = self.partition.point_counts() / spec.average_points
        t = self._times
        for e in range(spec.n_nodes - 1):
            planes = int(abs(flows[e]))
            if planes == 0:
                continue
            i, j = e, e + 1
            r = max(float(t[i]), float(t[j]))
            cost = model.migration_cost(
                planes,
                spec.traces[i].penalty_availability(r),
                spec.traces[j].penalty_availability(r),
                float(ratios[i]),
                float(ratios[j]),
            )
            done = r + cost
            self.profile.add_remapping(i, done - float(t[i]))
            self.profile.add_remapping(j, done - float(t[j]))
            t[i] = done
            t[j] = done

    def _charge_checkpoint(self) -> None:
        """One collective snapshot: a barrier at the slowest node (health
        verdicts and the manifest commit are collective) plus a per-node
        write cost proportional to its slab."""
        spec = self.spec
        n = spec.n_nodes
        t = self._times
        t_bar = float(t.max())
        ratios = self.partition.point_counts() / spec.average_points
        done = t_bar + self.checkpoint_cost * ratios
        for i in range(n):
            self.profile.add_checkpoint(i, float(done[i] - t[i]))
        self._times = done.astype(np.float64)
        if self.observer.enabled:
            self.observer.emit(
                "sim_checkpoint",
                phase=self.phases_run,
                barrier=t_bar,
                write_cost=[float(x) for x in (done - t_bar)],
            )

    # ---------------------------------------------------------------- run
    def run(self, phases: int) -> SimulationResult:
        """Execute *phases* phases (plus remapping at the configured
        interval) and return the result."""
        check_integer(phases, "phases", minimum=1)
        static = isinstance(self.policy, NoRemappingPolicy)
        traced = self.observer.enabled
        if traced:
            self.observer.emit(
                "sim_start",
                n_nodes=self.spec.n_nodes,
                policy=self.policy.name,
                phases=phases,
                total_planes=self.spec.total_planes,
                plane_points=self.spec.plane_points,
            )
        for _ in range(phases):
            comp = self.step_phase()
            self.remapper.record_phase(comp)
            if not static and self.remapper.due():
                self._charge_load_index_exchange()
                decision = self.remapper.attempt()
                if decision.moved:
                    self._charge_migration(decision.flows)
                if self.record_timeline:
                    self._partition_history.append(
                        self.partition.plane_counts().tolist()
                    )
            if (
                self.checkpoint_every
                and self.phases_run % self.checkpoint_every == 0
            ):
                self._charge_checkpoint()
        if traced:
            self.observer.emit(
                "sim_end",
                total_time=float(self._times.max()),
                node_times=[float(t) for t in self._times],
                phases=self.phases_run,
                planes_moved=self.remapper.total_planes_moved(),
                policy=self.policy.name,
                final_plane_counts=self.partition.plane_counts().tolist(),
                computation=[float(x) for x in self.profile.computation],
                communication=[float(x) for x in self.profile.communication],
                remapping=[float(x) for x in self.profile.remapping],
            )
        return SimulationResult(
            total_time=float(self._times.max()),
            node_times=self._times.copy(),
            profile=self.profile,
            phases=self.phases_run,
            planes_moved=self.remapper.total_planes_moved(),
            policy_name=self.policy.name,
            final_plane_counts=self.partition.plane_counts().tolist(),
            phase_makespans=(
                np.array(self._makespans) if self.record_timeline else None
            ),
            partition_history=(
                list(self._partition_history) if self.record_timeline else None
            ),
        )


def simulate(
    spec: ClusterSpec,
    policy: RemappingPolicy,
    phases: int,
    *,
    observer: ObserverLike = NULL_OBSERVER,
    checkpoint_every: int = 0,
    checkpoint_cost: float = 0.0,
) -> SimulationResult:
    """One-shot convenience wrapper."""
    return PhaseSimulator(
        spec,
        policy,
        observer=observer,
        checkpoint_every=checkpoint_every,
        checkpoint_cost=checkpoint_cost,
    ).run(phases)
