"""Closed-form performance model of the phase-synchronized LBM.

The virtual-time simulator integrates the dynamics; this module gives the
steady-state *algebra* — what each scheme's per-phase makespan converges
to — so expected speedups can be reasoned about (and the simulator
cross-validated) without running anything.

Notation: P nodes, N total points, per-point cost c, availability a_i
(1 for idle nodes, sigma for nodes sharing with a background job).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cluster.costmodel import PhaseCostModel
from repro.util.validation import check_integer, check_positive


def _check_avail(availabilities: Sequence[float]) -> np.ndarray:
    a = np.asarray(list(availabilities), dtype=np.float64)
    if a.size == 0 or (a <= 0).any() or (a > 1).any():
        raise ValueError("availabilities must be a non-empty vector in (0, 1]")
    return a


def phase_sync_overhead(cost_model: PhaseCostModel) -> float:
    """Fixed per-phase cost of the two neighbour exchanges on an idle
    edge (no scheduling penalties)."""
    return cost_model.edge_cost(
        cost_model.exchange1_bytes, 1.0, 1.0, 0.0, 0.0
    ) + cost_model.edge_cost(cost_model.exchange2_bytes, 1.0, 1.0, 0.0, 0.0)


def makespan_no_remapping(
    total_points: int,
    availabilities: Sequence[float],
    cost_model: PhaseCostModel,
) -> float:
    """Static even decomposition: every phase waits for the slowest node,
    which computes N/P points at its availability (plus its sluggish
    message handling)."""
    a = _check_avail(availabilities)
    check_integer(total_points, "total_points", minimum=1)
    per_node = total_points / a.size
    compute = cost_model.compute_work(int(per_node)) / a.min()
    # The slow node's two edges carry its scheduling penalty in parallel,
    # so each of the two sync stages is delayed by it once.
    slow_busy = 1.0 - a.min()
    penalties = 2.0 * cost_model.sched_delay * slow_busy
    return compute + phase_sync_overhead(cost_model) + penalties


def makespan_proportional(
    total_points: int,
    availabilities: Sequence[float],
    cost_model: PhaseCostModel,
) -> float:
    """Speed-proportional assignment (the global scheme's target): every
    node finishes computing simultaneously in ``N c / sum(a)`` seconds."""
    a = _check_avail(availabilities)
    compute = cost_model.compute_work(total_points) / a.sum()
    return compute + phase_sync_overhead(cost_model)


def makespan_evacuated(
    total_points: int,
    availabilities: Sequence[float],
    cost_model: PhaseCostModel,
    *,
    min_points: int = 4000,
) -> float:
    """The filtered scheme's ideal steady state: confirmed-slow nodes keep
    only the minimum allocation and the fast nodes share the rest evenly."""
    a = _check_avail(availabilities)
    fast = a >= a.max() * 0.999
    n_fast = int(fast.sum())
    n_slow = a.size - n_fast
    if n_fast == 0:
        return makespan_no_remapping(total_points, availabilities, cost_model)
    remaining = total_points - n_slow * min_points
    per_fast = remaining / n_fast
    compute_fast = cost_model.compute_work(int(per_fast)) / a.max()
    compute_slow = (
        cost_model.compute_work(min_points) / a.min() if n_slow else 0.0
    )
    return max(compute_fast, compute_slow) + phase_sync_overhead(cost_model)


def expected_speedup(
    makespan: float,
    total_points: int,
    cost_model: PhaseCostModel,
) -> float:
    """Speedup vs. the sequential run implied by a per-phase makespan."""
    check_positive(makespan, "makespan")
    return cost_model.compute_work(total_points) / makespan


def paper_sanity_check(cost_model: PhaseCostModel) -> dict[str, float]:
    """The paper's three headline numbers from the closed forms:
    dedicated ~0.419 s/phase (251 s / 600), one slow node without
    remapping ~1.19 s/phase (717 s / 600), evacuated ~0.5 s/phase
    (~310 s / 600)."""
    avail_dedicated = [1.0] * 20
    avail_one_slow = [1.0] * 19 + [0.35]
    n = 1_600_000
    return {
        "dedicated": makespan_no_remapping(n, avail_dedicated, cost_model),
        "no_remap_one_slow": makespan_no_remapping(n, avail_one_slow, cost_model),
        "filtered_one_slow": makespan_evacuated(n, avail_one_slow, cost_model),
        "proportional_one_slow": makespan_proportional(
            n, avail_one_slow, cost_model
        ),
    }
