"""Performance metrics as defined in the paper.

- **speedup** = sequential execution time / parallel execution time;
- **normalized efficiency** = speedup / (P - 0.7 m) for a cluster of P
  nodes of which m run a 70%-CPU background job (the paper's utilization
  measure for a non-dedicated cluster);
- **slowdown ratio** = (T - T_dedicated) / T_dedicated (Table 1).
"""

from __future__ import annotations

from repro.cluster.costmodel import PhaseCostModel
from repro.util.validation import check_integer, check_nonnegative, check_positive


def sequential_time(
    total_points: int, phases: int, cost_model: PhaseCostModel
) -> float:
    """Execution time of the sequential program on one dedicated node (no
    communication)."""
    check_integer(total_points, "total_points", minimum=1)
    check_integer(phases, "phases", minimum=0)
    return cost_model.compute_work(total_points) * phases


def speedup(sequential: float, parallel: float) -> float:
    """T_seq / T_par."""
    check_positive(sequential, "sequential")
    check_positive(parallel, "parallel")
    return sequential / parallel


def normalized_efficiency(
    speedup_value: float,
    n_nodes: int,
    n_slow: int,
    *,
    background_share: float = 0.7,
) -> float:
    """The paper's utilization metric: speedup / (P - share * m), the
    speedup achievable if every remaining CPU cycle were perfectly used."""
    check_positive(speedup_value, "speedup_value")
    check_integer(n_nodes, "n_nodes", minimum=1)
    check_integer(n_slow, "n_slow", minimum=0)
    if n_slow > n_nodes:
        raise ValueError("n_slow cannot exceed n_nodes")
    capacity = n_nodes - background_share * n_slow
    if capacity <= 0:
        raise ValueError("no capacity left under this background share")
    return speedup_value / capacity


def slowdown_ratio(execution_time: float, dedicated_time: float) -> float:
    """(T - T_dedicated) / T_dedicated, the Table 1 metric."""
    check_positive(execution_time, "execution_time")
    check_positive(dedicated_time, "dedicated_time")
    return (execution_time - dedicated_time) / dedicated_time


def overhead_percent(execution_time: float, dedicated_time: float) -> float:
    """Figure 3's right panel: percentage increase over the undisturbed
    run."""
    return 100.0 * slowdown_ratio(execution_time, dedicated_time)
