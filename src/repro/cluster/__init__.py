"""Virtual-time cluster simulator: the evaluation substrate.

The paper ran on a 32-node Linux cluster (dual 2.6 GHz Xeon, gigabit
Ethernet) shared with background jobs.  This package replaces that
hardware with a deterministic model: per-node CPU-availability traces, a
neighbour-synchronized phase engine mirroring the parallel LBM's
communication structure, and a network cost model with CPU-contention
("sluggish communication") penalties.  The remapping policies from
:mod:`repro.core` run unchanged inside the engine.
"""

from repro.cluster.trace import AvailabilityTrace, TraceCursor
from repro.cluster.workload import (
    dedicated_traces,
    fixed_slow_traces,
    duty_cycle_trace,
    heterogeneous_traces,
    transient_spike_traces,
)
from repro.cluster.costmodel import PhaseCostModel, PAPER_COST_MODEL
from repro.cluster.machine import ClusterSpec
from repro.cluster.simulator import PhaseSimulator, SimulationResult
from repro.cluster.profile import NodeProfile
from repro.cluster.metrics import (
    speedup,
    normalized_efficiency,
    slowdown_ratio,
    sequential_time,
)

__all__ = [
    "AvailabilityTrace",
    "TraceCursor",
    "dedicated_traces",
    "fixed_slow_traces",
    "duty_cycle_trace",
    "heterogeneous_traces",
    "transient_spike_traces",
    "PhaseCostModel",
    "PAPER_COST_MODEL",
    "ClusterSpec",
    "PhaseSimulator",
    "SimulationResult",
    "NodeProfile",
    "speedup",
    "normalized_efficiency",
    "slowdown_ratio",
    "sequential_time",
]
