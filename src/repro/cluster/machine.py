"""Cluster specification: nodes + traces + cost model + problem size."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.costmodel import PAPER_COST_MODEL, PhaseCostModel
from repro.cluster.trace import AvailabilityTrace
from repro.cluster.workload import dedicated_traces
from repro.util.validation import check_integer


@dataclass
class ClusterSpec:
    """A virtual cluster running the slice-decomposed LBM.

    Attributes
    ----------
    n_nodes:
        Linear-array size (the paper uses 20 of its 32 nodes).
    total_planes:
        x-extent of the grid (400 for the paper's run).
    plane_points:
        Points per yz-plane (200 * 20 = 4000).
    traces:
        Per-node availability traces; defaults to a dedicated cluster.
    cost_model:
        Timing constants; defaults to the paper-calibrated model.
    """

    n_nodes: int = 20
    total_planes: int = 400
    plane_points: int = 4000
    traces: list[AvailabilityTrace] = field(default_factory=list)
    cost_model: PhaseCostModel = field(default_factory=lambda: PAPER_COST_MODEL)

    def __post_init__(self) -> None:
        check_integer(self.n_nodes, "n_nodes", minimum=1)
        check_integer(self.total_planes, "total_planes", minimum=self.n_nodes)
        check_integer(self.plane_points, "plane_points", minimum=1)
        if not self.traces:
            self.traces = dedicated_traces(self.n_nodes)
        if len(self.traces) != self.n_nodes:
            raise ValueError(
                f"need {self.n_nodes} traces, got {len(self.traces)}"
            )

    @property
    def total_points(self) -> int:
        return self.total_planes * self.plane_points

    @property
    def average_points(self) -> float:
        """Average points per node — the reference for load ratios."""
        return self.total_points / self.n_nodes


def paper_cluster(
    traces: list[AvailabilityTrace] | None = None,
    *,
    n_nodes: int = 20,
    cost_model: PhaseCostModel | None = None,
) -> ClusterSpec:
    """The paper's configuration: 20 nodes, 400 x 200 x 20 grid."""
    return ClusterSpec(
        n_nodes=n_nodes,
        total_planes=400,
        plane_points=4000,
        traces=traces or [],
        cost_model=cost_model or PAPER_COST_MODEL,
    )
