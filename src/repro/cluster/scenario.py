"""Declarative simulation scenarios (JSON-serializable) and the cluster
CLI.

A :class:`Scenario` names a workload, a policy and phase count; it can be
round-tripped through JSON for batch sweeps, and powers the command line::

    python -m repro.cluster --workload fixed-slow --slow-nodes 9 3 \\
        --policy filtered --phases 600
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass, field

from repro.cluster.machine import ClusterSpec, paper_cluster
from repro.cluster.simulator import SimulationResult, simulate
from repro.cluster.workload import (
    dedicated_traces,
    delayed_slow_traces,
    duty_cycle_trace,
    fixed_slow_traces,
    heterogeneous_traces,
    transient_spike_traces,
)
from repro.core.policies import POLICY_NAMES, make_policy
from repro.util.validation import check_integer

WORKLOADS = (
    "dedicated",
    "fixed-slow",
    "duty-cycle",
    "transient-spikes",
    "heterogeneous",
    "delayed-slow",
)


@dataclass(frozen=True)
class Scenario:
    """One simulation configuration.

    Attributes
    ----------
    workload:
        One of :data:`WORKLOADS`.
    policy:
        One of :data:`repro.core.policies.POLICY_NAMES`.
    phases:
        LBM phases to simulate.
    n_nodes:
        Cluster size (paper: 20).
    params:
        Workload-specific parameters (slow_nodes, duty, spike_length,
        speeds, onset, seed, jitter).
    """

    workload: str = "fixed-slow"
    policy: str = "filtered"
    phases: int = 600
    n_nodes: int = 20
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; available: {WORKLOADS}"
            )
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {self.policy!r}; available: {POLICY_NAMES}"
            )
        check_integer(self.phases, "phases", minimum=1)
        check_integer(self.n_nodes, "n_nodes", minimum=1)

    # ------------------------------------------------------------- traces
    def build_traces(self):
        p = self.params
        n = self.n_nodes
        if self.workload == "dedicated":
            return dedicated_traces(n)
        if self.workload == "fixed-slow":
            return fixed_slow_traces(
                n,
                p.get("slow_nodes", [9]),
                busy_availability=p.get("busy_availability", 0.35),
                jitter=p.get("jitter", 0.0),
                seed=p.get("seed", 0),
            )
        if self.workload == "duty-cycle":
            traces = dedicated_traces(n)
            node = p.get("node", 9)
            traces[node] = duty_cycle_trace(
                p.get("duty", 0.7),
                busy_availability=p.get("busy_availability", 0.35),
            )
            return traces
        if self.workload == "transient-spikes":
            return transient_spike_traces(
                n,
                p.get("spike_length", 2.0),
                busy_availability=p.get("busy_availability", 0.35),
                seed=p.get("seed", 42),
            )
        if self.workload == "heterogeneous":
            speeds = p.get("speeds")
            if speeds is None:
                n_slow = p.get("n_slow", n // 2)
                speeds = [1.0] * (n - n_slow) + [
                    p.get("slow_speed", 0.5)
                ] * n_slow
            return heterogeneous_traces(speeds)
        if self.workload == "delayed-slow":
            return delayed_slow_traces(
                n,
                p.get("node", 9),
                p.get("onset", 50.0),
                busy_availability=p.get("busy_availability", 0.35),
            )
        raise AssertionError("unreachable")

    def build_spec(self) -> ClusterSpec:
        return paper_cluster(self.build_traces(), n_nodes=self.n_nodes)

    def run(self) -> SimulationResult:
        return simulate(self.build_spec(), make_policy(self.policy), self.phases)

    # --------------------------------------------------------------- json
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("scenario JSON must be an object")
        return cls(**data)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Simulate the slice-decomposed parallel LBM on a "
        "virtual non-dedicated cluster.",
    )
    parser.add_argument("--workload", choices=WORKLOADS, default="fixed-slow")
    parser.add_argument("--policy", choices=POLICY_NAMES, default="filtered")
    parser.add_argument("--phases", type=int, default=600)
    parser.add_argument("--n-nodes", type=int, default=20)
    parser.add_argument(
        "--slow-nodes", type=int, nargs="*", default=[9],
        help="fixed-slow workload: which nodes run background jobs",
    )
    parser.add_argument("--duty", type=float, default=0.7)
    parser.add_argument("--spike-length", type=float, default=2.0)
    parser.add_argument("--jitter", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--profile", action="store_true", help="print the per-node profile"
    )
    args = parser.parse_args(argv)

    scenario = Scenario(
        workload=args.workload,
        policy=args.policy,
        phases=args.phases,
        n_nodes=args.n_nodes,
        params={
            "slow_nodes": args.slow_nodes,
            "duty": args.duty,
            "spike_length": args.spike_length,
            "jitter": args.jitter,
            "seed": args.seed,
        },
    )
    result = scenario.run()
    print(f"workload={args.workload} policy={args.policy} phases={args.phases}")
    print(f"total time: {result.total_time:.1f}s")
    print(f"planes moved: {result.planes_moved}")
    print(f"final partition: {result.final_plane_counts}")
    if args.profile:
        print()
        print(result.profile.to_table(title="per-node profile"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
