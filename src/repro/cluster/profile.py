"""Per-node execution accounting (the paper's Figure 9 stacked bars)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.tables import format_table


@dataclass
class NodeProfile:
    """Computation / communication / remapping / checkpoint seconds per node.

    "Communication" follows MPI-profiler semantics: it includes the time a
    node spends *waiting* at a synchronization for a neighbour plus the
    transfer itself — that is what makes the slow node's neighbours show
    huge communication bars in the paper's no-remapping profile.
    "Checkpoint" is the same for periodic snapshots: the barrier wait plus
    the node's own write cost (see :mod:`repro.ckpt`).
    """

    n_nodes: int
    computation: np.ndarray = field(init=False)
    communication: np.ndarray = field(init=False)
    remapping: np.ndarray = field(init=False)
    checkpoint: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.computation = np.zeros(self.n_nodes, dtype=np.float64)
        self.communication = np.zeros(self.n_nodes, dtype=np.float64)
        self.remapping = np.zeros(self.n_nodes, dtype=np.float64)
        self.checkpoint = np.zeros(self.n_nodes, dtype=np.float64)

    def add_computation(self, node: int, seconds: float) -> None:
        self.computation[node] += seconds

    def add_communication(self, node: int, seconds: float) -> None:
        self.communication[node] += seconds

    def add_remapping(self, node: int, seconds: float) -> None:
        self.remapping[node] += seconds

    def add_checkpoint(self, node: int, seconds: float) -> None:
        self.checkpoint[node] += seconds

    def total(self, node: int) -> float:
        return float(
            self.computation[node]
            + self.communication[node]
            + self.remapping[node]
            + self.checkpoint[node]
        )

    def totals(self) -> np.ndarray:
        return (
            self.computation
            + self.communication
            + self.remapping
            + self.checkpoint
        )

    def to_table(self, *, title: str | None = None) -> str:
        """Render the Figure 9-style breakdown as an ASCII table."""
        rows = [
            (
                i,
                float(self.computation[i]),
                float(self.communication[i]),
                float(self.remapping[i]),
                float(self.checkpoint[i]),
                self.total(i),
            )
            for i in range(self.n_nodes)
        ]
        return format_table(
            ["node", "comp (s)", "comm (s)", "remap (s)", "ckpt (s)", "total (s)"],
            rows,
            title=title,
            float_fmt="{:.1f}",
        )
