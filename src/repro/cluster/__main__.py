"""``python -m repro.cluster`` — the scenario CLI."""

from repro.cluster.scenario import main

if __name__ == "__main__":
    raise SystemExit(main())
