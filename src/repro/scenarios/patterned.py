"""Patterned walls: streamwise stripes of alternating slip (Ahmed–Hecht).

Ahmed & Hecht (2009) study microchannels whose walls alternate between
high- and low-slip stripes perpendicular to the flow.  In the paper's
force model that is a square-wave modulation of the hydrophobic force
amplitude along the (periodic) flow axis: over each ``period`` lattice
sites, a fraction ``duty`` carries ``amplitude_hi`` and the rest
``amplitude_lo``.  ``duty=1`` collapses bit-for-bit to the homogeneous
scenario at ``amplitude_hi`` (and ``duty=0`` to ``amplitude_lo``), which
the differential tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.lbm.geometry import ChannelGeometry
from repro.scenarios.base import Scenario, register_scenario
from repro.util.validation import (
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability,
)


@register_scenario
@dataclass(frozen=True)
class PatternedScenario(Scenario):
    """Square-wave streamwise modulation of the hydrophobic force.

    Attributes
    ----------
    amplitude_hi, amplitude_lo:
        Force amplitude on the high-slip / low-slip stripes.
    period:
        Stripe period in lattice sites along the flow axis (axis 0).
    duty:
        Fraction of each period carrying ``amplitude_hi``.
    phase:
        Integer offset of the pattern along the flow axis.
    decay_length, component:
        The wall-normal decay, as in the homogeneous scenario.
    """

    name: ClassVar[str] = "patterned"
    alters_geometry: ClassVar[bool] = False
    x_invariant: ClassVar[bool] = False

    amplitude_hi: float = 0.2
    amplitude_lo: float = 0.0
    period: int = 8
    duty: float = 0.5
    phase: int = 0
    decay_length: float = 2.5
    component: str = "water"

    def __post_init__(self) -> None:
        check_nonnegative(self.amplitude_hi, "amplitude_hi")
        check_nonnegative(self.amplitude_lo, "amplitude_lo")
        check_integer(self.period, "period", minimum=1)
        check_probability(self.duty, "duty")
        check_integer(self.phase, "phase", minimum=0)
        check_positive(self.decay_length, "decay_length")
        if not self.component:
            raise ValueError("component name must be non-empty")

    def modulation(self, n_stream: int) -> np.ndarray:
        """The per-site amplitude along the flow axis, shape ``(n,)``."""
        x = np.arange(n_stream, dtype=np.int64)
        on = ((x + self.phase) % self.period) < self.duty * self.period
        return np.where(on, float(self.amplitude_hi), float(self.amplitude_lo))

    def wall_accel(self, geometry: ChannelGeometry) -> np.ndarray:
        if 0 in geometry.wall_axes:
            raise ValueError(
                "patterned scenario modulates along the flow axis (axis 0), "
                "which must be periodic, not a wall axis"
            )
        ndim = geometry.ndim
        force = np.zeros((ndim,) + geometry.shape, dtype=np.float64)
        mod_shape = [1] * ndim
        mod_shape[0] = geometry.shape[0]
        mod = self.modulation(geometry.shape[0]).reshape(mod_shape)
        for ax in geometry.wall_axes:
            n = geometry.shape[ax]
            t = geometry.wall_thickness
            idx = np.arange(n, dtype=np.float64)
            lo_surface = t - 0.5
            hi_surface = (n - 1 - t) + 0.5
            d_lo = np.maximum(idx - lo_surface, 0.0)
            d_hi = np.maximum(hi_surface - idx, 0.0)
            # Unit wall-normal profile, modulated streamwise.  On an
            # all-hi pattern `mod * unit` multiplies the exact same two
            # floats as the homogeneous `amplitude * unit`, so duty=1 is
            # bit-identical to HomogeneousScenario(amplitude_hi).
            unit = np.exp(-d_lo / self.decay_length) - np.exp(
                -d_hi / self.decay_length
            )
            shape = [1] * ndim
            shape[ax] = n
            force[ax] += mod * unit.reshape(shape)
        force *= geometry.fluid_mask()  # no force inside the solid
        return force

    def expected_trends(self) -> dict[str, str]:
        # More (or stronger) slippery stripes mean more apparent slip.
        return {"duty": "+", "amplitude_hi": "+", "amplitude_lo": "+"}
