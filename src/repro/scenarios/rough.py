"""Rough walls: randomized wall-height displacement (Kunert–Harting).

Kunert & Harting (2007) showed that nanoscale wall roughness *masks*
apparent slip: the effective hydrodynamic boundary sits near the
roughness peaks, so measured slip decreases as the RMS height grows.
``RoughScenario`` reproduces that setup on the paper's channel — each
wall surface is displaced inward by an independent, seeded random
integer height field (|N(0, rms)| rounded, capped at ``max_height``),
and the hydrophobic force decays from the **local displaced surface**
rather than the flat one.

All randomness flows through :mod:`repro.util.rng` (REP003): the height
fields are a pure function of ``seed`` and the geometry, so the same
scenario always produces the same walls — which is also why ``seed`` is
part of the scenario's identity document and geometry signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.lbm.geometry import ChannelGeometry
from repro.scenarios.base import Scenario, register_scenario
from repro.util.rng import spawn_rngs
from repro.util.validation import (
    check_integer,
    check_nonnegative,
    check_positive,
)


@register_scenario
@dataclass(frozen=True)
class RoughScenario(Scenario):
    """Hydrophobic force over randomly roughened walls.

    Attributes
    ----------
    amplitude, decay_length, component:
        The hydrophobic force, as in the homogeneous scenario.
    rms:
        RMS roughness knob — standard deviation (in lattice spacings) of
        the Gaussian the integer wall heights are drawn from.  ``0``
        reduces bit-for-bit to the homogeneous scenario.
    max_height:
        Hard cap on the drawn heights, so a narrow channel can never be
        pinched shut by an unlucky draw.
    seed:
        Seed for the height fields (via ``util.rng.spawn_rngs``); part
        of the scenario identity, so two draws never share a cache key.
    """

    name: ClassVar[str] = "rough"
    alters_geometry: ClassVar[bool] = True
    x_invariant: ClassVar[bool] = False

    amplitude: float = 0.2
    decay_length: float = 2.5
    component: str = "water"
    rms: float = 1.0
    max_height: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        check_nonnegative(self.amplitude, "amplitude")
        check_positive(self.decay_length, "decay_length")
        check_nonnegative(self.rms, "rms")
        check_integer(self.max_height, "max_height", minimum=0)
        check_integer(self.seed, "seed", minimum=0)
        if not self.component:
            raise ValueError("component name must be non-empty")

    def geometry_params(self) -> dict[str, Any]:
        return {
            "rms": float(self.rms),
            "max_height": int(self.max_height),
            "seed": int(self.seed),
        }

    # ------------------------------------------------------------ fields
    def _heights(self, geometry: ChannelGeometry) -> dict[tuple[int, str], np.ndarray]:
        """Integer height field per (wall axis, side), shaped like the
        geometry with that axis dropped.  Deterministic in ``seed``."""
        for ax in geometry.wall_axes:
            needed = 2 * (geometry.wall_thickness + self.max_height) + 1
            if geometry.shape[ax] < needed:
                raise ValueError(
                    f"axis {ax} has {geometry.shape[ax]} nodes but rough walls "
                    f"with max_height={self.max_height} need >= {needed}"
                )
        rngs = spawn_rngs(self.seed, 2 * len(geometry.wall_axes))
        heights: dict[tuple[int, str], np.ndarray] = {}
        for k, ax in enumerate(geometry.wall_axes):
            perp = tuple(
                n for d, n in enumerate(geometry.shape) if d != ax
            )
            for j, side in enumerate(("lo", "hi")):
                drawn = np.abs(rngs[2 * k + j].normal(0.0, self.rms, size=perp))
                h = np.minimum(np.rint(drawn), float(self.max_height))
                heights[(ax, side)] = h.astype(np.int64)
        return heights

    def solid_mask(self, geometry: ChannelGeometry) -> np.ndarray:
        mask = geometry.solid_mask()
        heights = self._heights(geometry)
        for ax in geometry.wall_axes:
            n = geometry.shape[ax]
            t = geometry.wall_thickness
            shape = [1] * geometry.ndim
            shape[ax] = n
            idx = np.arange(n, dtype=np.int64).reshape(shape)
            h_lo = np.expand_dims(heights[(ax, "lo")], ax)
            h_hi = np.expand_dims(heights[(ax, "hi")], ax)
            mask |= idx < t + h_lo
            mask |= idx >= n - t - h_hi
        return mask

    def wall_accel(self, geometry: ChannelGeometry) -> np.ndarray:
        ndim = geometry.ndim
        force = np.zeros((ndim,) + geometry.shape, dtype=np.float64)
        if self.amplitude == 0.0:
            return force
        heights = self._heights(geometry)
        for ax in geometry.wall_axes:
            n = geometry.shape[ax]
            t = geometry.wall_thickness
            shape = [1] * ndim
            shape[ax] = n
            idx = np.arange(n, dtype=np.float64).reshape(shape)
            h_lo = np.expand_dims(heights[(ax, "lo")], ax)
            h_hi = np.expand_dims(heights[(ax, "hi")], ax)
            # Distances from the *displaced* surfaces; with h == 0 these
            # collapse to the flat-wall formula in repro.lbm.forces.
            lo_surface = t + h_lo - 0.5
            hi_surface = (n - 1 - t - h_hi) + 0.5
            d_lo = np.maximum(idx - lo_surface, 0.0)
            d_hi = np.maximum(hi_surface - idx, 0.0)
            force[ax] += self.amplitude * (
                np.exp(-d_lo / self.decay_length)
                - np.exp(-d_hi / self.decay_length)
            )
        force *= ~self.solid_mask(geometry)  # no force inside the solid
        return force

    def expected_trends(self) -> dict[str, str]:
        # Kunert–Harting: roughness masks apparent slip; a stronger
        # repulsion amplifies it.
        return {"rms": "-", "amplitude": "+"}
