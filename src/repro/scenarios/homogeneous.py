"""The paper's baseline wall physics as a scenario.

``HomogeneousScenario`` is the identity element of the registry: it
delegates straight to :func:`repro.lbm.forces.wall_force_field`, so a
config carrying it is **bit-identical** to one carrying the equivalent
direct :class:`~repro.lbm.forces.WallForceSpec` — on the sequential
solver, the parallel driver (it is x-invariant) and the batched
ensemble engine alike.  Differential tests pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.lbm.forces import WallForceSpec, wall_force_field
from repro.lbm.geometry import ChannelGeometry
from repro.scenarios.base import Scenario, register_scenario
from repro.util.validation import check_nonnegative, check_positive


@register_scenario
@dataclass(frozen=True)
class HomogeneousScenario(Scenario):
    """Uniform hydrophobic force at both walls (the paper's physics).

    Attributes
    ----------
    amplitude:
        Nondimensional force magnitude at the wall surface (paper: 0.2).
    decay_length:
        Exponential decay length in lattice spacings (paper: 2.5).
    component:
        Component the force acts on; all others feel nothing.
    """

    name: ClassVar[str] = "homogeneous"
    alters_geometry: ClassVar[bool] = False
    x_invariant: ClassVar[bool] = True

    amplitude: float = 0.2
    decay_length: float = 2.5
    component: str = "water"

    def __post_init__(self) -> None:
        check_nonnegative(self.amplitude, "amplitude")
        check_positive(self.decay_length, "decay_length")
        if not self.component:
            raise ValueError("component name must be non-empty")

    def wall_force_spec(self) -> WallForceSpec:
        """The equivalent direct spec (the bit-identity bridge)."""
        return WallForceSpec(
            amplitude=self.amplitude,
            decay_length=self.decay_length,
            component=self.component,
        )

    def wall_accel(self, geometry: ChannelGeometry) -> np.ndarray:
        return wall_force_field(geometry, self.wall_force_spec())

    def expected_trends(self) -> dict[str, str]:
        # A stronger or farther-reaching repulsion depletes more water
        # near the wall and grows the apparent slip.
        return {"amplitude": "+", "decay_length": "+"}
