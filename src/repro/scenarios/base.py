"""The wall-physics ``Scenario`` abstraction and its registry.

The paper models one wall physics — a homogeneous hydrophobic force at
both channel walls.  Its own lineage immediately generalizes it: rough
walls mask or amplify apparent slip (Kunert & Harting 2007), and
patterned surfaces alternate the local slip length along the flow
direction (Ahmed & Hecht 2009).  A :class:`Scenario` packages one such
wall physics as a frozen parameter dataclass that produces, for any
:class:`~repro.lbm.geometry.ChannelGeometry`:

- a **solid mask** (rough walls displace the wall surface inward), and
- a **per-site wall-force field** — the static acceleration applied to
  the targeted component (the paper's hydrophobic force, possibly
  modulated in space),

plus **expected-observable hooks** (:meth:`Scenario.expected_trends`)
stating which way the apparent slip should move when each parameter
grows — the monotone-sanity contract the figure tests check.

Scenarios plug into :class:`~repro.lbm.solver.LBMConfig` via its
``scenario`` field (mutually exclusive with the direct ``wall_force``
channel, which the ``homogeneous`` scenario reproduces bit-for-bit) and
from there into every execution substrate: the sequential solver, the
parallel driver (x-invariant scenarios only — the slab decomposition
shares one cross-section wall pattern), the batched ensemble engine
(per-member force fields; one shared solid mask) and the serve layer
(the scenario document participates in the physics fingerprint, so the
result cache can never conflate two scenarios).

The registry mirrors :mod:`repro.lbm.backends.registry`: classes
register under :attr:`Scenario.name` via :func:`register_scenario`;
:func:`scenario_from_doc` rebuilds an instance from the canonical
document :meth:`Scenario.doc` emits (the serialization used by
fingerprints and checkpoint manifests).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, ClassVar

import numpy as np

from repro.lbm.geometry import ChannelGeometry

_REGISTRY: dict[str, type["Scenario"]] = {}


def register_scenario(cls: type["Scenario"]) -> type["Scenario"]:
    """Class decorator: add *cls* to the registry under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"scenario class {cls.__name__} needs a `name` string")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"scenario {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def available_scenarios() -> list[str]:
    """Names of all registered scenarios, sorted."""
    return sorted(_REGISTRY)


def get_scenario_class(name: str) -> type["Scenario"]:
    """Look up a scenario class by name; unknown names fail loudly."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    return _REGISTRY[name]


def scenario_from_doc(doc: dict[str, Any]) -> "Scenario":
    """Rebuild a scenario from its canonical :meth:`Scenario.doc`
    document — the inverse used when a fingerprint or manifest needs to
    materialize the wall physics it recorded."""
    if not isinstance(doc, dict) or "name" not in doc:
        raise ValueError(f"scenario doc needs a 'name' entry, got {doc!r}")
    cls = get_scenario_class(str(doc["name"]))
    params = dict(doc.get("params", {}))
    return cls(**params)


class Scenario(abc.ABC):
    """One pluggable wall physics (subclasses are frozen dataclasses).

    Class attributes
    ----------------
    name:
        Registry key (``"homogeneous"``, ``"rough"``, ``"patterned"``).
    alters_geometry:
        True when the scenario's solid mask differs from the base
        geometry's (rough walls).  Scenarios that only reshape the force
        field share solid masks and can therefore share a batched
        ensemble.
    x_invariant:
        True when both the solid mask and the force field are constant
        along the (periodic) flow axis.  A memory optimization hint for
        the parallel driver: x-invariant scenarios are stored as one
        shared cross-section, x-varying ones are sliced per subdomain
        rectangle.  Every scenario runs under every decomposition.
    """

    name: ClassVar[str] = ""
    alters_geometry: ClassVar[bool] = False
    x_invariant: ClassVar[bool] = False

    #: Subclasses carry the targeted component as a dataclass field.
    component: str

    # ------------------------------------------------------------ fields
    def solid_mask(self, geometry: ChannelGeometry) -> np.ndarray:
        """Boolean solid-node field for *geometry* under this scenario.

        The default keeps the base geometry's walls; geometry-altering
        scenarios (rough walls) override it.
        """
        return geometry.solid_mask()

    @abc.abstractmethod
    def wall_accel(self, geometry: ChannelGeometry) -> np.ndarray:
        """The static per-site wall acceleration ``(D, *S)`` applied to
        :attr:`component` (zero inside the scenario's solid nodes)."""

    # ------------------------------------------------------------ identity
    def doc(self) -> dict[str, Any]:
        """Canonical JSON-able identity document: registry name plus
        every parameter.  This is what the physics fingerprint
        (:func:`repro.ckpt.manifest.config_fingerprint`) embeds, so two
        scenarios sharing all other physics knobs can never collide in
        the serve result cache."""
        params: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, bool) or isinstance(value, str):
                params[f.name] = value
            elif isinstance(value, int):
                params[f.name] = int(value)
            elif isinstance(value, float):
                params[f.name] = float(value)
            else:
                raise TypeError(
                    f"scenario field {f.name!r} has non-canonical type "
                    f"{type(value).__name__}"
                )
        return {"name": self.name, "params": params}

    def geometry_params(self) -> dict[str, Any]:
        """The subset of parameters that shape the solid mask (empty for
        scenarios that keep the base geometry)."""
        return {}

    def geometry_signature(self) -> dict[str, Any] | None:
        """Hashable-by-equality description of the scenario's solid
        mask, or ``None`` when it keeps the base geometry's.  Two
        configurations may share a batched ensemble (one stacked solid
        mask) iff their signatures are equal."""
        if not self.alters_geometry:
            return None
        return {"name": self.name, **self.geometry_params()}

    # ----------------------------------------------------- expectations
    def expected_trends(self) -> dict[str, str]:
        """Expected-observable hook: map of parameter name to the sign
        (``"+"`` / ``"-"``) of the apparent-slip response when that
        parameter grows — what the related work predicts and the figure
        tests assert."""
        return {}
