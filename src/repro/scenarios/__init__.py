"""Pluggable wall-physics scenarios (see docs/SCENARIOS.md).

Importing this package registers the built-in scenarios:

- ``homogeneous`` — the paper's uniform hydrophobic wall force,
  bit-identical to the direct ``LBMConfig.wall_force`` path;
- ``rough`` — seeded random wall-height displacement
  (Kunert–Harting 2007);
- ``patterned`` — streamwise stripes of alternating slip
  (Ahmed–Hecht 2009).

Attach one to :class:`repro.lbm.LBMConfig` via its ``scenario`` field.
"""

from repro.scenarios.base import (
    Scenario,
    available_scenarios,
    get_scenario_class,
    register_scenario,
    scenario_from_doc,
)
from repro.scenarios.homogeneous import HomogeneousScenario
from repro.scenarios.patterned import PatternedScenario
from repro.scenarios.rough import RoughScenario

__all__ = [
    "HomogeneousScenario",
    "PatternedScenario",
    "RoughScenario",
    "Scenario",
    "available_scenarios",
    "get_scenario_class",
    "register_scenario",
    "scenario_from_doc",
]
