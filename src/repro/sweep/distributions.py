"""Parameter distributions for Monte Carlo sweeps.

Each distribution maps uniform variates in ``[0, 1)`` to parameter
values through its quantile function :meth:`Distribution.ppf` — the
piece both plain Monte Carlo and Latin hypercube sampling share: MC
feeds it i.i.d. uniforms, LHS feeds it one stratified uniform per
sample.  ``ppf`` is vectorized (an array of variates in, an array of
values out) and deterministic, so a sweep is a pure function of its
seed.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.util.validation import check_positive


class Distribution(abc.ABC):
    """One scalar parameter distribution (frozen dataclass subclasses)."""

    @abc.abstractmethod
    def ppf(self, u: np.ndarray) -> np.ndarray:
        """Quantile function: uniform variates in ``[0, 1)`` to values."""

    @abc.abstractmethod
    def doc(self) -> dict[str, Any]:
        """Canonical JSON-able description (for sweep provenance)."""

    def median(self) -> float:
        """The 50% quantile — the hold-at value for one-at-a-time
        sensitivity designs."""
        return float(self.ppf(np.asarray([0.5]))[0])


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (self.high > self.low):
            raise ValueError(
                f"need high > low, got [{self.low}, {self.high}]"
            )

    def ppf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=np.float64)
        return self.low + (self.high - self.low) * u

    def doc(self) -> dict[str, Any]:
        return {
            "kind": "uniform",
            "low": float(self.low),
            "high": float(self.high),
        }


@dataclass(frozen=True)
class LogUniform(Distribution):
    """Log-uniform on ``[low, high]`` (both must be positive) — the
    right prior for scale parameters like force amplitudes."""

    low: float
    high: float

    def __post_init__(self) -> None:
        check_positive(self.low, "low")
        if not (self.high > self.low):
            raise ValueError(
                f"need high > low > 0, got [{self.low}, {self.high}]"
            )

    def ppf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=np.float64)
        lo, hi = math.log(self.low), math.log(self.high)
        return np.exp(lo + (hi - lo) * u)

    def doc(self) -> dict[str, Any]:
        return {
            "kind": "log_uniform",
            "low": float(self.low),
            "high": float(self.high),
        }


@dataclass(frozen=True)
class Discrete(Distribution):
    """Equiprobable choice from a fixed value tuple — how integer knobs
    (pattern period, roughness seed) and deliberate duplicate-heavy
    workloads (few values, many samples) enter a sweep."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        values = tuple(float(v) for v in self.values)
        if not values:
            raise ValueError("Discrete needs at least one value")
        object.__setattr__(self, "values", values)

    def ppf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=np.float64)
        idx = np.minimum(
            (u * len(self.values)).astype(np.intp), len(self.values) - 1
        )
        return np.asarray(self.values, dtype=np.float64)[idx]

    def doc(self) -> dict[str, Any]:
        return {"kind": "discrete", "values": list(self.values)}
