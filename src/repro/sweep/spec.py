"""``SweepSpec``: a declarative Monte Carlo sweep over scenario knobs.

A sweep is a base :class:`~repro.lbm.solver.LBMConfig` carrying a wall
scenario, a set of :class:`SweepParameter` distributions over that
scenario's fields, and a sampling plan (plain MC or Latin hypercube,
seeded through :mod:`repro.util.rng`).  Compiling it yields plain
:class:`repro.api.RunSpec` lists, so the samples run on whichever
substrate the caller picks: :func:`repro.api.run_batch` stacks
compatible samples into batched ensembles, and :mod:`repro.serve`
additionally deduplicates repeated samples by content address — which
``repeats > 1`` produces on purpose (measurement replicas are free when
the physics is deterministic and cached).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api import RunSpec
from repro.lbm.solver import LBMConfig
from repro.sweep.distributions import Distribution
from repro.util.rng import make_rng
from repro.util.validation import check_integer

#: Recognized sampler names, in documentation order.
SAMPLERS = ("mc", "lhs")


@dataclass(frozen=True)
class SweepParameter:
    """One swept scenario field and its prior distribution."""

    name: str
    dist: Distribution

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("parameter name must be a non-empty string")
        if not isinstance(self.dist, Distribution):
            raise TypeError(
                f"dist must be a Distribution, got {type(self.dist).__name__}"
            )


@dataclass(frozen=True)
class SweepSpec:
    """A seeded Monte Carlo sweep over one scenario's parameters.

    Attributes
    ----------
    base_config:
        The channel everything else is held at; must carry a
        ``scenario`` (see :mod:`repro.scenarios`).
    phases:
        LBM phases per sample.
    parameters:
        The swept scenario fields with their distributions.
    n_samples:
        Number of distinct parameter samples to draw.
    seed:
        Sampling seed (via ``util.rng.make_rng``); the sample matrix is
        a pure function of the spec.
    sampler:
        ``"mc"`` (i.i.d. uniforms) or ``"lhs"`` (Latin hypercube: one
        stratified uniform per sample and dimension — better space
        coverage at the same budget).
    repeats:
        Times each sample is submitted (> 1 manufactures duplicate
        submissions for the serve cache to collapse).
    """

    base_config: LBMConfig
    phases: int
    parameters: tuple[SweepParameter, ...]
    n_samples: int = 16
    seed: int = 0
    sampler: str = "mc"
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.base_config.scenario is None:
            raise ValueError(
                "a sweep needs a base_config carrying a scenario — that is "
                "the object whose fields are swept"
            )
        parameters = tuple(self.parameters)
        if not parameters:
            raise ValueError("a sweep needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate sweep parameters: {names}")
        scenario_fields = {
            f.name for f in dataclasses.fields(self.base_config.scenario)
        }
        for name in names:
            if name not in scenario_fields:
                raise ValueError(
                    f"scenario {self.base_config.scenario.name!r} has no "
                    f"field {name!r}; have {sorted(scenario_fields)}"
                )
        check_integer(self.phases, "phases", minimum=1)
        check_integer(self.n_samples, "n_samples", minimum=1)
        check_integer(self.seed, "seed", minimum=0)
        check_integer(self.repeats, "repeats", minimum=1)
        if self.sampler not in SAMPLERS:
            raise ValueError(
                f"sampler must be one of {SAMPLERS}, got {self.sampler!r}"
            )
        object.__setattr__(self, "parameters", parameters)

    # ------------------------------------------------------------ sampling
    def _uniforms(self) -> np.ndarray:
        """The ``(n_samples, k)`` uniform design matrix."""
        rng = make_rng(self.seed)
        n, k = self.n_samples, len(self.parameters)
        if self.sampler == "mc":
            return rng.random((n, k))
        # LHS: each column visits every 1/n stratum exactly once, in a
        # random order, jittered within the stratum.
        u = np.empty((n, k), dtype=np.float64)
        for j in range(k):
            u[:, j] = (rng.permutation(n) + rng.random(n)) / n
        return u

    def samples(self) -> list[dict[str, Any]]:
        """The drawn parameter samples, in submission order.  Values for
        integer-typed scenario fields (period, seed, ...) are rounded to
        ``int`` so they construct valid scenarios."""
        u = self._uniforms()
        scenario = self.base_config.scenario
        columns: list[np.ndarray] = [
            p.dist.ppf(u[:, j]) for j, p in enumerate(self.parameters)
        ]
        out: list[dict[str, Any]] = []
        for i in range(self.n_samples):
            sample: dict[str, Any] = {}
            for j, p in enumerate(self.parameters):
                value = float(columns[j][i])
                current = getattr(scenario, p.name)
                if isinstance(current, bool):
                    raise TypeError(f"cannot sweep boolean field {p.name!r}")
                if isinstance(current, int):
                    value = int(round(value))
                sample[p.name] = value
            out.append(sample)
        return out

    def configs(self) -> list[LBMConfig]:
        """One :class:`LBMConfig` per sample: the base config with its
        scenario's swept fields replaced."""
        base = self.base_config
        return [
            dataclasses.replace(
                base, scenario=dataclasses.replace(base.scenario, **sample)
            )
            for sample in self.samples()
        ]

    def run_specs(self) -> list[RunSpec]:
        """The compiled submission list: every sample's ``RunSpec``,
        each repeated ``repeats`` times back to back."""
        return [
            RunSpec(config=config, phases=self.phases)
            for config in self.configs()
            for _ in range(self.repeats)
        ]

    # ---------------------------------------------------------- provenance
    def doc(self) -> dict[str, Any]:
        """Canonical JSON-able description (recorded in sweep results
        and benchmarks)."""
        return {
            "scenario": self.base_config.scenario.doc(),
            "phases": int(self.phases),
            "parameters": [
                {"name": p.name, "dist": p.dist.doc()} for p in self.parameters
            ],
            "n_samples": int(self.n_samples),
            "seed": int(self.seed),
            "sampler": self.sampler,
            "repeats": int(self.repeats),
        }
