"""Sensitivity summaries for scenario sweeps.

Two complementary views, mirroring the structure of classical
simulation sensitivity toolkits:

- **One-at-a-time** (:func:`one_at_a_time`): march each parameter
  through evenly spaced quantiles of its prior while holding the others
  at their medians, and report the slip response curve per parameter —
  cheap, interpretable, and exactly what the fig-roughness/fig-pattern
  curves are.
- **Variance-based** (:func:`variance_sensitivity`): from an existing
  Monte Carlo sample set, the correlation ratio (binned eta-squared)
  of the response against each parameter — a model-free estimate of the
  fraction of output variance each input explains, interactions
  included in aggregate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.api import RunSpec, run_batch
from repro.lbm.diagnostics import effective_slip_fraction
from repro.lbm.solver import LBMConfig
from repro.sweep.spec import SweepParameter
from repro.util.validation import check_integer


def _coerce(scenario: Any, name: str, value: float) -> Any:
    """Round *value* to ``int`` when the scenario field is int-typed
    (periods, seeds), so the replacement constructs a valid scenario."""
    current = getattr(scenario, name)
    if isinstance(current, bool):
        raise TypeError(f"cannot sweep boolean field {name!r}")
    if isinstance(current, int):
        return int(round(value))
    return float(value)


@dataclass(frozen=True)
class OATResult:
    """One parameter's one-at-a-time slip response."""

    parameter: str
    values: np.ndarray
    slips: np.ndarray

    @property
    def span(self) -> float:
        """Peak-to-peak slip response — the crudest sensitivity rank."""
        return float(self.slips.max() - self.slips.min())


def one_at_a_time(
    base_config: LBMConfig,
    phases: int,
    parameters: Sequence[SweepParameter],
    *,
    levels: int = 5,
    check_every: int = 0,
    tol: float = 0.0,
) -> list[OATResult]:
    """Run the one-at-a-time design on :func:`repro.api.run_batch`.

    For each parameter: *levels* evenly spaced prior quantiles
    (mid-stratum, ``(i + 0.5) / levels``), every other parameter pinned
    at its median.  All points across all parameters are submitted as
    one batch, so compatible points share stacked ensemble passes.
    """
    if base_config.scenario is None:
        raise ValueError("one_at_a_time needs a base_config with a scenario")
    check_integer(levels, "levels", minimum=2)
    parameters = list(parameters)
    medians = {
        p.name: _coerce(base_config.scenario, p.name, p.dist.median())
        for p in parameters
    }
    specs: list[RunSpec] = []
    layout: list[tuple[int, float]] = []  # (parameter index, swept value)
    for pi, p in enumerate(parameters):
        quantiles = (np.arange(levels, dtype=np.float64) + 0.5) / levels
        for raw in p.dist.ppf(quantiles):
            sample = dict(medians)
            sample[p.name] = _coerce(base_config.scenario, p.name, float(raw))
            scenario = dataclasses.replace(base_config.scenario, **sample)
            specs.append(
                RunSpec(
                    config=dataclasses.replace(
                        base_config, scenario=scenario
                    ),
                    phases=phases,
                )
            )
            layout.append((pi, float(sample[p.name])))
    results = run_batch(specs, check_every=check_every, tol=tol)
    slips = [effective_slip_fraction(r.solver()) for r in results]
    out: list[OATResult] = []
    for pi, p in enumerate(parameters):
        values = [v for (i, v), _ in zip(layout, slips) if i == pi]
        curve = [s for (i, _), s in zip(layout, slips) if i == pi]
        out.append(
            OATResult(
                parameter=p.name,
                values=np.asarray(values, dtype=np.float64),
                slips=np.asarray(curve, dtype=np.float64),
            )
        )
    return out


def variance_sensitivity(
    samples: Sequence[dict[str, Any]],
    values: Sequence[float] | np.ndarray,
    *,
    bins: int = 4,
) -> dict[str, float]:
    """Correlation ratio (binned eta-squared) of *values* against each
    parameter in *samples*: the between-bin variance of the response,
    with bins cut at the parameter's sample quantiles, as a fraction of
    the total variance.  Returns ``{parameter: eta2}`` with values in
    ``[0, 1]``; a flat response gives 0 everywhere.
    """
    check_integer(bins, "bins", minimum=2)
    if not samples:
        raise ValueError("need at least one sample")
    y = np.asarray(values, dtype=np.float64)
    if y.shape != (len(samples),):
        raise ValueError(
            f"values must have one entry per sample "
            f"({len(samples)}), got shape {y.shape}"
        )
    total_var = float(y.var())
    grand_mean = float(y.mean())
    out: dict[str, float] = {}
    for name in samples[0]:
        x = np.asarray([s[name] for s in samples], dtype=np.float64)
        edges = np.quantile(x, np.linspace(0.0, 1.0, bins + 1))
        idx = np.clip(
            np.searchsorted(edges, x, side="right") - 1, 0, bins - 1
        )
        between = 0.0
        for b in range(bins):
            sel = idx == b
            if sel.any():
                between += float(sel.mean()) * (
                    float(y[sel].mean()) - grand_mean
                ) ** 2
        out[name] = between / total_var if total_var > 0 else 0.0
    return out
