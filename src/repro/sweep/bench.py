"""The Monte Carlo sweep benchmark and its ``BENCH_sweep.json`` payload.

One MC sweep per scenario (homogeneous, rough, patterned) is served
through the :mod:`repro.serve` scheduler with ``repeats > 1`` — the
duplicate-heavy shape a real sensitivity study produces — and the
payload records, per scenario: samples, submissions, executions after
dedup, dedup ratio, cache hit-rate, throughput (samples/s) and cost per
executed lattice-point update (µs/point).  Every served result is
verified **bit-identical** against a direct standalone
:func:`repro.api.run` of the same spec, so the dedup numbers are earned
on exact physics, not approximate reuse.

The payload is shared by ``make bench-sweep`` (``python -m
repro.sweep``), the benchmark suite, and the CI ``scenarios`` job's
dedup-floor gate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.api import run
from repro.ckpt.io import atomic_write_json
from repro.lbm.components import ComponentSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9
from repro.lbm.solver import LBMConfig
from repro.scenarios import (
    HomogeneousScenario,
    PatternedScenario,
    RoughScenario,
    Scenario,
)
from repro.sweep.distributions import Discrete, Uniform
from repro.sweep.engine import SweepResult, run_sweep
from repro.sweep.spec import SweepParameter, SweepSpec

#: Default benchmark budget: the serve-bench channel, few phases, so the
#: sweep machinery (sampling, dedup, coalescing) dominates solver time.
DEFAULT_SHAPE = (12, 18)
DEFAULT_PHASES = 6
DEFAULT_SAMPLES = 6
DEFAULT_REPEATS = 3


def base_config(
    scenario: Scenario, shape: tuple[int, int] = DEFAULT_SHAPE
) -> LBMConfig:
    """The water/air microchannel all benchmark sweeps vary from."""
    return LBMConfig(
        geometry=ChannelGeometry(shape=shape, wall_axes=(1,)),
        components=(
            ComponentSpec("water", tau=1.0, rho_init=1.0),
            ComponentSpec("air", tau=1.0, rho_init=0.03),
        ),
        g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
        lattice=D2Q9,
        scenario=scenario,
        body_acceleration=(1e-6, 0.0),
    )


def scenario_sweeps(
    *,
    shape: tuple[int, int] = DEFAULT_SHAPE,
    phases: int = DEFAULT_PHASES,
    n_samples: int = DEFAULT_SAMPLES,
    repeats: int = DEFAULT_REPEATS,
    seed: int = 1234,
) -> dict[str, SweepSpec]:
    """One representative MC sweep per built-in scenario.

    Discrete priors are used where a realistic study would use them
    (pattern duty cycles, roughness levels) — they also manufacture
    exact duplicate samples at small budgets, exercising the dedup path
    twice over (repeats *and* prior collisions).
    """
    return {
        "homogeneous": SweepSpec(
            base_config=base_config(
                HomogeneousScenario(amplitude=0.05, decay_length=2.0),
                shape,
            ),
            phases=phases,
            parameters=(
                SweepParameter("amplitude", Uniform(0.02, 0.1)),
            ),
            n_samples=n_samples,
            seed=seed,
            sampler="lhs",
            repeats=repeats,
        ),
        "rough": SweepSpec(
            base_config=base_config(
                RoughScenario(
                    amplitude=0.05,
                    decay_length=2.0,
                    rms=0.8,
                    max_height=2,
                    seed=7,
                ),
                shape,
            ),
            phases=phases,
            parameters=(
                SweepParameter("amplitude", Uniform(0.02, 0.1)),
            ),
            n_samples=n_samples,
            seed=seed,
            sampler="lhs",
            repeats=repeats,
        ),
        "patterned": SweepSpec(
            base_config=base_config(
                PatternedScenario(
                    amplitude_hi=0.05, duty=0.5, decay_length=2.0
                ),
                shape,
            ),
            phases=phases,
            parameters=(
                SweepParameter("duty", Discrete((0.25, 0.5, 0.75))),
                SweepParameter("amplitude_hi", Discrete((0.04, 0.08))),
            ),
            n_samples=n_samples,
            seed=seed,
            sampler="mc",
            repeats=repeats,
        ),
    }


def verify_bit_identical(result: SweepResult) -> bool:
    """Check every *distinct* served sample against a direct standalone
    :func:`repro.api.run` of the same spec; raises ``AssertionError`` on
    the first divergence.  Needs ``run_sweep(..., keep_results=True)``."""
    if result.results is None:
        raise ValueError("run the sweep with keep_results=True to verify")
    repeats = result.spec.repeats
    specs = result.spec.run_specs()
    for sample in result.samples:
        served = result.results[sample.index * repeats]
        direct = run(specs[sample.index * repeats])
        if not np.array_equal(served.f, direct.f):
            raise AssertionError(
                f"served sample {sample.index} ({sample.params}) diverged "
                f"from a standalone run"
            )
    return True


def benchmark_sweep(
    *,
    shape: tuple[int, int] = DEFAULT_SHAPE,
    phases: int = DEFAULT_PHASES,
    n_samples: int = DEFAULT_SAMPLES,
    repeats: int = DEFAULT_REPEATS,
    workers: int = 2,
    seed: int = 1234,
    verify: bool = True,
) -> dict[str, Any]:
    """Serve one MC sweep per scenario and build the ``BENCH_sweep.json``
    payload."""
    scenarios: dict[str, Any] = {}
    for name, spec in scenario_sweeps(
        shape=shape,
        phases=phases,
        n_samples=n_samples,
        repeats=repeats,
        seed=seed,
    ).items():
        result = run_sweep(
            spec, via="serve", workers=workers, keep_results=verify
        )
        if verify:
            verify_bit_identical(result)
        scenarios[name] = {
            "samples": spec.n_samples,
            "submissions": result.submissions,
            "executions": result.executions,
            "dedup_ratio": round(result.dedup_ratio, 3),
            "cache_hit_rate": round(result.cache_hit_rate, 3),
            "samples_per_second": round(result.samples_per_second, 2),
            "us_per_point": round(result.us_per_point, 3),
            "mean_slip": round(
                float(result.slip_array().mean()), 6
            ),
            "verified_bit_identical": bool(verify),
        }
    return {
        "sweep": {
            "shape": list(shape),
            "phases": phases,
            "repeats": repeats,
            "workers": workers,
            "unit": "samples_per_second",
            "scenarios": scenarios,
        }
    }


def write_bench(payload: dict[str, Any], path: str | Path) -> None:
    """Atomically publish the benchmark payload."""
    atomic_write_json(path, payload)
