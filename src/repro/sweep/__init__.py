"""repro.sweep — Monte Carlo sweeps over wall-physics scenarios.

A :class:`SweepSpec` samples a :mod:`repro.scenarios` scenario's
parameters from uniform / log-uniform / discrete priors (plain MC or
Latin hypercube, seeded through :mod:`repro.util.rng`), compiles the
samples to :class:`repro.api.RunSpec` lists, and :func:`run_sweep`
executes them on the batched-ensemble substrate
(:func:`repro.api.run_batch`) or through the :mod:`repro.serve`
scheduler — where repeated samples deduplicate for free — then
aggregates effective slip per sample.  :mod:`repro.sweep.sensitivity`
adds one-at-a-time and variance-based summaries;
``python -m repro.sweep`` runs the benchmark behind
``BENCH_sweep.json``.  See docs/SCENARIOS.md.
"""

from repro.sweep.distributions import Discrete, Distribution, LogUniform, Uniform
from repro.sweep.engine import SampleResult, SweepResult, run_sweep
from repro.sweep.sensitivity import (
    OATResult,
    one_at_a_time,
    variance_sensitivity,
)
from repro.sweep.spec import SweepParameter, SweepSpec

__all__ = [
    "Discrete",
    "Distribution",
    "LogUniform",
    "OATResult",
    "SampleResult",
    "SweepParameter",
    "SweepResult",
    "SweepSpec",
    "Uniform",
    "one_at_a_time",
    "run_sweep",
    "variance_sensitivity",
]
