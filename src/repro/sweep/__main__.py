"""``python -m repro.sweep`` — run the per-scenario MC sweep benchmark
and print (or publish) the service-level numbers.

    python -m repro.sweep                        # print the table
    python -m repro.sweep --json BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import sys

from repro.sweep.bench import benchmark_sweep, write_bench
from repro.util.tables import format_table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Monte Carlo scenario sweeps served with dedup.",
    )
    parser.add_argument("--samples", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--phases", type=int, default=6)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bitwise standalone cross-check (faster)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the BENCH_sweep.json payload",
    )
    args = parser.parse_args(argv)

    payload = benchmark_sweep(
        n_samples=args.samples,
        repeats=args.repeats,
        phases=args.phases,
        workers=args.workers,
        seed=args.seed,
        verify=not args.no_verify,
    )
    rows = [
        (
            name,
            row["samples"],
            row["submissions"],
            row["executions"],
            f"{row['dedup_ratio']:.3f}",
            f"{row['cache_hit_rate']:.3f}",
            f"{row['samples_per_second']:.2f}",
            f"{row['us_per_point']:.3f}",
            "yes" if row["verified_bit_identical"] else "no",
        )
        for name, row in payload["sweep"]["scenarios"].items()
    ]
    print(
        format_table(
            (
                "scenario",
                "samples",
                "subs",
                "execs",
                "dedup",
                "hit-rate",
                "samples/s",
                "us/point",
                "verified",
            ),
            rows,
        )
    )
    if args.json is not None:
        write_bench(payload, args.json)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
