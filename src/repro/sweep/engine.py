"""The Monte Carlo sweep engine: compile, execute, aggregate.

:func:`run_sweep` takes a :class:`~repro.sweep.spec.SweepSpec` and runs
it on one of two substrates:

- ``via="batch"`` — the compiled specs go to :func:`repro.api.run_batch`,
  which stacks batch-compatible samples (same scenario geometry, swept
  scalar knobs) into ``(N, C, Q, *S)`` ensemble passes;
- ``via="serve"`` — the specs are submitted to a
  :class:`repro.serve.Scheduler`, whose content-addressed cache and
  in-flight joining collapse repeated samples (``repeats > 1`` or a
  duplicate-heavy ``Discrete`` prior) into single executions, and whose
  coalescer still batches what remains.

Either way each distinct sample's final state is reduced to the
effective slip measures of :mod:`repro.lbm.diagnostics` (streamwise
averaged, so rough and patterned walls are measured correctly), and the
engine reports submissions/executions/dedup accounting plus ``sweep.*``
observability.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api import RunResult, RunSpec, run_batch
from repro.lbm.diagnostics import (
    apparent_slip_fraction,
    effective_slip_fraction,
)
from repro.obs.observer import NULL_OBSERVER, ObserverLike, resolve_observer
from repro.sweep.spec import SweepSpec

#: Recognized execution substrates.
SUBSTRATES = ("batch", "serve")


@dataclass(frozen=True)
class SampleResult:
    """One distinct sample's parameters and aggregated observables."""

    index: int
    params: dict[str, Any]
    fingerprint: str
    slip: float
    #: Parabolic-core-fit slip (``None`` when the channel is too narrow
    #: for a core fit at the requested boundary layer).
    apparent_slip: float | None
    steps: int


@dataclass
class SweepResult:
    """Everything :func:`run_sweep` measured."""

    spec: SweepSpec
    via: str
    samples: tuple[SampleResult, ...]
    elapsed_s: float
    #: RunSpecs submitted (distinct samples × repeats).
    submissions: int
    #: Primary executions actually performed (serve: after dedup).
    executions: int
    #: Fraction of submissions the serve layer absorbed without running
    #: (0.0 on the batch substrate, which executes everything).
    dedup_ratio: float
    cache_hit_rate: float
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Per-submission :class:`RunResult` records, submission order; kept
    #: only when :func:`run_sweep` ran with ``keep_results=True`` (the
    #: bitwise verification hook of ``repro.sweep.bench``).
    results: list[RunResult] | None = None

    def param_array(self, name: str) -> np.ndarray:
        """The swept values of *name* across samples, in sample order."""
        return np.asarray(
            [s.params[name] for s in self.samples], dtype=np.float64
        )

    def slip_array(self) -> np.ndarray:
        return np.asarray([s.slip for s in self.samples], dtype=np.float64)

    @property
    def samples_per_second(self) -> float:
        """Served submissions per wall-clock second (cache wins count —
        that is the point of serving a sweep)."""
        return self.submissions / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def us_per_point(self) -> float:
        """Wall-clock cost per *executed* lattice-point update."""
        points = (
            self.executions
            * int(self.spec.phases)
            * int(np.prod(self.spec.base_config.geometry.shape))
        )
        return self.elapsed_s / max(points, 1) * 1e6


def _serve_rounds(
    rounds: list[list[RunSpec]],
    *,
    workers: int,
    coalesce: int | None,
    observer: ObserverLike,
    check_every: int,
    tol: float,
) -> tuple[list[list[RunResult]], dict[str, Any]]:
    """Serve the submission *rounds* on one Scheduler, awaiting each
    round before the next — the repeated-study client shape: round one
    executes (duplicate samples join in flight), later rounds land in
    the content-addressed cache.  Returns per-round results plus the
    scheduler's dedup accounting."""
    from repro.serve import Scheduler

    async def _main() -> tuple[list[list[RunResult]], dict[str, Any]]:
        out: list[list[RunResult]] = []
        async with Scheduler(
            workers=workers,
            coalesce=coalesce,
            observer=observer,
            check_every=check_every,
            tol=tol,
        ) as sched:
            for specs in rounds:
                job_ids = [await sched.submit(s) for s in specs]
                out.append([await sched.result(j) for j in job_ids])
            stats = {
                "submissions": sched.submissions,
                "executions": sched.executions,
                "dedup_ratio": sched.dedup_ratio(),
                "cache_hit_rate": sched.cache.hit_rate(),
            }
        return out, stats

    return asyncio.run(_main())


def run_sweep(
    spec: SweepSpec,
    *,
    via: str = "batch",
    check_every: int = 0,
    tol: float = 0.0,
    observer: ObserverLike = NULL_OBSERVER,
    workers: int = 2,
    coalesce: int | None = None,
    boundary_layer: float = 4.0,
    keep_results: bool = False,
) -> SweepResult:
    """Execute *spec* on the chosen substrate and aggregate slip
    observables per distinct sample (the first repeat of each — repeats
    are bit-identical by the determinism contract, which the serve cache
    exploits rather than re-verifies here; see ``repro.sweep.bench`` for
    the explicit bitwise check)."""
    if via not in SUBSTRATES:
        raise ValueError(f"via must be one of {SUBSTRATES}, got {via!r}")
    obs = resolve_observer(observer)
    specs = spec.run_specs()
    start = time.perf_counter()
    if via == "serve":
        # Round-major submission: each repeat round re-submits every
        # distinct sample, so rounds past the first are cache material.
        per_round = [
            RunSpec(config=config, phases=spec.phases)
            for config in spec.configs()
        ]
        round_results, stats = _serve_rounds(
            [per_round] * spec.repeats,
            workers=workers,
            coalesce=coalesce,
            observer=obs,
            check_every=check_every,
            tol=tol,
        )
        # Back to the sample-major order of spec.run_specs().
        results = [
            round_results[r][i]
            for i in range(spec.n_samples)
            for r in range(spec.repeats)
        ]
    else:
        results = run_batch(
            specs, check_every=check_every, tol=tol, observer=obs
        )
        stats = {
            "submissions": len(specs),
            "executions": len(specs),
            "dedup_ratio": 0.0,
            "cache_hit_rate": 0.0,
        }
    elapsed = time.perf_counter() - start

    samples: list[SampleResult] = []
    for i, params in enumerate(spec.samples()):
        result = results[i * spec.repeats]
        solver = result.solver()
        slip = effective_slip_fraction(solver)
        try:
            apparent: float | None = effective_slip_fraction(
                solver,
                measure=lambda p: apparent_slip_fraction(
                    p, boundary_layer=boundary_layer
                ),
            )
        except ValueError:
            apparent = None  # channel too narrow for a core fit
        samples.append(
            SampleResult(
                index=i,
                params=params,
                fingerprint=specs[i * spec.repeats].fingerprint(),
                slip=slip,
                apparent_slip=apparent,
                steps=solver.step_count,
            )
        )

    sweep_result = SweepResult(
        spec=spec,
        via=via,
        samples=tuple(samples),
        elapsed_s=elapsed,
        submissions=int(stats["submissions"]),
        executions=int(stats["executions"]),
        dedup_ratio=float(stats["dedup_ratio"]),
        cache_hit_rate=float(stats["cache_hit_rate"]),
        results=list(results) if keep_results else None,
    )
    if obs.enabled:
        obs.counter("sweep.samples").add(spec.n_samples)
        obs.counter("sweep.submissions").add(sweep_result.submissions)
        obs.counter("sweep.executions").add(sweep_result.executions)
        obs.gauge("sweep.dedup_ratio").set(sweep_result.dedup_ratio)
        obs.gauge("sweep.cache_hit_rate").set(sweep_result.cache_hit_rate)
        obs.gauge("sweep.samples_per_second").set(
            sweep_result.samples_per_second
        )
        obs.gauge("sweep.us_per_point").set(sweep_result.us_per_point)
        obs.emit(
            "sweep.run",
            scenario=spec.base_config.scenario.name,
            via=via,
            samples=spec.n_samples,
            submissions=sweep_result.submissions,
            executions=sweep_result.executions,
            dedup_ratio=sweep_result.dedup_ratio,
            cache_hit_rate=sweep_result.cache_hit_rate,
            us_per_point=sweep_result.us_per_point,
        )
        obs.emit_metrics()
        sweep_result.metrics = {
            "sweep.samples_per_second": sweep_result.samples_per_second,
            "sweep.dedup_ratio": sweep_result.dedup_ratio,
            "sweep.us_per_point": sweep_result.us_per_point,
        }
    return sweep_result
