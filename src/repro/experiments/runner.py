"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments.runner all --fast
    python -m repro.experiments.runner fig9 table1
    repro-experiments fig7            # console script

``--fast`` shrinks phase counts / grids by roughly an order of magnitude
so the whole suite completes in a couple of minutes; default settings
match the paper's configurations (20 000-phase Figure 8 takes the
longest).
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable

from repro.config import set_discovery_env
from repro.obs.observer import observer_from_env
from repro.parallel.launch import TRANSPORTS

from repro.experiments import (
    ext_adaptation,
    ext_decomposition,
    ext_resolution,
    ext_scenarios,
    ext_slip_sweep,
    ext_heterogeneous,
    fig3_disturbance,
    fig6_density,
    fig7_velocity,
    fig8_speedup,
    fig9_profile,
    fig10_schemes,
    fig_serve,
    table1_spikes,
    validation,
)
from repro.experiments.report import Report

EXPERIMENTS: dict[str, Callable[..., Report]] = {
    "fig3": fig3_disturbance.run,
    "fig6": fig6_density.run,
    "fig7": fig7_velocity.run,
    "fig8": fig8_speedup.run,
    "fig8-transport": fig8_speedup.transports_run,
    "fig-serve": fig_serve.run,
    "fig9": fig9_profile.run,
    "fig10": fig10_schemes.run,
    "table1": table1_spikes.run,
    "validation": validation.run,
    "ext-adaptation": ext_adaptation.run,
    "ext-slip-sweep": ext_slip_sweep.run,
    "ext-resolution": ext_resolution.run,
    "ext-decomposition": ext_decomposition.run,
    "ext-heterogeneous": ext_heterogeneous.run,
    "fig-roughness": ext_scenarios.run_roughness,
    "fig-pattern": ext_scenarios.run_pattern,
}

ORDER = (
    "validation",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig8-transport",
    "fig-serve",
    "fig9",
    "fig10",
    "table1",
    "ext-decomposition",
    "ext-heterogeneous",
    "ext-adaptation",
    "ext-slip-sweep",
    "ext-resolution",
    "fig-roughness",
    "fig-pattern",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment ids, or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down settings (~10x fewer phases / smaller grids)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write a repro.obs JSONL trace of the run: per-experiment "
            "spans here, plus solver/driver/simulator events from every "
            "instrumented layer (equivalent to REPRO_OBS_TRACE=PATH; "
            "inspect with 'python -m repro.obs.report summary PATH')"
        ),
    )
    parser.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default=None,
        help=(
            "parallel transport for every run in the process: 'threads' "
            "(in-process emulated ranks, the default) or 'processes' "
            "(forked ranks over shared memory; equivalent to "
            "REPRO_TRANSPORT=processes)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help=(
            "checkpoint every solver run under DIR (repro.ckpt store; "
            "one subdirectory per configuration; equivalent to "
            "REPRO_CKPT_DIR=DIR)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        metavar="N",
        type=int,
        default=0,
        help="snapshot interval in steps (with --checkpoint-dir)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume each run from its latest good checkpoint under "
            "--checkpoint-dir (interrupted experiments continue "
            "bit-exactly)"
        ),
    )
    args = parser.parse_args(argv)

    if (args.checkpoint_every or args.resume) and not args.checkpoint_dir:
        parser.error("--checkpoint-every/--resume need --checkpoint-dir")
    # CLI flags are published as the same REPRO_* discovery variables a
    # user could have exported, so the instrumented layers (observer,
    # checkpoint policy, transport resolution) pick them up without any
    # per-experiment plumbing.
    set_discovery_env(
        trace=args.trace,
        transport=args.transport,
        ckpt_dir=args.checkpoint_dir,
        ckpt_every=args.checkpoint_every if args.checkpoint_dir else None,
        ckpt_resume=args.resume if args.checkpoint_dir else None,
    )
    obs = observer_from_env()

    names = list(ORDER) if "all" in args.experiments else args.experiments
    for name in names:
        start = time.perf_counter()
        if obs.enabled:
            obs.emit("experiment_start", name=name, fast=args.fast)
        report = EXPERIMENTS[name](fast=args.fast)
        elapsed = time.perf_counter() - start
        if obs.enabled:
            obs.emit("experiment_end", name=name, duration=elapsed)
        print(report)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    if obs.enabled:
        obs.emit_metrics()
        obs.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
