"""Table 1: tolerance of transient load spikes.

The paper's workload: every 10 seconds a random node runs a 70%-CPU
background job for 1-4 seconds; 100 LBM phases.  Reported is the slowdown
ratio of each scheme relative to the dedicated run.  The paper's values:

    spike   no-remap  global  filtered  conservative
    1 s     7.4%      5.8%    6.7%      10.9%
    2 s     11.9%     37.2%   15.6%     16.0%
    3 s     23.7%     40.9%   23.3%     24.9%
    4 s     35.6%     49.5%   38.1%     39.8%

i.e. the lazy local schemes track no-remapping closely (re-balancing has
no value when every node is equally likely to spike), while the global
scheme pays dearly for its synchronization.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import paper_cluster
from repro.cluster.simulator import simulate
from repro.cluster.workload import dedicated_traces, transient_spike_traces
from repro.core.policies import make_policy
from repro.experiments.report import Report
from repro.util.tables import format_table

ORDER = ("no-remap", "global", "filtered", "conservative")

PAPER_TABLE1 = {
    1: {"no-remap": 7.4, "global": 5.8, "filtered": 6.7, "conservative": 10.9},
    2: {"no-remap": 11.9, "global": 37.2, "filtered": 15.6, "conservative": 16.0},
    3: {"no-remap": 23.7, "global": 40.9, "filtered": 23.3, "conservative": 24.9},
    4: {"no-remap": 35.6, "global": 49.5, "filtered": 38.1, "conservative": 39.8},
}


def run(
    fast: bool = False,
    *,
    phases: int = 100,
    spike_lengths: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0),
    seeds: tuple[int, ...] = (42, 43, 44),
) -> Report:
    if fast:
        seeds = seeds[:1]

    ded_spec = paper_cluster(dedicated_traces(20))
    dedicated = simulate(ded_spec, make_policy("no-remap"), phases).total_time

    rows = []
    table: dict[float, dict[str, float]] = {}
    for length in spike_lengths:
        per_scheme: dict[str, float] = {}
        for name in ORDER:
            ratios = []
            for seed in seeds:
                spec = paper_cluster(
                    transient_spike_traces(20, length, seed=seed)
                )
                result = simulate(spec, make_policy(name), phases)
                ratios.append(
                    100.0 * (result.total_time - dedicated) / dedicated
                )
            per_scheme[name] = float(np.mean(ratios))
        table[length] = per_scheme
        paper = PAPER_TABLE1.get(int(length), {})
        rows.append(
            (
                f"{length:.0f} s",
                *(per_scheme[n] for n in ORDER),
                *(paper.get(n, float("nan")) for n in ORDER),
            )
        )

    text = format_table(
        ["spike"]
        + [f"{n} (%)" for n in ORDER]
        + [f"paper {n} (%)" for n in ORDER],
        rows,
        title=(
            f"Slowdown ratio vs. dedicated, {phases} phases, random node "
            f"spiked every 10 s (mean over {len(seeds)} seed(s))"
        ),
        float_fmt="{:.1f}",
    )
    return Report(
        name="table1",
        title="Slowdown ratio under transient load spikes",
        text=text,
        data={"table": table, "dedicated": dedicated},
    )
