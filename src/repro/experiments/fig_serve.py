"""Service-load experiment: the scheduler against naive submission.

The paper's cluster ran one decomposed simulation at a time; the serve
layer's claim is that a duplicate-heavy client population (the
related-work parameter studies: hundreds of near-identical specs
differing in a few scalars) can be absorbed at a multiple of the naive
throughput by content-addressed dedup, in-flight joining and batched
coalescing.  This experiment measures that claim on real hardware and
publishes it as ``BENCH_serve.json``: sustained jobs/sec, p50/p99
latency, cache hit-rate and dedup ratio at duplicate fractions
{0, 0.5, 0.9}, each verified bit-identical against direct
:func:`repro.api.run` calls.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.report import Report
from repro.serve.bench import (
    DUPLICATE_FRACTIONS,
    benchmark_serve,
    write_bench,
)
from repro.util.tables import format_table

BENCH_JSON = Path(__file__).resolve().parents[3] / "BENCH_serve.json"


def run(
    fast: bool = False,
    *,
    n_jobs: int = 64,
    clients: int = 8,
    workers: int = 2,
    coalesce: int = 8,
    phases: int = 6,
    bench_path: str | Path | None = BENCH_JSON,
) -> Report:
    """Sweep duplicate fractions, verify bit-identity, write
    ``BENCH_serve.json`` and render the service-level table."""
    if fast:
        n_jobs = max(16, n_jobs // 4)
    payload = benchmark_serve(
        n_jobs=n_jobs,
        clients=clients,
        workers=workers,
        coalesce=coalesce,
        fractions=DUPLICATE_FRACTIONS,
        phases=phases,
    )
    if bench_path is not None:
        write_bench(payload, bench_path)

    section = payload["serve"]
    rows = [
        (
            frac,
            values["jobs_per_second"],
            values["sequential_jobs_per_second"],
            values["speedup_vs_sequential"],
            1e3 * values["p50_latency_seconds"],
            1e3 * values["p99_latency_seconds"],
            values["cache_hit_rate"],
            values["dedup_ratio"],
        )
        for frac, values in sorted(section["duplicates"].items())
    ]
    text = format_table(
        ["dup frac", "served jobs/s", "naive jobs/s", "speedup",
         "p50 (ms)", "p99 (ms)", "hit rate", "dedup"],
        rows,
        title=(
            f"{n_jobs} jobs from {clients} async clients, "
            f"{workers} workers, coalesce {coalesce}, "
            f"{phases}-phase specs on grid {tuple(section['shape'])}; "
            "every served result verified bit-identical to direct run()"
        ),
    )
    return Report(
        name="fig-serve",
        title="Scheduler throughput under synthetic duplicate-heavy load",
        text=text,
        data=payload,
    )
