"""Extension experiment (not in the paper): remapping schemes on a
permanently heterogeneous cluster.

The paper's filtered scheme targets *localized, contended* slow nodes.
A natural follow-up question — flagged as a design-space boundary in
DESIGN.md — is what happens on a cluster that is merely *heterogeneous*
(half the nodes are an older hardware generation, dedicated but slower).
There, neighbour-local balancing can only diffuse load across the
fast/slow frontier, while the global scheme's proportional assignment is
optimal and its collective is cheap (no contended nodes to delay it).
"""

from __future__ import annotations

from repro.cluster.machine import paper_cluster
from repro.cluster.simulator import simulate
from repro.cluster.workload import heterogeneous_traces
from repro.core.policies import make_policy
from repro.experiments.report import Report
from repro.util.tables import format_table

ORDER = ("no-remap", "filtered", "conservative", "diffusion", "global")


def run(
    fast: bool = False,
    *,
    phases: int = 2000,
    slow_speed: float = 0.5,
    n_slow: int = 10,
) -> Report:
    if fast:
        phases = max(200, phases // 10)
    speeds = [1.0] * (20 - n_slow) + [slow_speed] * n_slow

    rows = []
    totals: dict[str, float] = {}
    moved: dict[str, int] = {}
    for name in ORDER:
        spec = paper_cluster(heterogeneous_traces(speeds))
        result = simulate(spec, make_policy(name), phases)
        totals[name] = result.total_time
        moved[name] = result.planes_moved
        rows.append((name, result.total_time, result.planes_moved))

    text = format_table(
        ["scheme", "total (s)", "planes moved"],
        rows,
        title=(
            f"{phases} phases; {20 - n_slow} fast nodes + {n_slow} dedicated "
            f"nodes at {slow_speed:.0%} speed (no contention)"
        ),
        float_fmt="{:.1f}",
    )
    summary = (
        "\nOn static heterogeneity the global proportional assignment wins "
        "(cheap collectives, one-shot balance).  The local schemes only "
        "exchange load across the fast/slow frontier and plateau once every "
        "window's deficit falls under the lazy one-plane threshold — deep "
        "slow nodes, whose windows are uniformly slow and evenly loaded, "
        "never shed at all.  The filtered scheme is purpose-built for "
        "localized contention, not global speed gradients; this experiment "
        "marks that design boundary."
    )
    return Report(
        name="ext-heterogeneous",
        title="Remapping schemes on a heterogeneous (non-contended) cluster",
        text=text + summary,
        data={"totals": totals, "planes_moved": moved, "phases": phases},
    )
