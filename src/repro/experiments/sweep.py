"""Batch sweep harness: run a grid of cluster scenarios x policies and
tabulate/export the results.

Used for custom studies beyond the paper's figures::

    from repro.cluster.scenario import Scenario
    from repro.experiments.sweep import sweep, sweep_to_csv

    rows = sweep(
        scenarios={f"{k} slow": Scenario(params={"slow_nodes": list(range(k))})
                   for k in (1, 2, 3)},
        policies=("no-remap", "filtered"),
        phases=600,
    )
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, replace
from pathlib import Path

from repro.ckpt.io import atomic_open
from repro.cluster.scenario import Scenario
from repro.core.policies import POLICY_NAMES
from repro.util.tables import format_table


@dataclass(frozen=True)
class SweepRow:
    """One (scenario, policy) measurement."""

    scenario: str
    policy: str
    total_time: float
    planes_moved: int
    final_max_planes: int


def sweep(
    scenarios: Mapping[str, Scenario],
    policies: Iterable[str] = POLICY_NAMES,
    *,
    phases: int | None = None,
) -> list[SweepRow]:
    """Run every scenario under every policy.

    *phases*, when given, overrides each scenario's phase count.
    """
    if not scenarios:
        raise ValueError("need at least one scenario")
    rows: list[SweepRow] = []
    for label, scenario in scenarios.items():
        for policy in policies:
            if policy not in POLICY_NAMES:
                raise ValueError(f"unknown policy {policy!r}")
            configured = replace(
                scenario,
                policy=policy,
                phases=phases if phases is not None else scenario.phases,
            )
            result = configured.run()
            rows.append(
                SweepRow(
                    scenario=label,
                    policy=policy,
                    total_time=result.total_time,
                    planes_moved=result.planes_moved,
                    final_max_planes=max(result.final_plane_counts),
                )
            )
    return rows


def sweep_table(rows: list[SweepRow], *, title: str | None = None) -> str:
    """Render sweep rows as an ASCII table."""
    return format_table(
        ["scenario", "policy", "total (s)", "planes moved", "max planes"],
        [
            (r.scenario, r.policy, r.total_time, r.planes_moved, r.final_max_planes)
            for r in rows
        ],
        title=title,
        float_fmt="{:.1f}",
    )


def sweep_to_csv(rows: list[SweepRow], path: str | Path) -> None:
    """Export sweep rows to CSV."""
    if not rows:
        raise ValueError("no rows to export")
    with atomic_open(Path(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["scenario", "policy", "total_time_s", "planes_moved", "max_planes"]
        )
        for r in rows:
            writer.writerow(
                [
                    r.scenario,
                    r.policy,
                    f"{r.total_time:.3f}",
                    r.planes_moved,
                    r.final_max_planes,
                ]
            )


def read_sweep_csv(path: str | Path) -> list[SweepRow]:
    """Read back a CSV written by :func:`sweep_to_csv`."""
    rows: list[SweepRow] = []
    with open(Path(path), newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames != [
            "scenario",
            "policy",
            "total_time_s",
            "planes_moved",
            "max_planes",
        ]:
            raise ValueError(f"not a sweep CSV: header {reader.fieldnames}")
        for record in reader:
            rows.append(
                SweepRow(
                    scenario=record["scenario"],
                    policy=record["policy"],
                    total_time=float(record["total_time_s"]),
                    planes_moved=int(record["planes_moved"]),
                    final_max_planes=int(record["max_planes"]),
                )
            )
    return rows
