"""Extension experiment: static decomposition choices (paper Section 2.2).

The paper slices the channel along x "because of the special geometry in
our application".  This experiment quantifies the alternatives the prior
work used (box and cubic partitioning): halo surface per node, neighbour
counts, and estimated per-phase communication time, for the paper's
400 x 200 x 20 grid on 20 nodes and for an isotropic control grid.
"""

from __future__ import annotations

from repro.cluster.costmodel import PAPER_COST_MODEL
from repro.experiments.report import Report
from repro.parallel.static_decomposition import best_plan, compare_kinds
from repro.util.tables import format_table

#: Bytes exchanged per halo point per phase: 5 x-leaning directions of
#: both components plus the density, in float64.
BYTES_PER_HALO_POINT = (5 * 2 + 2) * 8.0


def run(
    fast: bool = False,
    *,
    n_processors: int = 20,
) -> Report:
    del fast  # analysis is instantaneous either way
    sections = []
    data: dict[str, dict] = {}
    for label, grid in (
        ("paper channel 400x200x20", (400, 200, 20)),
        ("isotropic control 128x128x128", (128, 128, 128)),
    ):
        kinds = compare_kinds(
            grid, n_processors, cost_model=PAPER_COST_MODEL,
            bytes_per_point=BYTES_PER_HALO_POINT,
        )
        rows = []
        entry = {}
        for kind in ("slice", "box", "cubic"):
            if kind not in kinds:
                continue
            plan = kinds[kind]
            cost_ms = 1000.0 * plan.phase_comm_cost(
                PAPER_COST_MODEL, BYTES_PER_HALO_POINT
            )
            rows.append(
                (
                    kind,
                    "x".join(map(str, plan.proc_grid)),
                    plan.halo_surface(),
                    plan.neighbour_count(),
                    cost_ms,
                )
            )
            entry[kind] = {
                "proc_grid": plan.proc_grid,
                "surface": plan.halo_surface(),
                "neighbours": plan.neighbour_count(),
                "cost_ms": cost_ms,
            }
        data[label] = entry
        winner = best_plan(
            grid, n_processors, by="cost",
            cost_model=PAPER_COST_MODEL, bytes_per_point=BYTES_PER_HALO_POINT,
        )
        sections.append(
            format_table(
                ["kind", "proc grid", "halo surface (pts)", "neighbours", "comm/phase (ms)"],
                rows,
                title=f"{label} over {n_processors} processors",
                float_fmt="{:.1f}",
            )
            + f"\nlowest-cost plan: {'x'.join(map(str, winner.proc_grid))}\n"
        )
    summary = (
        "On the paper's long, thin channel the 1-D x-slice wins on "
        "communication time (fewest, largest messages) even though a box "
        "decomposition has less halo surface — matching the paper's choice."
    )
    return Report(
        name="ext-decomposition",
        title="Slice vs. box vs. cubic static decomposition",
        text="\n".join(sections) + summary,
        data=data,
    )
