"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes ``run(fast=False, ...) -> Report``; the
:mod:`repro.experiments.runner` CLI regenerates any of them::

    python -m repro.experiments.runner fig3 fig6 fig7 fig8 fig9 fig10 table1
    python -m repro.experiments.runner all --fast

Reports print the same rows/series the paper shows, side by side with the
paper's reference values where the paper states them.
"""

from repro.experiments.report import Report

__all__ = ["Report"]
