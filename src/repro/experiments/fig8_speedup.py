"""Figure 8: speedup and normalized efficiency with 20 000 phases.

The paper: close-to-linear dedicated speedup (18.97 on 20 nodes); with
filtered dynamic remapping the speedup degrades gracefully with the number
of fixed slow nodes (about 16 at one slow node, 13 at five), while without
remapping it collapses; the normalized efficiency speedup/(20 - 0.7 m)
stays near 90% below four slow nodes and ~80% at five.
"""

from __future__ import annotations

from repro.cluster.machine import paper_cluster
from repro.cluster.metrics import normalized_efficiency
from repro.cluster.simulator import simulate
from repro.cluster.workload import fixed_slow_traces
from repro.core.policies import make_policy
from repro.experiments.report import Report
from repro.util.tables import format_table

#: Node indices turned slow, in order, as more slow nodes are requested
#: (spread over the array like shared-cluster jobs would land).
SLOW_ORDER = (9, 3, 14, 6, 17)

PAPER_SPEEDUP = {0: 18.97, 1: 16.0, 5: 13.0}


def run(
    fast: bool = False,
    *,
    phases: int = 20_000,
    max_slow: int = 5,
    jitter: float = 0.06,
    seed: int = 7,
) -> Report:
    if fast:
        phases = max(500, phases // 20)

    rows = []
    data: dict[str, list[float]] = {
        "n_slow": [],
        "speedup_remap": [],
        "speedup_noremap": [],
        "efficiency_remap": [],
        "efficiency_noremap": [],
    }
    for k in range(max_slow + 1):
        traces_args = dict(jitter=jitter, seed=seed)
        row: list[object] = [k]
        for policy_name, s_key, e_key in (
            ("filtered", "speedup_remap", "efficiency_remap"),
            ("no-remap", "speedup_noremap", "efficiency_noremap"),
        ):
            spec = paper_cluster(
                fixed_slow_traces(20, SLOW_ORDER[:k], **traces_args)
            )
            result = simulate(spec, make_policy(policy_name), phases)
            s = result.speedup_vs_sequential(spec)
            eff = normalized_efficiency(s, 20, k)
            row.extend([s, eff])
            data[s_key].append(s)
            data[e_key].append(eff)
        data["n_slow"].append(k)
        rows.append(tuple(row))

    text = format_table(
        [
            "#slow",
            "speedup (remap)",
            "efficiency (remap)",
            "speedup (no remap)",
            "efficiency (no remap)",
        ],
        rows,
        title=(
            f"{phases} phases, 20 nodes, fixed slow nodes at 70% background "
            f"(paper: 18.97 dedicated, ~16 @1 slow, ~13 @5 slow with "
            f"remapping; ~90% efficiency below 4 slow, ~80% at 5)"
        ),
        float_fmt="{:.2f}",
    )
    return Report(
        name="fig8",
        title="Speedup and normalized efficiency vs. number of slow nodes",
        text=text,
        data=data,
    )


def dedicated_speedup_sweep(
    phases: int = 2000, node_counts: tuple[int, ...] = (1, 2, 4, 8, 10, 16, 20)
) -> Report:
    """The paper's Section 4.2 claim of near-linear dedicated speedup
    (18.97 with 20 nodes)."""
    rows = []
    speedups = []
    for p in node_counts:
        spec = paper_cluster(None, n_nodes=p)
        result = simulate(spec, make_policy("no-remap"), phases)
        s = result.speedup_vs_sequential(spec)
        rows.append((p, s, s / p))
        speedups.append(s)
    text = format_table(
        ["nodes", "speedup", "parallel efficiency"],
        rows,
        title="Dedicated-cluster speedup (paper: 18.97 at 20 nodes)",
        float_fmt="{:.2f}",
    )
    return Report(
        name="fig8-dedicated",
        title="Dedicated speedup sweep",
        text=text,
        data={"nodes": list(node_counts), "speedups": speedups},
    )
