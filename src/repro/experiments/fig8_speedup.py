"""Figure 8: speedup and normalized efficiency with 20 000 phases.

The paper: close-to-linear dedicated speedup (18.97 on 20 nodes); with
filtered dynamic remapping the speedup degrades gracefully with the number
of fixed slow nodes (about 16 at one slow node, 13 at five), while without
remapping it collapses; the normalized efficiency speedup/(20 - 0.7 m)
stays near 90% below four slow nodes and ~80% at five.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cluster.machine import paper_cluster
from repro.cluster.metrics import normalized_efficiency
from repro.cluster.simulator import simulate
from repro.cluster.workload import fixed_slow_traces
from repro.core.policies import make_policy
from repro.experiments.report import Report
from repro.util.tables import format_table

#: Node indices turned slow, in order, as more slow nodes are requested
#: (spread over the array like shared-cluster jobs would land).
SLOW_ORDER = (9, 3, 14, 6, 17)

PAPER_SPEEDUP = {0: 18.97, 1: 16.0, 5: 13.0}


def run(
    fast: bool = False,
    *,
    phases: int = 20_000,
    max_slow: int = 5,
    jitter: float = 0.06,
    seed: int = 7,
) -> Report:
    if fast:
        phases = max(500, phases // 20)

    rows = []
    data: dict[str, list[float]] = {
        "n_slow": [],
        "speedup_remap": [],
        "speedup_noremap": [],
        "efficiency_remap": [],
        "efficiency_noremap": [],
    }
    for k in range(max_slow + 1):
        traces_args = dict(jitter=jitter, seed=seed)
        row: list[object] = [k]
        for policy_name, s_key, e_key in (
            ("filtered", "speedup_remap", "efficiency_remap"),
            ("no-remap", "speedup_noremap", "efficiency_noremap"),
        ):
            spec = paper_cluster(
                fixed_slow_traces(20, SLOW_ORDER[:k], **traces_args)
            )
            result = simulate(spec, make_policy(policy_name), phases)
            s = result.speedup_vs_sequential(spec)
            eff = normalized_efficiency(s, 20, k)
            row.extend([s, eff])
            data[s_key].append(s)
            data[e_key].append(eff)
        data["n_slow"].append(k)
        rows.append(tuple(row))

    text = format_table(
        [
            "#slow",
            "speedup (remap)",
            "efficiency (remap)",
            "speedup (no remap)",
            "efficiency (no remap)",
        ],
        rows,
        title=(
            f"{phases} phases, 20 nodes, fixed slow nodes at 70% background "
            f"(paper: 18.97 dedicated, ~16 @1 slow, ~13 @5 slow with "
            f"remapping; ~90% efficiency below 4 slow, ~80% at 5)"
        ),
        float_fmt="{:.2f}",
    )
    return Report(
        name="fig8",
        title="Speedup and normalized efficiency vs. number of slow nodes",
        text=text,
        data=data,
    )


def dedicated_speedup_sweep(
    phases: int = 2000, node_counts: tuple[int, ...] = (1, 2, 4, 8, 10, 16, 20)
) -> Report:
    """The paper's Section 4.2 claim of near-linear dedicated speedup
    (18.97 with 20 nodes)."""
    rows = []
    speedups = []
    for p in node_counts:
        spec = paper_cluster(None, n_nodes=p)
        result = simulate(spec, make_policy("no-remap"), phases)
        s = result.speedup_vs_sequential(spec)
        rows.append((p, s, s / p))
        speedups.append(s)
    text = format_table(
        ["nodes", "speedup", "parallel efficiency"],
        rows,
        title="Dedicated-cluster speedup (paper: 18.97 at 20 nodes)",
        float_fmt="{:.2f}",
    )
    return Report(
        name="fig8-dedicated",
        title="Dedicated speedup sweep",
        text=text,
        data={"nodes": list(node_counts), "speedups": speedups},
    )


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def transports_run(
    fast: bool = False,
    *,
    phases: int = 120,
    shape: tuple[int, int] = (96, 42),
    rank_counts: tuple[int, ...] = (1, 2, 4),
) -> Report:
    """Figure 8 companion on *real* hardware: wall-clock time of the
    identical parallel run on both transports.

    The figures proper use the virtual-time cluster simulator (the paper
    ran on a 20-node Linux cluster we do not have); this experiment times
    the actual driver — threads, which serialize numerics under the GIL,
    against forked processes exchanging halos through shared memory,
    where the speedup is bounded by the CPUs actually available.
    """
    from repro.api import RunSpec, run as api_run
    from repro.lbm.components import ComponentSpec
    from repro.lbm.geometry import ChannelGeometry
    from repro.lbm.lattice import D2Q9
    from repro.lbm.solver import LBMConfig

    if fast:
        phases = max(20, phases // 4)
        shape = (48, 22)

    cfg = LBMConfig(
        geometry=ChannelGeometry(shape=shape, wall_axes=(1,)),
        components=(
            ComponentSpec("water", tau=1.0, rho_init=1.0),
            ComponentSpec("air", tau=1.0, rho_init=0.03),
        ),
        g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
        lattice=D2Q9,
        body_acceleration=(1e-6, 0.0),
        backend="fused",
    )

    cpus = _available_cpus()
    times: dict[str, dict[int, float]] = {"threads": {}, "processes": {}}
    rows = []
    for ranks in rank_counts:
        row: list[object] = [ranks]
        for transport in ("threads", "processes"):
            start = time.perf_counter()
            api_run(
                RunSpec(
                    config=cfg,
                    phases=phases,
                    ranks=ranks,
                    transport=transport,
                    policy="no-remap",
                )
            )
            elapsed = time.perf_counter() - start
            times[transport][ranks] = elapsed
            row.append(elapsed)
        row.append(times["threads"][ranks] / times["processes"][ranks])
        rows.append(tuple(row))

    text = format_table(
        ["ranks", "threads [s]", "processes [s]", "threads/processes"],
        rows,
        title=(
            f"{phases} phases, grid {shape}, fused backend, "
            f"{cpus} CPU(s) available — process-transport speedup is "
            f"bounded by the CPU count"
        ),
        float_fmt="{:.3f}",
    )
    return Report(
        name="fig8-transport",
        title="Wall-clock per-transport timing of the parallel driver",
        text=text,
        data={
            "cpus": cpus,
            "phases": phases,
            "rank_counts": list(rank_counts),
            "threads_s": [times["threads"][r] for r in rank_counts],
            "processes_s": [times["processes"][r] for r in rank_counts],
        },
    )
