"""Extension experiment: apparent slip vs. hydrophobic-force strength.

The paper fixes the wall-force amplitude at 0.2 ("the appropriate
magnitude for this force is not well understood... chosen so that the
simulation results would be consistent with experimental observations")
and reports a single ~10% slip figure.  This sweep maps the relationship
the paper leaves implicit: apparent slip and wall depletion as functions
of the force amplitude and of the decay length, on the 2-D channel where
the bulk-fit slip measure is exact.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import Report
from repro.experiments.slip_sim import SlipScenario
from repro.lbm.analytic import slip_fraction_to_slip_length
from repro.lbm.diagnostics import (
    apparent_slip_fraction,
    density_profile,
    velocity_profile,
)
from repro.util.tables import format_table


def _run_point(amplitude: float, decay: float, steps: int) -> dict:
    scenario = SlipScenario(
        shape=(16, 42),
        steps=steps,
        wall_amplitude=amplitude,
        decay_length=decay,
    )
    solver = scenario.run(with_wall_force=amplitude > 0)
    water = density_profile(solver, "water")
    slip = apparent_slip_fraction(velocity_profile(solver))
    width = solver.config.geometry.channel_width(1)
    return {
        "amplitude": amplitude,
        "decay": decay,
        "slip": slip,
        "slip_length": slip_fraction_to_slip_length(max(slip, 0.0), width),
        "wall_water": float(water.values[0]),
    }


def run(
    fast: bool = False,
    *,
    amplitudes: tuple[float, ...] = (0.0, 0.05, 0.1, 0.15, 0.2),
    decays: tuple[float, ...] = (1.5, 2.5, 4.0),
    steps: int = 6000,
) -> Report:
    if fast:
        amplitudes = (0.0, 0.1, 0.2)
        decays = (2.5,)
        steps = 4000

    amp_rows = []
    amp_series = []
    for a in amplitudes:
        point = _run_point(a, 2.5, steps)
        amp_rows.append(
            (
                a,
                100 * point["slip"],
                point["slip_length"],
                point["wall_water"],
            )
        )
        amp_series.append(point)

    decay_rows = []
    decay_series = []
    for d in decays:
        point = _run_point(0.1, d, steps)
        decay_rows.append(
            (
                d,
                100 * point["slip"],
                point["slip_length"],
                point["wall_water"],
            )
        )
        decay_series.append(point)

    text = format_table(
        ["amplitude", "slip (% u0)", "slip length (spacings)", "rho_w at wall"],
        amp_rows,
        title="Slip vs. wall-force amplitude (decay = 2.5 spacings = 12.5 nm)",
        float_fmt="{:.3f}",
    )
    if len(decays) > 1:
        text += "\n\n" + format_table(
            ["decay length", "slip (% u0)", "slip length (spacings)", "rho_w at wall"],
            decay_rows,
            title="Slip vs. decay length (amplitude = 0.1)",
            float_fmt="{:.3f}",
        )
    text += (
        "\n\nSlip grows monotonically with both knobs: amplitude deepens the "
        "depleted layer, decay length thickens it; the paper's a = 0.2, "
        "lambda = 12.5 nm sits on the steep part of the amplitude curve."
    )
    return Report(
        name="ext-slip-sweep",
        title="Apparent slip vs. hydrophobic-force parameters",
        text=text,
        data={"amplitude_sweep": amp_series, "decay_sweep": decay_series},
    )
