"""Figure 7: normalized streamwise velocity profiles with and without
hydrophobic wall forces.

The paper's solid line (no wall forces) satisfies no-slip; the dashed line
(with forces) exhibits an apparent slip of roughly 10% of the free-stream
velocity at the wall.  We report both the near-wall extrapolated slip (the
paper's Figure 7B reading) and, for 2-D scenarios where the profile is a
parabola, the bulk-fit apparent slip an experimentalist would measure.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import Report
from repro.experiments.slip_sim import SlipScenario, run_slip_pair
from repro.lbm.diagnostics import (
    apparent_slip_fraction,
    normalized_velocity_profile,
    slip_fraction,
)
from repro.util.tables import format_table


def run(
    fast: bool = False,
    *,
    scenario: SlipScenario | None = None,
    profile_points: int = 16,
) -> Report:
    forced, control = run_slip_pair(scenario, fast=fast)

    prof_f = normalized_velocity_profile(forced)
    prof_c = normalized_velocity_profile(control)

    # Subsample the profile for the printed table (full data kept in .data).
    idx = np.unique(
        np.linspace(0, prof_f.positions.size - 1, profile_points).astype(int)
    )
    rows = [
        (float(prof_f.positions[i]), float(prof_f.values[i]), float(prof_c.values[i]))
        for i in idx
    ]
    text = format_table(
        ["position from wall", "u/u0 with forces", "u/u0 no forces"],
        rows,
        title=(
            "Normalized streamwise velocity along the channel width "
            "(paper Figure 7: dashed = with wall forces, solid = without)"
        ),
        float_fmt="{:.4f}",
    )

    slip_forced = slip_fraction(prof_f)
    slip_control = slip_fraction(prof_c)
    summary = [
        "",
        f"wall-extrapolated slip with forces:    {100 * slip_forced:.2f}% of u0",
        f"wall-extrapolated slip without forces: {100 * slip_control:.2f}% of u0",
        f"slip attributable to hydrophobic forces: "
        f"{100 * (slip_forced - slip_control):.2f} percentage points "
        f"(paper: ~10% slip with forces, ~0 without)",
    ]
    data = {
        "positions": prof_f.positions,
        "u_forced": prof_f.values,
        "u_control": prof_c.values,
        "slip_forced": slip_forced,
        "slip_control": slip_control,
    }
    # The parabolic bulk fit only makes sense when the profile is a 2-D
    # Poiseuille parabola (thin-z 3-D ducts are plug-like along y).
    if forced.config.geometry.ndim == 2:
        bulk_f = apparent_slip_fraction(prof_f)
        bulk_c = apparent_slip_fraction(prof_c)
        summary.append(
            f"bulk-fit apparent slip: {100 * bulk_f:.2f}% with forces vs "
            f"{100 * bulk_c:.2f}% without"
        )
        data["bulk_slip_forced"] = bulk_f
        data["bulk_slip_control"] = bulk_c

    return Report(
        name="fig7",
        title="Normalized streamwise velocity profiles (apparent fluid slip)",
        text=text + "\n".join(summary),
        data=data,
    )
