"""Extension experiment: resolution dependence of the slip measurement.

The paper runs one resolution (5 nm spacing).  Our scaled reproductions
run coarser grids, where the wall-extrapolated slip has a finite-
resolution floor even without hydrophobic forces.  This experiment sweeps
the duct resolution at fixed *physical* geometry (the wall-force decay
length and channel aspect scale with the grid) and separates the two
contributions: the no-force baseline shrinks with resolution while the
force-induced slip persists — supporting the use of the forced-minus-
control gain as the physical signal in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import Report
from repro.experiments.slip_sim import SlipScenario
from repro.lbm.diagnostics import slip_fraction, velocity_profile
from repro.util.tables import format_table

#: (shape, steps): thin-z ducts whose development time ~ z^2 stays small.
RESOLUTIONS = (
    ((16, 40, 6), 1200),
    ((20, 60, 8), 1800),
    ((24, 80, 10), 2500),
    ((28, 100, 12), 3200),
)


def run(
    fast: bool = False,
    *,
    resolutions=RESOLUTIONS,
    amplitude: float = 0.2,
) -> Report:
    if fast:
        resolutions = resolutions[:2]

    rows = []
    series = []
    for shape, steps in resolutions:
        # Scale the decay length with the cross-section so the physical
        # layer thickness relative to the channel stays fixed.
        decay = 2.5 * shape[1] / 80.0
        scenario = SlipScenario(
            shape=shape,
            steps=steps,
            wall_amplitude=amplitude,
            decay_length=decay,
        )
        forced = scenario.run(with_wall_force=True)
        control = scenario.run(with_wall_force=False)
        slip_f = slip_fraction(velocity_profile(forced))
        slip_c = slip_fraction(velocity_profile(control))
        rows.append(
            (
                "x".join(map(str, shape)),
                100 * slip_c,
                100 * slip_f,
                100 * (slip_f - slip_c),
            )
        )
        series.append(
            {
                "shape": shape,
                "slip_control": slip_c,
                "slip_forced": slip_f,
                "gain": slip_f - slip_c,
            }
        )

    text = format_table(
        ["grid", "control slip (%)", "forced slip (%)", "gain (pp)"],
        rows,
        title=(
            f"Wall-extrapolated slip vs. duct resolution "
            f"(amplitude {amplitude}, decay scaled with the cross-section)"
        ),
        float_fmt="{:.2f}",
    )
    text += (
        "\n\nThe control (no-force) slip is a finite-resolution artifact and "
        "falls as the grid refines; the forced-minus-control gain is the "
        "physical hydrophobic signal.  At the paper's 200-node width the "
        "control floor would be negligible and the forced value reads "
        "directly as the ~10% slip."
    )
    return Report(
        name="ext-resolution",
        title="Resolution dependence of the slip measurement",
        text=text,
        data={"series": series},
    )
