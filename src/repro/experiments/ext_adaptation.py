"""Extension experiment: adaptation speed after a mid-run slowdown.

The paper evaluates steady states (a slow node is slow for the whole
run); this experiment asks the transient question its design implies: a
dedicated run is interrupted at phase ~120 by a persistent background job
on node 9.  We track the per-phase makespan and report each scheme's
*reaction time* — phases until the makespan recovers to within 25% of its
eventual steady level — and the *excess work* absorbed during the
transient.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import paper_cluster
from repro.cluster.simulator import PhaseSimulator
from repro.cluster.workload import delayed_slow_traces
from repro.core.policies import make_policy
from repro.experiments.report import Report
from repro.util.tables import format_table

ORDER = ("no-remap", "conservative", "filtered", "global")


def run(
    fast: bool = False,
    *,
    phases: int = 600,
    onset_time: float = 50.0,
    slow_node: int = 9,
) -> Report:
    if fast:
        phases = max(200, phases // 3)

    rows = []
    series: dict[str, np.ndarray] = {}
    data: dict[str, dict] = {}
    for name in ORDER:
        spec = paper_cluster(
            delayed_slow_traces(20, slow_node, onset_time)
        )
        sim = PhaseSimulator(spec, make_policy(name), record_timeline=True)
        result = sim.run(phases)
        makespans = result.phase_makespans
        series[name] = makespans

        onset_phase = int(np.argmax(makespans > 1.5 * makespans[0]))
        steady = float(np.median(makespans[-phases // 10 :]))
        recovered = np.flatnonzero(
            makespans[onset_phase:] <= 1.25 * steady
        )
        reaction = int(recovered[0]) if recovered.size else phases
        excess = float(
            (makespans[onset_phase:] - steady).clip(min=0).sum()
        )
        rows.append(
            (name, result.total_time, steady, reaction, excess)
        )
        data[name] = {
            "total": result.total_time,
            "steady_makespan": steady,
            "reaction_phases": reaction,
            "excess_seconds": excess,
        }

    text = format_table(
        [
            "scheme",
            "total (s)",
            "steady makespan (s)",
            "reaction (phases)",
            "excess (s)",
        ],
        rows,
        title=(
            f"Node {slow_node} becomes slow at t={onset_time:.0f}s; "
            f"{phases} phases"
        ),
        float_fmt="{:.2f}",
    )
    summary = (
        "\nReaction is bounded below by the harmonic-mean history (the lazy "
        "filter must see ~K slow phases before trusting the slowdown) plus "
        "the remap interval; the filtered scheme then converges in a "
        "handful of remap rounds while conservative halving trickles."
    )
    return Report(
        name="ext-adaptation",
        title="Adaptation speed after a mid-run slowdown",
        text=text + summary,
        data={"schemes": data, "makespans": series},
    )
