"""Figure 10: execution time of 600 phases for different remapping
techniques as the number of fixed slow nodes varies from 0 to 5.

The paper's findings: filtered remapping is best throughout (up to 57.8%
faster than no-remapping and up to 39% faster than conservative
redistribution); global remapping is competitive with one slow node but
falls behind the local schemes past two because of its synchronization
cost and because slow nodes still receive proportional load.
"""

from __future__ import annotations

from repro.cluster.machine import paper_cluster
from repro.cluster.simulator import simulate
from repro.cluster.workload import fixed_slow_traces
from repro.core.policies import POLICY_NAMES, make_policy
from repro.experiments.fig8_speedup import SLOW_ORDER
from repro.experiments.report import Report
from repro.util.tables import format_table

ORDER = ("no-remap", "filtered", "conservative", "global")


def run(
    fast: bool = False,
    *,
    phases: int = 600,
    max_slow: int = 5,
    jitter: float = 0.06,
    seed: int = 7,
) -> Report:
    if fast:
        phases = max(60, phases // 10)

    rows = []
    series: dict[str, list[float]] = {name: [] for name in ORDER}
    for k in range(max_slow + 1):
        row: list[object] = [k]
        for name in ORDER:
            spec = paper_cluster(
                fixed_slow_traces(20, SLOW_ORDER[:k], jitter=jitter, seed=seed)
            )
            result = simulate(spec, make_policy(name), phases)
            row.append(result.total_time)
            series[name].append(result.total_time)
        rows.append(tuple(row))

    text_rows = format_table(
        ["#slow"] + [f"{n} (s)" for n in ORDER],
        rows,
        title=(
            f"Execution time of {phases} phases (paper: filtered best, "
            f"beating no-remapping by up to 57.8% and conservative by up "
            f"to 39%; global competitive at 1 slow node, worst growth after 2)"
        ),
        float_fmt="{:.1f}",
    )

    best_vs_noremap = max(
        (nr - f) / nr
        for nr, f in zip(series["no-remap"][1:], series["filtered"][1:])
    )
    best_vs_cons = max(
        (c - f) / c
        for c, f in zip(series["conservative"][1:], series["filtered"][1:])
    )
    summary = (
        f"\nfiltered vs no-remapping: up to {100 * best_vs_noremap:.1f}% faster "
        f"(paper: up to 57.8%)\n"
        f"filtered vs conservative: up to {100 * best_vs_cons:.1f}% faster "
        f"(paper: up to 39%)"
    )
    return Report(
        name="fig10",
        title="Execution time for different remapping techniques",
        text=text_rows + summary,
        data={
            "n_slow": list(range(max_slow + 1)),
            "series": series,
            "filtered_vs_noremap": best_vs_noremap,
            "filtered_vs_conservative": best_vs_cons,
        },
    )
