"""Figure 9: execution profile and cost distribution per node, 600 phases.

Four schemes, 20 nodes, node 9 shared with a background job (except the
dedicated case):

- Dedicated (no slow node, remapping off):      paper ~251 s
- No-remapping (slow node 9):                   paper ~717 s (+185.6%)
- Conservative remapping:                       paper ~513 s
- Filtered remapping:                           paper ~313 s (+24.7%)

The paper's stacked bars show: under no-remapping every other node's time
is dominated by waiting (communication); conservative balances computation
but keeps the slow node communicating sluggishly; filtered evacuates node
9 (it ends with almost no computation) and the total collapses.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import paper_cluster
from repro.cluster.simulator import SimulationResult, simulate
from repro.cluster.workload import dedicated_traces, fixed_slow_traces
from repro.core.policies import make_policy
from repro.experiments.report import Report
from repro.util.tables import format_table

PAPER_TOTALS = {
    "dedicated": 251.0,
    "no-remap": 717.0,
    "conservative": 513.0,
    "filtered": 313.0,
}

SCHEMES = ("dedicated", "no-remap", "conservative", "filtered")


def run(
    fast: bool = False,
    *,
    phases: int = 600,
    slow_node: int = 9,
) -> Report:
    if fast:
        phases = max(60, phases // 10)

    results: dict[str, SimulationResult] = {}
    for scheme in SCHEMES:
        if scheme == "dedicated":
            traces = dedicated_traces(20)
            policy = make_policy("no-remap")
        else:
            traces = fixed_slow_traces(20, [slow_node])
            policy = make_policy(scheme)
        spec = paper_cluster(traces)
        results[scheme] = simulate(spec, policy, phases)

    summary_rows = []
    for scheme in SCHEMES:
        r = results[scheme]
        ref = PAPER_TOTALS[scheme] * (phases / 600.0)
        increase = 100.0 * (r.total_time / results["dedicated"].total_time - 1.0)
        summary_rows.append(
            (scheme, r.total_time, ref, increase, r.planes_moved)
        )
    summary = format_table(
        ["scheme", "total (s)", "paper (s, scaled)", "vs dedicated (%)", "planes moved"],
        summary_rows,
        title=f"Totals over {phases} phases (slow node = node {slow_node})",
        float_fmt="{:.1f}",
    )

    sections = [summary]
    per_node: dict[str, dict[str, np.ndarray]] = {}
    for scheme in SCHEMES:
        p = results[scheme].profile
        sections.append(
            "\n" + p.to_table(title=f"-- per-node profile: {scheme} --")
        )
        per_node[scheme] = {
            "computation": p.computation.copy(),
            "communication": p.communication.copy(),
            "remapping": p.remapping.copy(),
        }

    return Report(
        name="fig9",
        title="Execution profile and cost distribution for different schemes",
        text="\n".join(sections),
        data={
            "totals": {s: results[s].total_time for s in SCHEMES},
            "profiles": per_node,
            "final_counts": {
                s: results[s].final_plane_counts for s in SCHEMES
            },
        },
    )
