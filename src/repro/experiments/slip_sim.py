"""Shared slip simulation for Figures 6 and 7.

Both figures read the same pair of runs — the hydrophobic channel with
wall forces and the control without — so the pair is computed once per
scenario and memoized in-process.

The paper's grid (400 x 200 x 20, 5 nm spacing) needs ~500k phases to
reach steady state on a cluster; the default scenario here is a scaled
microchannel with the same aspect regime (thin in z, wide in y) and the
same physics, which reproduces the paper's qualitative results — water
depletion / air enrichment at the wall and an apparent slip of a few to
ten percent — in about a minute on one core.  ``fast=True`` drops to a 2-D
channel for smoke-level runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lbm.components import ComponentSpec
from repro.lbm.forces import WallForceSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9, D3Q19
from repro.lbm.solver import LBMConfig, MulticomponentLBM


@dataclass(frozen=True)
class SlipScenario:
    """Parameters of the water/air microchannel simulation.

    Defaults are the scaled 3-D scenario; :meth:`fast` gives the 2-D one
    and :meth:`paper_scale` the paper's full 400 x 200 x 20 grid (slow —
    hours on one core).
    """

    shape: tuple[int, ...] = (24, 80, 10)
    steps: int = 2500
    wall_amplitude: float = 0.2
    decay_length: float = 2.5
    g_cross: float = 0.9
    rho_water: float = 1.0
    rho_air: float = 0.03
    tau: float = 1.0
    body_acceleration: float = 2e-7

    @classmethod
    def fast(cls) -> "SlipScenario":
        """2-D cross-section scenario for quick runs (seconds).

        The width and step count are matched so the Poiseuille profile is
        developed (momentum diffusion time ~ H^2/nu); a wider channel with
        too few steps still looks plug-like and fakes slip.
        """
        return cls(shape=(16, 42), steps=6000, wall_amplitude=0.1)

    @classmethod
    def paper_scale(cls) -> "SlipScenario":
        """The paper's full grid (expensive; provided for completeness)."""
        return cls(shape=(400, 200, 20), steps=20000)

    def build_config(self, *, with_wall_force: bool) -> LBMConfig:
        ndim = len(self.shape)
        lattice = D3Q19 if ndim == 3 else D2Q9
        geometry = ChannelGeometry(shape=self.shape)
        components = (
            ComponentSpec("water", tau=self.tau, rho_init=self.rho_water),
            ComponentSpec("air", tau=self.tau, rho_init=self.rho_air),
        )
        g = np.array([[0.0, self.g_cross], [self.g_cross, 0.0]])
        wall = (
            WallForceSpec(
                amplitude=self.wall_amplitude,
                decay_length=self.decay_length,
                component="water",
            )
            if with_wall_force
            else None
        )
        accel = (self.body_acceleration,) + (0.0,) * (ndim - 1)
        return LBMConfig(
            geometry=geometry,
            components=components,
            g_matrix=g,
            lattice=lattice,
            wall_force=wall,
            body_acceleration=accel,
        )

    def run(self, *, with_wall_force: bool) -> MulticomponentLBM:
        solver = MulticomponentLBM(self.build_config(with_wall_force=with_wall_force))
        solver.run(self.steps, check_interval=max(1, self.steps // 5))
        return solver


_PAIR_CACHE: dict[SlipScenario, tuple[MulticomponentLBM, MulticomponentLBM]] = {}


def run_slip_pair(
    scenario: SlipScenario | None = None, *, fast: bool = False
) -> tuple[MulticomponentLBM, MulticomponentLBM]:
    """Run (or fetch the memoized) pair of simulations:
    ``(with_wall_forces, control_without)``."""
    if scenario is None:
        scenario = SlipScenario.fast() if fast else SlipScenario()
    if scenario not in _PAIR_CACHE:
        forced = scenario.run(with_wall_force=True)
        control = scenario.run(with_wall_force=False)
        _PAIR_CACHE[scenario] = (forced, control)
    return _PAIR_CACHE[scenario]


def clear_cache() -> None:
    """Drop memoized runs (tests use this to control memory)."""
    _PAIR_CACHE.clear()
