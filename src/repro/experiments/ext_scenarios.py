"""Extension figures: slip vs. wall roughness and vs. slip patterning.

The 2004 paper measures one wall physics.  Its lineage asked the next
questions: Kunert & Harting (2007) — what does wall *roughness* do to
the apparent slip? — and the patterned-surface homogenization line
(Philip; Lauga & Stone) — what effective slip does a wall striped with
alternating slip produce?  These two figures answer both on the paper's
own channel, riding the :mod:`repro.scenarios` registry and the
:func:`repro.api.run_batch` ensemble substrate (compatible grid points
share stacked passes).

Both figures use the *flow-gain* effective slip length: fit the
measured per-column flux to plane Poiseuille with symmetric Navier
slip, ``phi/phi0 = 1 + 6 b / H``, against the smooth no-force control.
It is the observable an experimentalist has (flow enhancement at fixed
pressure drop) and it is insensitive to the near-wall secondary
circulation that inhomogeneous wall force fields drive.

- ``fig-roughness``: a **single-component** channel with randomly
  displaced walls (force amplitude zero — geometry only, isolating the
  Kunert–Harting effect from interface dynamics).  The effective slip
  length falls monotonically with RMS height — the effective no-slip
  plane sits near the roughness tops — and the *base-plane
  extrapolated* slip goes negative in step: assuming the wall at the
  valleys, the flow appears to stick below it.  A Latin-hypercube sweep
  (:mod:`repro.sweep`) splits the variance between the RMS knob and
  the realization seed.
- ``fig-pattern``: the paper's water/air channel with streamwise
  hydrophobic stripes.  Effective slip grows monotonically with the
  stripe duty cycle (duty 0 = no-slip control, duty 1 = homogeneous
  wall, bit-identically) and with the stripe period at fixed coverage —
  the Philip / Lauga-Stone scaling, where wider stripes are more
  effective than many narrow ones.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.api import RunResult, RunSpec, run_batch
from repro.experiments.report import Report
from repro.lbm.components import ComponentSpec
from repro.lbm.diagnostics import effective_slip_fraction
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9
from repro.lbm.solver import LBMConfig
from repro.scenarios import PatternedScenario, RoughScenario, Scenario
from repro.sweep import (
    Discrete,
    SweepParameter,
    SweepSpec,
    Uniform,
    run_sweep,
    variance_sensitivity,
)
from repro.util.tables import format_table

#: The 2-D channel of ``SlipScenario.fast()``: wide enough for a
#: developed Poiseuille core, small enough for a grid of runs.
SHAPE = (16, 42)
#: Past the channel's momentum diffusion time (H^2 / nu ~ 10^4 steps
#: is full saturation; flux *ratios* settle much earlier).
STEPS = 8000
FAST_STEPS = 2500


def pattern_config(scenario: Scenario) -> LBMConfig:
    """The paper's water/air channel, patterned-wall edition."""
    return LBMConfig(
        geometry=ChannelGeometry(shape=SHAPE),
        components=(
            ComponentSpec("water", tau=1.0, rho_init=1.0),
            ComponentSpec("air", tau=1.0, rho_init=0.03),
        ),
        g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
        lattice=D2Q9,
        scenario=scenario,
        body_acceleration=(2e-7, 0.0),
    )


def roughness_config(scenario: Scenario) -> LBMConfig:
    """A single-component water channel: no interfaces, so the rough
    grooves cannot collect air pockets and the measured flow change is
    purely the geometry's."""
    return LBMConfig(
        geometry=ChannelGeometry(shape=SHAPE),
        components=(ComponentSpec("water", tau=1.0, rho_init=1.0),),
        g_matrix=np.zeros((1, 1), dtype=np.float64),
        lattice=D2Q9,
        scenario=scenario,
        body_acceleration=(2e-7, 0.0),
    )


def column_flux(result: RunResult) -> float:
    """Mean per-column volumetric flux (sum of streamwise velocity over
    fluid nodes, per streamwise plane)."""
    solver = result.solver()
    u = solver.velocity()[0]
    return float(u[solver.fluid].sum()) / solver.config.geometry.shape[0]


def flow_gain_slip_length(flux: float, flux0: float, width: float) -> float:
    """Effective Navier slip length from flow enhancement: plane
    Poiseuille with symmetric slip b carries ``1 + 6 b / H`` times the
    no-slip flux.  Negative b means the effective wall moved into the
    channel (roughness)."""
    if flux0 == 0.0:
        raise ValueError("zero reference flux; run the control first")
    return width / 6.0 * (flux / flux0 - 1.0)


def run_roughness(fast: bool = False) -> Report:
    """fig-roughness: effective slip length vs. RMS wall roughness."""
    steps = FAST_STEPS if fast else STEPS
    rms_grid = (0.0, 1.0, 2.0) if fast else (0.0, 0.6, 1.2, 2.0)
    base = RoughScenario(
        amplitude=0.0, decay_length=2.5, rms=0.0, max_height=3, seed=11
    )
    results = run_batch(
        [
            RunSpec(
                config=roughness_config(dataclasses.replace(base, rms=r)),
                phases=steps,
            )
            for r in rms_grid
        ]
    )
    width = ChannelGeometry(shape=SHAPE).channel_width(1)
    flux0 = column_flux(results[0])  # rms 0 == the smooth channel
    lengths = [
        flow_gain_slip_length(column_flux(r), flux0, width) for r in results
    ]
    apparent = [effective_slip_fraction(r.solver()) for r in results]
    text = format_table(
        [
            "rms roughness",
            "slip length (spacings)",
            "base-plane slip (% u0)",
        ],
        [
            (r, b, 100 * a)
            for r, b, a in zip(rms_grid, lengths, apparent)
        ],
        title=(
            "Effective slip vs. RMS wall roughness "
            "(geometry only, Kunert-Harting setup)"
        ),
        float_fmt="{:.3f}",
    )
    data: dict = {
        "rms": list(rms_grid),
        "slip_length": lengths,
        "apparent_slip": apparent,
        "trend": base.expected_trends()["rms"],
    }
    if not fast:
        sweep = SweepSpec(
            base_config=roughness_config(base),
            phases=steps // 2,
            parameters=(
                SweepParameter("rms", Uniform(0.0, 2.0)),
                SweepParameter("seed", Discrete((3, 11, 19, 27))),
            ),
            n_samples=8,
            seed=5,
            sampler="lhs",
        )
        result = run_sweep(sweep, via="batch")
        eta2 = variance_sensitivity(
            [s.params for s in result.samples], result.slip_array()
        )
        text += "\n\n" + format_table(
            ["parameter", "variance explained (eta^2)"],
            sorted(eta2.items(), key=lambda kv: -kv[1]),
            title="LHS sensitivity split (8 samples): RMS knob vs. "
            "realization seed",
            float_fmt="{:.3f}",
        )
        data["sensitivity"] = eta2
    text += (
        "\n\nThe flow-gain slip length falls monotonically with the RMS "
        "height: the effective no-slip plane sits near the roughness "
        "tops, eating channel width.  The base-plane extrapolation "
        "tracks it into *negative* apparent slip — measured against the "
        "valleys, the flow seems to stick below the wall — the "
        "Kunert-Harting measurement-plane effect: where you assume the "
        "wall is changes the slip you report."
    )
    return Report(
        name="fig-roughness",
        title="Effective slip vs. wall roughness (rough scenario)",
        text=text,
        data=data,
    )


def run_pattern(fast: bool = False) -> Report:
    """fig-pattern: effective slip vs. stripe duty cycle and period."""
    steps = FAST_STEPS if fast else STEPS
    duty_grid = (0.0, 0.5, 1.0) if fast else (0.0, 0.25, 0.5, 0.75, 1.0)
    base = PatternedScenario(
        amplitude_hi=0.06, amplitude_lo=0.0, period=8, duty=0.5,
        decay_length=2.5,
    )
    results = run_batch(
        [
            RunSpec(
                config=pattern_config(dataclasses.replace(base, duty=d)),
                phases=steps,
            )
            for d in duty_grid
        ]
    )
    width = ChannelGeometry(shape=SHAPE).channel_width(1)
    flux0 = column_flux(results[0])  # duty 0 == the no-slip control
    lengths = [
        flow_gain_slip_length(column_flux(r), flux0, width) for r in results
    ]
    text = format_table(
        ["duty cycle", "slip length (spacings)", "flow gain (%)"],
        [
            (d, b, 100 * (6.0 * b / width))
            for d, b in zip(duty_grid, lengths)
        ],
        title=(
            "Effective slip vs. stripe duty cycle "
            "(period 8, amplitude 0.06 on / 0.0 off)"
        ),
        float_fmt="{:.3f}",
    )
    data: dict = {
        "duty": list(duty_grid),
        "slip_length": lengths,
        "trend": base.expected_trends()["duty"],
    }
    if not fast:
        period_grid = (4, 8, 16)
        period_results = run_batch(
            [
                RunSpec(
                    config=pattern_config(
                        dataclasses.replace(base, period=p)
                    ),
                    phases=steps,
                )
                for p in period_grid
            ]
        )
        period_lengths = [
            flow_gain_slip_length(column_flux(r), flux0, width)
            for r in period_results
        ]
        text += "\n\n" + format_table(
            ["period (sites)", "slip length (spacings)"],
            list(zip(period_grid, period_lengths)),
            title="Effective slip vs. stripe period (duty 0.5)",
            float_fmt="{:.3f}",
        )
        data["period"] = list(period_grid)
        data["period_slip_length"] = period_lengths
    text += (
        "\n\nSlip grows with the hydrophobic stripe fraction: duty 0 is "
        "the no-slip control, duty 1 recovers the homogeneous channel "
        "(bit-identically — the registry's differential contract), and "
        "intermediate duty cycles interpolate.  At fixed coverage the "
        "slip also grows with the stripe period — the Philip / "
        "Lauga-Stone scaling: one wide slip stripe beats many narrow "
        "ones."
    )
    return Report(
        name="fig-pattern",
        title="Effective slip vs. slip patterning (patterned scenario)",
        text=text,
        data=data,
    )
