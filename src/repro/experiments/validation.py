"""Soundness validation experiments (not in the paper, but prerequisites
for trusting the reproduction):

- the LBM solver against the analytic plane-Poiseuille solution;
- the parallel driver against the sequential solver, bitwise, including
  runs where filtered remapping migrates planes mid-flight.
"""

from __future__ import annotations

import numpy as np

from repro.api import RunSpec
from repro.api import run as api_run
from repro.core.policies import RemappingConfig
from repro.experiments.report import Report
from repro.lbm.components import ComponentSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9
from repro.lbm.diagnostics import velocity_profile
from repro.lbm.solver import LBMConfig, MulticomponentLBM
from repro.util.tables import format_table


def poiseuille_error(
    *, ny: int = 34, steps: int = 3000, accel: float = 1e-5
) -> float:
    """Max relative error of the simulated profile vs. the analytic
    parabola u(y) = a y (H - y) / (2 nu)."""
    geo = ChannelGeometry(shape=(12, ny), wall_axes=(1,))
    comp = ComponentSpec("water", tau=1.0, rho_init=1.0)
    cfg = LBMConfig(
        geometry=geo,
        components=(comp,),
        g_matrix=np.zeros((1, 1), dtype=np.float64),
        lattice=D2Q9,
        body_acceleration=(accel, 0.0),
    )
    solver = MulticomponentLBM(cfg)
    solver.run(steps, check_interval=steps // 4)
    prof = velocity_profile(solver)
    width = geo.channel_width(1)
    analytic = accel / (2.0 * comp.viscosity) * prof.positions * (width - prof.positions)
    return float(np.abs(prof.values - analytic).max() / analytic.max())


def parallel_equivalence(
    *, n_ranks: int = 4, phases: int = 40, with_migration: bool = True
) -> bool:
    """True when the parallel run's global field is bitwise equal to the
    sequential solver's (optionally with a synthetic slow rank forcing
    migration through the filtered scheme)."""
    geo = ChannelGeometry(shape=(20, 14), wall_axes=(1,))
    comps = (
        ComponentSpec("water", tau=1.0, rho_init=1.0),
        ComponentSpec("air", tau=1.0, rho_init=0.03),
    )
    cfg = LBMConfig(
        geometry=geo,
        components=comps,
        g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
        lattice=D2Q9,
        body_acceleration=(1e-6, 0.0),
    )
    sequential = MulticomponentLBM(cfg)
    sequential.run(phases)

    load_fn = None
    policy = "no-remap"
    remap_config = None
    if with_migration:
        policy = "filtered"
        remap_config = RemappingConfig(interval=5, history=5)

        def load_fn(rank: int, phase: int, points: int) -> float:
            t = points * 1e-6
            return t / 0.35 if rank == 1 else t

    result = api_run(
        RunSpec(
            config=cfg,
            phases=phases,
            ranks=n_ranks,
            policy=policy,
            remap_config=remap_config,
            load_time_fn=load_fn,
        )
    )
    return bool(np.array_equal(result.f, sequential.f))


def run(fast: bool = False) -> Report:
    # The profile needs ~H^2/nu steps to develop; fast mode uses a
    # narrower channel instead of an under-converged wide one.
    if fast:
        err = poiseuille_error(ny=18, steps=1600)
    else:
        err = poiseuille_error()
    eq_static = parallel_equivalence(with_migration=False)
    eq_migrating = parallel_equivalence(with_migration=True)
    rows = [
        ("Poiseuille max relative error", f"{err:.4f}", "< 0.02"),
        ("parallel == sequential (static)", str(eq_static), "True"),
        ("parallel == sequential (migrating)", str(eq_migrating), "True"),
    ]
    text = format_table(["check", "value", "expectation"], rows)
    return Report(
        name="validation",
        title="Solver and parallel-substrate validation",
        text=text,
        data={
            "poiseuille_error": err,
            "parallel_static": eq_static,
            "parallel_migrating": eq_migrating,
        },
    )
