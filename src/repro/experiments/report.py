"""Experiment report container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Report:
    """Outcome of one experiment.

    Attributes
    ----------
    name:
        Experiment id (``fig3`` ... ``table1``).
    title:
        Human-readable description.
    text:
        Rendered tables (what the CLI prints, what EXPERIMENTS.md quotes).
    data:
        Raw rows/series keyed by name, for tests and downstream analysis.
    """

    name: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        header = f"== {self.name}: {self.title} =="
        return f"{header}\n{self.text}"
