"""Figure 3: execution time and per-phase overhead vs. disturbance level.

The paper's setup: 20 nodes, 600 phases, one node disturbed by a competing
job that is busy a given percentage of every 10-second window.  The paper
observes a near-linear overhead below ~60% disturbance and a sharp
increase after, topping out near +186% at full disturbance (251 s -> 717 s).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import paper_cluster
from repro.cluster.metrics import overhead_percent
from repro.cluster.simulator import simulate
from repro.cluster.workload import dedicated_traces, duty_cycle_trace
from repro.core.policies import make_policy
from repro.experiments.report import Report
from repro.util.tables import format_table

#: Approximate values read off the paper's Figure 3 for reference.
PAPER_REFERENCE = {0.0: 250.0, 1.0: 717.0}


def run(
    fast: bool = False,
    *,
    phases: int = 600,
    disturbed_node: int = 9,
    duties: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
) -> Report:
    if fast:
        phases = max(60, phases // 10)
    base_spec = paper_cluster(dedicated_traces(20))
    base = simulate(base_spec, make_policy("no-remap"), phases).total_time

    rows = []
    series = []
    for duty in duties:
        traces = dedicated_traces(20)
        traces[disturbed_node] = duty_cycle_trace(duty)
        spec = paper_cluster(traces)
        result = simulate(spec, make_policy("no-remap"), phases)
        over = overhead_percent(result.total_time, base)
        per_phase_ms = 1000.0 * (result.total_time - base) / phases
        rows.append((f"{100 * duty:.0f}%", result.total_time, over, per_phase_ms))
        series.append((duty, result.total_time, over))

    text = format_table(
        ["disturbance", "exec time (s)", "overhead (%)", "added/phase (ms)"],
        rows,
        title=(
            f"One disturbed node, {phases} phases, 20 nodes "
            f"(paper: 250 s undisturbed -> ~717 s at 100%, knee near 60%)"
        ),
        float_fmt="{:.1f}",
    )
    duties_arr = np.array([s[0] for s in series])
    overheads = np.array([s[2] for s in series])
    return Report(
        name="fig3",
        title="Increased time caused by competing jobs",
        text=text,
        data={
            "duties": duties_arr,
            "times": np.array([s[1] for s in series]),
            "overheads": overheads,
            "baseline": base,
        },
    )
