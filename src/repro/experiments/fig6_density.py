"""Figure 6: fluid densities near the side wall.

The paper plots, at the channel mid cross-section, the water density (A)
and the air/vapour density (B) over the 40 nm strip next to the side
wall: with hydrophobic wall forces the water is depleted and the air
enriched approaching the wall — the depleted layer that generates the
apparent slip.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import Report
from repro.experiments.slip_sim import SlipScenario, run_slip_pair
from repro.lbm.diagnostics import density_profile
from repro.util.tables import format_table


def run(
    fast: bool = False,
    *,
    scenario: SlipScenario | None = None,
    strip_depth: float = 8.0,
) -> Report:
    forced, control = run_slip_pair(scenario, fast=fast)

    water = density_profile(forced, "water").near_wall(strip_depth)
    air = density_profile(forced, "air").near_wall(strip_depth)
    water_ctl = density_profile(control, "water").near_wall(strip_depth)
    air_ctl = density_profile(control, "air").near_wall(strip_depth)

    rows = [
        (
            float(d),
            float(w),
            float(a),
            float(wc),
            float(ac),
        )
        for d, w, a, wc, ac in zip(
            water.positions, water.values, air.values, water_ctl.values, air_ctl.values
        )
    ]
    text = format_table(
        [
            "dist from wall",
            "rho_water (forced)",
            "rho_air (forced)",
            "rho_water (ctl)",
            "rho_air (ctl)",
        ],
        rows,
        title=(
            "Densities near the side wall (lattice units; paper: water "
            "decreases and air/vapour increases toward a hydrophobic wall)"
        ),
        float_fmt="{:.4f}",
    )

    mid_w = float(np.median(density_profile(forced, "water").values))
    mid_a = float(np.median(density_profile(forced, "air").values))
    depletion = float(water.values[0]) / mid_w
    enrichment = float(air.values[0]) / mid_a
    summary = (
        f"\nwall/bulk water density ratio: {depletion:.3f} (<1 = depleted; "
        f"paper shows ~0.5-0.7)\n"
        f"wall/bulk air density ratio:   {enrichment:.3f} (>1 = enriched; "
        f"paper shows ~1.5-2)"
    )
    return Report(
        name="fig6",
        title="Fluid densities as a function of distance from the side wall",
        text=text + summary,
        data={
            "positions": water.positions,
            "water_forced": water.values,
            "air_forced": air.values,
            "water_control": water_ctl.values,
            "air_control": air_ctl.values,
            "water_depletion_ratio": depletion,
            "air_enrichment_ratio": enrichment,
        },
    )
