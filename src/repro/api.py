"""The one documented entry point: describe a run, then run it.

A :class:`RunSpec` is a frozen description of everything a run needs —
the physics configuration, phase count, rank count and transport,
remapping policy, checkpoint policy, observability — and :func:`run`
executes it, dispatching to the sequential solver (``ranks == 1``) or
the parallel driver (``ranks > 1``) on either transport::

    from repro.api import RunSpec, run

    spec = RunSpec(config=cfg, phases=1000, ranks=4, transport="processes")
    result = run(spec)
    spec2d = RunSpec(config=cfg, phases=1000, decomp=(2, 2))  # ranks derived
    result = run(spec2d)
    result.f          # global populations (C, Q, nx, *cross)
    result.solver()   # a sequential solver holding the final state

Environment overlay: unset dispatch fields are filled from the
``REPRO_*`` variables via :func:`repro.config.from_env` (transport from
``REPRO_TRANSPORT``, checkpointing from the ``REPRO_CKPT_*`` family);
explicit spec values always win.  The legacy entry points —
:func:`repro.parallel.driver.run_parallel_lbm`, the experiments runner's
CLI flags — are deprecation shims that build a ``RunSpec`` and land
here, so every path through the library executes the same code.

Parameter sweeps: :func:`run_batch` takes a list of specs, groups the
ones that differ only in the swept scalar knobs (coupling matrix, wall
force amplitude, body force) into stacked ensembles executed by the
``batched`` kernel backend (:mod:`repro.lbm.ensemble`), and runs the
rest through :func:`run` — returning per-spec results, bit-identical to
running each spec alone, in input order.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

import repro.config as config_mod
from repro.ckpt.io import sha256_bytes
from repro.ckpt.manifest import config_fingerprint
from repro.core.policies import RemappingConfig
from repro.lbm.solver import LBMConfig, MulticomponentLBM
from repro.obs.observer import NULL_OBSERVER, ObserverLike
from repro.parallel.driver import (
    LoadTimeFn,
    ParallelRunResult,
    _run_parallel,
    _spec_observer,
    assemble_global_f,
    solver_from_results,
)

__all__ = [
    "EnsembleRunResult",
    "RunSpec",
    "RunResult",
    "batch_compatible",
    "batch_exclusion_reason",
    "canonical_spec_doc",
    "run",
    "run_batch",
    "spec_fingerprint",
]


@dataclass(frozen=True)
class RunSpec:
    """Complete, immutable description of one solver run.

    Sequential runs (``ranks == 1``, the default) execute on the
    in-process :class:`~repro.lbm.solver.MulticomponentLBM`; parallel
    runs (``ranks > 1``) on the domain-decomposed driver over the chosen
    *transport*, laid out per ``decomp`` (1-D slabs by default, or a
    2-D rank grid).  Fields left at their defaults are overlaid from
    the environment by :func:`run` (see :mod:`repro.config`).
    """

    #: Physics/geometry configuration (shared by every rank).
    config: LBMConfig
    #: Total phase target.  With ``resume=True`` this is absolute: a
    #: restored run executes only the remainder.
    phases: int
    #: 1 = sequential solver; > 1 = parallel decomposition.  Derived
    #: from ``decomp`` when that is an explicit ``(rows, cols)`` grid.
    ranks: int = 1
    #: Parallel decomposition: ``"auto"`` (1-D slab over ``ranks``, the
    #: historical layout), ``"slab"`` (explicit alias), ``"grid"``
    #: (most-square 2-D factorization of ``ranks``), or an explicit
    #: ``(rows, cols)`` tuple.  With a tuple and ``ranks`` left at its
    #: default, ``ranks`` is derived as ``rows * cols``.
    decomp: str | tuple[int, int] = "auto"
    #: Overlap interior kernel compute with halo exchange (parallel
    #: only; bit-identical to the blocking schedule by construction).
    halo_overlap: bool = True
    #: ``"threads"`` | ``"processes"`` | None (environment, then threads).
    transport: str | None = None
    #: Kernel-backend override; None keeps ``config.backend``.
    backend: str | None = None
    #: Remapping policy name (parallel): filtered/conservative/global/no-remap.
    policy: str = "filtered"
    remap_config: RemappingConfig | None = None
    #: Synthetic per-phase load index for remapping tests (parallel only).
    load_time_fn: LoadTimeFn | None = None
    #: Initial planes per rank (1-D slab only; deprecated — express the
    #: layout through ``decomp`` instead).  None splits evenly.
    initial_counts: tuple[int, ...] | None = None
    observer: ObserverLike = field(default=NULL_OBSERVER)
    #: Write a self-contained JSONL trace here (exclusive with observer).
    trace_path: str | None = None
    #: Explicit checkpoint store, or a directory from which one is built.
    checkpoint_store: Any = None
    checkpoint_dir: str | Path | None = None
    checkpoint_every: int = 0
    checkpoint_keep: int = 3
    resume: bool = False
    #: Fault-injection plan (:class:`repro.ckpt.FaultPlan`; parallel only).
    faults: Any = None
    #: Wall-clock limit for the rank world (parallel only).
    timeout: float = 600.0

    def __post_init__(self) -> None:
        if self.phases < 0:
            raise ValueError(f"phases must be >= 0, got {self.phases}")
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if isinstance(self.decomp, str):
            if self.decomp not in ("auto", "slab", "grid"):
                raise ValueError(
                    f"decomp must be 'auto', 'slab', 'grid' or a "
                    f"(rows, cols) tuple, got {self.decomp!r}"
                )
        else:
            grid = tuple(int(n) for n in self.decomp)
            if len(grid) != 2 or grid[0] < 1 or grid[1] < 1:
                raise ValueError(
                    f"decomp grid must be two positive integers "
                    f"(rows, cols), got {self.decomp!r}"
                )
            object.__setattr__(self, "decomp", grid)
            if self.ranks == 1:
                # ranks left at its default: derive it from the grid.
                object.__setattr__(self, "ranks", grid[0] * grid[1])
            elif self.ranks != grid[0] * grid[1]:
                raise ValueError(
                    f"decomp grid {grid} needs {grid[0] * grid[1]} ranks "
                    f"but ranks={self.ranks}"
                )
        if self.initial_counts is not None:
            warnings.warn(
                "initial_counts is a 1-D-slab-only knob and is deprecated; "
                "express the layout through decomp instead",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(
                self, "initial_counts", tuple(int(n) for n in self.initial_counts)
            )
        if self.checkpoint_store is not None and self.checkpoint_dir is not None:
            raise ValueError(
                "pass either checkpoint_store or checkpoint_dir, not both"
            )

    def resolved_config(self) -> LBMConfig:
        """The configuration with this spec's backend override applied."""
        if self.backend is None or self.backend == self.config.backend:
            return self.config
        return dataclasses.replace(self.config, backend=self.backend)

    def fingerprint(self) -> str:
        """Content hash of everything that determines this run's
        *result* (see :func:`spec_fingerprint`)."""
        return spec_fingerprint(self)


def canonical_spec_doc(spec: RunSpec) -> dict[str, Any]:
    """The canonical JSON-able document a spec's fingerprint hashes.

    Only fields that determine the run's *output* participate: the
    physics fingerprint (:func:`repro.ckpt.manifest.config_fingerprint`,
    which already canonicalizes geometry, components, coupling, forcing,
    collision and the wall scenario — its registry name plus *every*
    parameter, including a rough scenario's RNG seed, so the serve cache
    can never conflate two scenarios that share the remaining knobs —
    while excluding the kernel backend, an implementation choice, not a
    model) and the phase target.  Execution knobs — rank
    count, decomposition layout, halo-overlap schedule, transport,
    remapping policy, checkpoint/trace/observer machinery — are
    deliberately absent: the transports, backends and decompositions are
    bit-identical by contract, so two specs differing only there produce
    the same populations.  Consequently the environment overlay
    (:meth:`repro.config.EnvConfig.overlay`), which touches only
    dispatch fields, never changes a fingerprint.
    """
    return {
        "physics": config_fingerprint(spec.resolved_config()),
        "phases": int(spec.phases),
    }


def spec_fingerprint(spec: RunSpec) -> str:
    """SHA-256 hex digest of :func:`canonical_spec_doc` — the
    content-address under which :mod:`repro.serve` deduplicates
    submissions and caches results."""
    doc = json.dumps(canonical_spec_doc(spec), sort_keys=True)
    return sha256_bytes(doc.encode())


@dataclass
class RunResult:
    """What :func:`run` returns, transport- and mode-agnostic.

    ``f`` is always the **global** population array ``(C, Q, nx,
    *cross)``; ``rank_results`` carries the per-rank
    :class:`~repro.parallel.driver.ParallelRunResult` records for
    parallel runs (``None`` for sequential ones).
    """

    spec: RunSpec
    config: LBMConfig
    f: np.ndarray
    rank_results: list[ParallelRunResult] | None = None
    #: Why :func:`run_batch` executed this spec outside a batched
    #: ensemble (``None`` for batched members and plain :func:`run`
    #: calls); see :func:`batch_exclusion_reason`.
    batch_fallback_reason: str | None = None
    _solver: Any = None

    def solver(self) -> MulticomponentLBM:
        """A sequential solver holding the run's final state, so the
        full diagnostics toolbox (profiles, slip measures, exporters)
        applies to any run's output."""
        if self._solver is None:
            self._solver = solver_from_results(self.rank_results, self.config)
        return self._solver


def _store_for(spec: RunSpec, config: LBMConfig) -> Any:
    """The spec's checkpoint store: explicit, or built per-config under
    ``checkpoint_dir`` (same fingerprint-keyed layout as the
    ``REPRO_CKPT_DIR`` discovery path)."""
    if spec.checkpoint_store is not None:
        return spec.checkpoint_store
    if spec.checkpoint_dir is None:
        return None
    from repro.ckpt.policy import CheckpointPolicy

    policy = CheckpointPolicy(
        root=Path(spec.checkpoint_dir),
        every=spec.checkpoint_every,
        resume=spec.resume,
        keep_last=spec.checkpoint_keep,
    )
    return policy.store_for(config)


def run(spec: RunSpec) -> RunResult:
    """Execute *spec* and return a :class:`RunResult`.

    Applies the environment overlay, resolves the backend and the
    checkpoint store once, then dispatches on ``spec.ranks``.
    """
    spec = config_mod.from_env().overlay(spec)
    config = spec.resolved_config()
    store = _store_for(spec, config)
    if spec.resume and store is None:
        raise ValueError("resume=True needs a checkpoint_store or checkpoint_dir")
    if spec.ranks == 1:
        for name in ("load_time_fn", "faults", "initial_counts"):
            if getattr(spec, name) is not None:
                raise ValueError(f"{name} requires ranks > 1")
        return _run_sequential(spec, config, store)
    results = _run_parallel(spec, config, store)
    return RunResult(
        spec=spec,
        config=config,
        f=assemble_global_f(results),
        rank_results=results,
    )


def execute_parallel(spec: RunSpec) -> list[ParallelRunResult]:
    """Run *spec* on the parallel driver regardless of ``ranks`` (the
    shim behind the deprecated ``run_parallel_lbm``, whose historical
    contract runs a 1-rank *parallel* world rather than the sequential
    solver) and return the raw per-rank results."""
    spec = config_mod.from_env().overlay(spec)
    config = spec.resolved_config()
    return _run_parallel(spec, config, _store_for(spec, config))


@dataclass
class EnsembleRunResult(RunResult):
    """A :class:`RunResult` produced by a batched-ensemble group.

    ``rank_results`` is ``None`` (no parallel world ran); :meth:`solver`
    rebuilds the sequential solver from the member's final populations
    instead of rank records.  ``member`` carries the per-member ensemble
    record (steps actually advanced, convergence flag, residual).
    """

    member: Any = None

    def solver(self) -> MulticomponentLBM:
        if self._solver is None:
            solver = MulticomponentLBM(self.config)
            steps = (
                self.member.steps if self.member is not None else self.spec.phases
            )
            solver.restore_state(self.f, steps)
            self._solver = solver
        return self._solver


#: Reason strings :func:`batch_exclusion_reason` can return, in the
#: order the checks run.  ``no-compatible-partner`` is assigned by
#: :func:`run_batch` to eligible specs that found no group to join.
BATCH_EXCLUSION_REASONS = (
    "parallel-ranks",
    "checkpoint",
    "resume",
    "faults",
    "trace",
    "load-time-fn",
    "initial-counts",
    "observer",
    "env-checkpoint",
    "collision",
    "adhesion",
    "no-compatible-partner",
)


def batch_exclusion_reason(
    spec: RunSpec, config: LBMConfig | None = None
) -> str | None:
    """Why *spec* cannot join a batched-ensemble group, or ``None`` when
    it is eligible: sequential, no checkpoint/resume/fault/trace
    machinery (neither explicit nor discovered from the environment),
    BGK collision, no wall adhesion.

    The reason lands on the fallback result
    (:attr:`RunResult.batch_fallback_reason`) and on the
    ``api.batch.fallback.<reason>`` observer counter, so callers that
    build batches — the :mod:`repro.serve` coalescer above all — can see
    *why* a spec went down the sequential path instead of guessing.
    """
    if config is None:
        config = spec.resolved_config()
    if spec.ranks != 1:
        return "parallel-ranks"
    if spec.checkpoint_store is not None or spec.checkpoint_dir is not None:
        return "checkpoint"
    if spec.resume:
        return "resume"
    if spec.faults is not None:
        return "faults"
    if spec.trace_path is not None:
        return "trace"
    if spec.load_time_fn is not None:
        return "load-time-fn"
    if spec.initial_counts is not None:
        return "initial-counts"
    if spec.observer.enabled:
        return "observer"
    if config_mod.from_env().ckpt_dir is not None:
        return "env-checkpoint"
    if config.collision != "bgk":
        return "collision"
    if config.adhesion is not None:
        return "adhesion"
    return None


def _ensemble_eligible(spec: RunSpec, config: LBMConfig) -> bool:
    return batch_exclusion_reason(spec, config) is None


def batch_compatible(base: RunSpec, other: RunSpec) -> bool:
    """Whether two specs could share one batched-ensemble group: both
    eligible (:func:`batch_exclusion_reason` is ``None``), equal phase
    targets, and differing only in the swept scalar knobs.  The
    :mod:`repro.serve` coalescer uses this to group queued jobs before
    handing them to :func:`run_batch`."""
    base = config_mod.from_env().overlay(base)
    other = config_mod.from_env().overlay(other)
    base_cfg = base.resolved_config()
    other_cfg = other.resolved_config()
    return (
        batch_exclusion_reason(base, base_cfg) is None
        and batch_exclusion_reason(other, other_cfg) is None
        and base.phases == other.phases
        and _member_delta(base_cfg, other_cfg) is not None
    )


def _member_delta(base: LBMConfig, config: LBMConfig):
    """The :class:`~repro.lbm.ensemble.MemberParams` turning *base* into
    *config*, or ``None`` when they differ beyond the swept knobs
    (coupling matrix, wall-force amplitude, body acceleration, wall
    scenario with an unchanged solid mask)."""
    from repro.lbm.ensemble import MemberParams

    if (
        base.geometry != config.geometry
        or base.components != config.components
        or base.lattice is not config.lattice
        or base.psi is not config.psi
        or base.collision != config.collision
        or base.adhesion != config.adhesion
    ):
        return None
    scenario = None
    if (base.scenario is None) != (config.scenario is None):
        return None
    if base.scenario is not None and base.scenario != config.scenario:
        if (
            base.scenario.geometry_signature()
            != config.scenario.geometry_signature()
        ):
            return None  # different solid masks cannot share a batch
        scenario = config.scenario
    wall_amplitude = None
    if (base.wall_force is None) != (config.wall_force is None):
        return None
    if base.wall_force is not None:
        if (
            base.wall_force.decay_length != config.wall_force.decay_length
            or base.wall_force.component != config.wall_force.component
        ):
            return None
        if base.wall_force.amplitude != config.wall_force.amplitude:
            wall_amplitude = float(config.wall_force.amplitude)
    body = None
    if base.body_acceleration != config.body_acceleration:
        if config.body_acceleration is None:
            return None  # MemberParams cannot express "drop the body force"
        body = tuple(config.body_acceleration)
    g_matrix = None
    if not np.array_equal(
        np.asarray(base.g_matrix), np.asarray(config.g_matrix)
    ):
        g_matrix = np.asarray(config.g_matrix, dtype=np.float64)
    return MemberParams(
        g_matrix=g_matrix,
        wall_amplitude=wall_amplitude,
        body_acceleration=body,
        scenario=scenario,
    )


def run_batch(
    specs: list[RunSpec] | tuple[RunSpec, ...],
    *,
    check_every: int = 0,
    tol: float = 0.0,
    observer: ObserverLike = NULL_OBSERVER,
) -> list[RunResult]:
    """Execute many specs, batching compatible ones into stacked
    ensembles.

    Specs that are sequential, carry no checkpoint/fault/trace
    machinery, and differ only in the swept scalar knobs — coupling
    matrix, wall-force amplitude, body acceleration — with equal phase
    targets are grouped and advanced by the ``batched`` kernel backend
    as one ``(N, C, Q, *S)`` array pass per step
    (:func:`repro.lbm.ensemble.run_ensemble`).  Everything else falls
    back to :func:`run`.  Results come back in input order and are
    bit-identical to running each spec individually.

    Parameters
    ----------
    check_every / tol:
        Per-member early-exit: every *check_every* steps a member whose
        mixture-velocity residual fell below *tol* is snapshotted and
        retired from the batch (0 disables; see
        :class:`repro.lbm.ensemble.BatchedEnsemble`).
    observer:
        Ensemble-level observability (per-kernel timings, active-member
        gauge, aggregate µs/point) for the batched groups.
    """
    from repro.lbm.ensemble import EnsembleSpec, run_ensemble

    specs = list(specs)
    overlaid = [config_mod.from_env().overlay(s) for s in specs]
    configs = [s.resolved_config() for s in overlaid]
    results: list[RunResult | None] = [None] * len(specs)
    fallback_reasons: dict[int, str] = {
        i: reason
        for i in range(len(specs))
        if (reason := batch_exclusion_reason(overlaid[i], configs[i]))
        is not None
    }

    grouped: list[list[tuple[int, Any]]] = []
    assigned = [False] * len(specs)
    for i in range(len(specs)):
        if assigned[i] or i in fallback_reasons:
            continue
        from repro.lbm.ensemble import MemberParams

        group: list[tuple[int, Any]] = [(i, MemberParams())]
        assigned[i] = True
        for j in range(i + 1, len(specs)):
            if assigned[j] or j in fallback_reasons:
                continue
            if overlaid[j].phases != overlaid[i].phases:
                continue
            delta = _member_delta(configs[i], configs[j])
            if delta is None:
                continue
            group.append((j, delta))
            assigned[j] = True
        grouped.append(group)

    for group in grouped:
        if len(group) == 1:
            # A lone member gains nothing from batching; the plain path
            # keeps every sequential behaviour.
            idx = group[0][0]
            fallback_reasons[idx] = "no-compatible-partner"
            results[idx] = run(specs[idx])
            continue
        base_idx = group[0][0]
        ens_spec = EnsembleSpec(
            base=configs[base_idx],
            members=tuple(params for _, params in group),
        )
        ens_result = run_ensemble(
            ens_spec,
            overlaid[base_idx].phases,
            check_every=check_every,
            tol=tol,
            observer=observer,
        )
        for (idx, _), member in zip(group, ens_result.members):
            results[idx] = EnsembleRunResult(
                spec=overlaid[idx],
                config=configs[idx],
                f=member.f,
                rank_results=None,
                member=member,
            )

    for i, spec in enumerate(specs):
        if results[i] is None:
            results[i] = run(spec)
    for i, reason in fallback_reasons.items():
        results[i].batch_fallback_reason = reason
        if observer.enabled:
            observer.counter(f"api.batch.fallback.{reason}").add()
    return results


def _run_sequential(
    spec: RunSpec, config: LBMConfig, store: Any
) -> RunResult:
    obs, owns_observer = _spec_observer(spec)
    try:
        solver = MulticomponentLBM(config, observer=obs)
        if spec.resume:
            manifest = store.latest_good()
            if manifest is not None:
                store.restore_solver(solver, manifest=manifest)
        remaining = max(0, spec.phases - solver.step_count)
        solver.run(
            remaining,
            checkpoint_every=spec.checkpoint_every if store is not None else 0,
            checkpoint_store=store,
        )
        if obs.enabled:
            obs.emit_metrics()
    finally:
        if owns_observer:
            obs.close()
    return RunResult(
        spec=spec, config=config, f=solver.f, rank_results=None, _solver=solver
    )