"""The one documented entry point: describe a run, then run it.

A :class:`RunSpec` is a frozen description of everything a run needs —
the physics configuration, phase count, rank count and transport,
remapping policy, checkpoint policy, observability — and :func:`run`
executes it, dispatching to the sequential solver (``ranks == 1``) or
the parallel driver (``ranks > 1``) on either transport::

    from repro.api import RunSpec, run

    spec = RunSpec(config=cfg, phases=1000, ranks=4, transport="processes")
    result = run(spec)
    result.f          # global populations (C, Q, nx, *cross)
    result.solver()   # a sequential solver holding the final state

Environment overlay: unset dispatch fields are filled from the
``REPRO_*`` variables via :func:`repro.config.from_env` (transport from
``REPRO_TRANSPORT``, checkpointing from the ``REPRO_CKPT_*`` family);
explicit spec values always win.  The legacy entry points —
:func:`repro.parallel.driver.run_parallel_lbm`, the experiments runner's
CLI flags — are deprecation shims that build a ``RunSpec`` and land
here, so every path through the library executes the same code.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

import repro.config as config_mod
from repro.core.policies import RemappingConfig
from repro.lbm.solver import LBMConfig, MulticomponentLBM
from repro.obs.observer import NULL_OBSERVER, ObserverLike
from repro.parallel.driver import (
    LoadTimeFn,
    ParallelRunResult,
    _run_parallel,
    _spec_observer,
    assemble_global_f,
    solver_from_results,
)

__all__ = ["RunSpec", "RunResult", "run"]


@dataclass(frozen=True)
class RunSpec:
    """Complete, immutable description of one solver run.

    Sequential runs (``ranks == 1``, the default) execute on the
    in-process :class:`~repro.lbm.solver.MulticomponentLBM`; parallel
    runs (``ranks > 1``) on the slab-decomposed driver over the chosen
    *transport*.  Fields left at their defaults are overlaid from the
    environment by :func:`run` (see :mod:`repro.config`).
    """

    #: Physics/geometry configuration (shared by every rank).
    config: LBMConfig
    #: Total phase target.  With ``resume=True`` this is absolute: a
    #: restored run executes only the remainder.
    phases: int
    #: 1 = sequential solver; > 1 = parallel slab decomposition.
    ranks: int = 1
    #: ``"threads"`` | ``"processes"`` | None (environment, then threads).
    transport: str | None = None
    #: Kernel-backend override; None keeps ``config.backend``.
    backend: str | None = None
    #: Remapping policy name (parallel): filtered/conservative/global/no-remap.
    policy: str = "filtered"
    remap_config: RemappingConfig | None = None
    #: Synthetic per-phase load index for remapping tests (parallel only).
    load_time_fn: LoadTimeFn | None = None
    #: Initial planes per rank (parallel only); None splits evenly.
    initial_counts: tuple[int, ...] | None = None
    observer: ObserverLike = field(default=NULL_OBSERVER)
    #: Write a self-contained JSONL trace here (exclusive with observer).
    trace_path: str | None = None
    #: Explicit checkpoint store, or a directory from which one is built.
    checkpoint_store: Any = None
    checkpoint_dir: str | Path | None = None
    checkpoint_every: int = 0
    checkpoint_keep: int = 3
    resume: bool = False
    #: Fault-injection plan (:class:`repro.ckpt.FaultPlan`; parallel only).
    faults: Any = None
    #: Wall-clock limit for the rank world (parallel only).
    timeout: float = 600.0

    def __post_init__(self) -> None:
        if self.phases < 0:
            raise ValueError(f"phases must be >= 0, got {self.phases}")
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.initial_counts is not None:
            object.__setattr__(
                self, "initial_counts", tuple(int(n) for n in self.initial_counts)
            )
        if self.checkpoint_store is not None and self.checkpoint_dir is not None:
            raise ValueError(
                "pass either checkpoint_store or checkpoint_dir, not both"
            )

    def resolved_config(self) -> LBMConfig:
        """The configuration with this spec's backend override applied."""
        if self.backend is None or self.backend == self.config.backend:
            return self.config
        return dataclasses.replace(self.config, backend=self.backend)


@dataclass
class RunResult:
    """What :func:`run` returns, transport- and mode-agnostic.

    ``f`` is always the **global** population array ``(C, Q, nx,
    *cross)``; ``rank_results`` carries the per-rank
    :class:`~repro.parallel.driver.ParallelRunResult` records for
    parallel runs (``None`` for sequential ones).
    """

    spec: RunSpec
    config: LBMConfig
    f: np.ndarray
    rank_results: list[ParallelRunResult] | None = None
    _solver: Any = None

    def solver(self) -> MulticomponentLBM:
        """A sequential solver holding the run's final state, so the
        full diagnostics toolbox (profiles, slip measures, exporters)
        applies to any run's output."""
        if self._solver is None:
            self._solver = solver_from_results(self.rank_results, self.config)
        return self._solver


def _store_for(spec: RunSpec, config: LBMConfig) -> Any:
    """The spec's checkpoint store: explicit, or built per-config under
    ``checkpoint_dir`` (same fingerprint-keyed layout as the
    ``REPRO_CKPT_DIR`` discovery path)."""
    if spec.checkpoint_store is not None:
        return spec.checkpoint_store
    if spec.checkpoint_dir is None:
        return None
    from repro.ckpt.policy import CheckpointPolicy

    policy = CheckpointPolicy(
        root=Path(spec.checkpoint_dir),
        every=spec.checkpoint_every,
        resume=spec.resume,
        keep_last=spec.checkpoint_keep,
    )
    return policy.store_for(config)


def run(spec: RunSpec) -> RunResult:
    """Execute *spec* and return a :class:`RunResult`.

    Applies the environment overlay, resolves the backend and the
    checkpoint store once, then dispatches on ``spec.ranks``.
    """
    spec = config_mod.from_env().overlay(spec)
    config = spec.resolved_config()
    store = _store_for(spec, config)
    if spec.resume and store is None:
        raise ValueError("resume=True needs a checkpoint_store or checkpoint_dir")
    if spec.ranks == 1:
        for name in ("load_time_fn", "faults", "initial_counts"):
            if getattr(spec, name) is not None:
                raise ValueError(f"{name} requires ranks > 1")
        return _run_sequential(spec, config, store)
    results = _run_parallel(spec, config, store)
    return RunResult(
        spec=spec,
        config=config,
        f=assemble_global_f(results),
        rank_results=results,
    )


def execute_parallel(spec: RunSpec) -> list[ParallelRunResult]:
    """Run *spec* on the parallel driver regardless of ``ranks`` (the
    shim behind the deprecated ``run_parallel_lbm``, whose historical
    contract runs a 1-rank *parallel* world rather than the sequential
    solver) and return the raw per-rank results."""
    spec = config_mod.from_env().overlay(spec)
    config = spec.resolved_config()
    return _run_parallel(spec, config, _store_for(spec, config))


def _run_sequential(
    spec: RunSpec, config: LBMConfig, store: Any
) -> RunResult:
    obs, owns_observer = _spec_observer(spec)
    try:
        solver = MulticomponentLBM(config, observer=obs)
        if spec.resume:
            manifest = store.latest_good()
            if manifest is not None:
                store.restore_solver(solver, manifest=manifest)
        remaining = max(0, spec.phases - solver.step_count)
        solver.run(
            remaining,
            checkpoint_every=spec.checkpoint_every if store is not None else 0,
            checkpoint_store=store,
        )
        if obs.enabled:
            obs.emit_metrics()
    finally:
        if owns_observer:
            obs.close()
    return RunResult(
        spec=spec, config=config, f=solver.f, rank_results=None, _solver=solver
    )