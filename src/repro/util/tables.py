"""Plain-text table formatting for experiment reports.

The experiment harness prints the same rows/series the paper reports; this
module renders them as aligned ASCII tables so ``bench_output.txt`` and
EXPERIMENTS.md stay readable without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


def format_cell(value: Any, float_fmt: str = "{:.3f}") -> str:
    """Render one table cell: floats via *float_fmt*, everything else via str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Format *rows* under *headers* as an aligned ASCII table.

    Every row must have the same number of columns as *headers*; a mismatch
    raises ``ValueError`` (it is always a bug in the caller's report code).
    """
    str_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} columns, expected {len(headers)}"
            )
        str_rows.append([format_cell(v, float_fmt) for v in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
