"""Terminal rendering of 2-D scalar fields (examples/debugging aid)."""

from __future__ import annotations

import numpy as np

#: Default luminance ramp, light to dark.
DEFAULT_RAMP = " .:-=+*#"


def render_field(
    field: np.ndarray,
    *,
    mask: np.ndarray | None = None,
    mask_char: str = "O",
    ramp: str = DEFAULT_RAMP,
    max_width: int = 72,
    max_height: int = 36,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Render a 2-D field as ASCII, x horizontal and y upward.

    Parameters
    ----------
    field:
        2-D array indexed ``[x, y]``.
    mask:
        Optional boolean array of the same shape; True cells render as
        *mask_char* (solid obstacles, walls).
    ramp:
        Characters from low to high value.
    max_width / max_height:
        The field is strided down to fit (no interpolation).
    vmin / vmax:
        Value range; defaults to the (unmasked) field extrema.
    """
    field = np.asarray(field)
    if field.ndim != 2:
        raise ValueError(f"field must be 2-D, got shape {field.shape}")
    if mask is not None and mask.shape != field.shape:
        raise ValueError("mask shape must match field shape")
    if not ramp:
        raise ValueError("ramp must be non-empty")

    nx, ny = field.shape
    sx = max(1, int(np.ceil(nx / max_width)))
    sy = max(1, int(np.ceil(ny / max_height)))
    sub = field[::sx, ::sy]
    sub_mask = mask[::sx, ::sy] if mask is not None else None

    values = sub if sub_mask is None else sub[~sub_mask]
    if values.size == 0:
        raise ValueError("nothing to render (fully masked)")
    lo = float(values.min()) if vmin is None else vmin
    hi = float(values.max()) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0

    lines = []
    for j in range(sub.shape[1] - 1, -1, -1):
        row = []
        for i in range(sub.shape[0]):
            if sub_mask is not None and sub_mask[i, j]:
                row.append(mask_char)
            else:
                level = int((sub[i, j] - lo) / span * (len(ramp) - 1) + 0.5)
                row.append(ramp[min(max(level, 0), len(ramp) - 1)])
        lines.append("".join(row))
    return "\n".join(lines)
