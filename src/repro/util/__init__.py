"""Shared utilities: validation, seeded RNG helpers, ASCII tables, timers."""

from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_probability,
    check_integer,
)
from repro.util.tables import format_table
from repro.util.rng import make_rng, spawn_rngs

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_probability",
    "check_integer",
    "format_table",
    "make_rng",
    "spawn_rngs",
]
