"""Small timing helpers for harness code and examples."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch::

        with Timer() as t:
            work()
        print(t.elapsed)

    Re-entering restarts the clock; *elapsed* keeps the last lap and
    *total* accumulates across laps.  A lap aborted by an exception is
    discarded — *elapsed*, *total*, *laps* and therefore *mean* only ever
    reflect laps that ran to completion — and the timer stays reusable.
    """

    elapsed: float = 0.0
    total: float = 0.0
    laps: int = 0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without entering")
        start, self._start = self._start, None
        if exc_type is not None:
            return
        self.elapsed = time.perf_counter() - start
        self.total += self.elapsed
        self.laps += 1

    @property
    def mean(self) -> float:
        """Mean lap duration (0 before any lap completes)."""
        return self.total / self.laps if self.laps else 0.0


def format_duration(seconds: float) -> str:
    """Human-readable duration: ``431.2ms``, ``12.3s``, ``4m08s``,
    ``2h31m``."""
    if seconds < 0:
        raise ValueError(f"duration must be >= 0, got {seconds}")
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{secs:02.0f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes):02d}m"
