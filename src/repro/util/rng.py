"""Deterministic random-number-generator plumbing.

All stochastic pieces of the library (workload generators, spike schedules)
take an explicit ``numpy.random.Generator`` or an integer seed.  Nothing in
the library touches global RNG state, so every experiment is reproducible
from its seed alone.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce *seed* into a ``numpy.random.Generator``.

    Passing an existing generator returns it unchanged (shared stream);
    passing ``None`` creates an unseeded generator (non-reproducible, only
    appropriate for interactive exploration).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Create *n* independent child generators from one parent seed.

    Uses ``SeedSequence.spawn`` so the children's streams are statistically
    independent regardless of how many draws each consumes.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def generator_state(gen: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state as a JSON-safe dict.

    The inverse of :func:`restore_generator`; used by ``repro.ckpt`` so a
    resumed run continues the exact random stream it was interrupted on.
    """
    return _jsonify(gen.bit_generator.state)


def restore_generator(state: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`generator_state` snapshot."""
    name = state.get("bit_generator")
    if not isinstance(name, str):
        raise ValueError("state lacks a 'bit_generator' name")
    try:
        cls = getattr(np.random, name)
    except AttributeError as exc:
        raise ValueError(f"unknown bit generator {name!r}") from exc
    bitgen = cls()
    bitgen.state = state
    return np.random.Generator(bitgen)


def _jsonify(obj):
    """Recursively convert numpy scalars/arrays to plain Python types."""
    if isinstance(obj, dict):
        return {k: _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [_jsonify(v) for v in obj.tolist()]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj
