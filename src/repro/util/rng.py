"""Deterministic random-number-generator plumbing.

All stochastic pieces of the library (workload generators, spike schedules)
take an explicit ``numpy.random.Generator`` or an integer seed.  Nothing in
the library touches global RNG state, so every experiment is reproducible
from its seed alone.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce *seed* into a ``numpy.random.Generator``.

    Passing an existing generator returns it unchanged (shared stream);
    passing ``None`` creates an unseeded generator (non-reproducible, only
    appropriate for interactive exploration).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Create *n* independent child generators from one parent seed.

    Uses ``SeedSequence.spawn`` so the children's streams are statistically
    independent regardless of how many draws each consumes.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
