"""Argument-validation helpers used across the library.

Every public constructor validates eagerly so that configuration errors
surface at object-creation time rather than deep inside a simulation loop.
"""

from __future__ import annotations

import math
from typing import Any


def check_positive(value: float, name: str) -> float:
    """Return *value* if it is a finite number > 0, else raise ``ValueError``."""
    value = _check_finite_number(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Return *value* if it is a finite number >= 0, else raise ``ValueError``."""
    value = _check_finite_number(value, name)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return *value* if it lies in [low, high] (or (low, high))."""
    value = _check_finite_number(value, name)
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return *value* if it is a valid probability / fraction in [0, 1]."""
    return check_in_range(value, name, 0.0, 1.0)


def check_integer(value: Any, name: str, *, minimum: int | None = None) -> int:
    """Return *value* as ``int`` if integral (bools rejected), else raise."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        # Accept integral floats like 3.0 coming from config files.
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        else:
            raise TypeError(f"{name} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return int(value)


def _check_finite_number(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return float(value)
