"""The ``@hot_path`` marker: declaring a function allocation-critical.

The fused kernel backend's steady-state guarantee — zero full-grid
allocation per step, pinned at runtime by the tracemalloc regression test
in ``tests/lbm/test_backends.py`` — only holds while every kernel keeps
writing through its preallocated scratch pool.  Decorating a function
with :func:`hot_path` records that contract in the code itself:

- at runtime the decorator is free (it tags the function and returns it
  unchanged — no wrapper, no call overhead);
- statically, the ``REP001 hot-path-alloc`` checker in
  :mod:`repro.analysis` forbids allocating NumPy constructors and
  non-``out=`` ufunc calls inside any ``@hot_path`` function, so a
  regression is flagged at review time instead of by a slow benchmark.

Every registration lands in :data:`HOT_PATH_REGISTRY` (qualified name ->
function) so tests can assert the fused kernels are actually covered.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

#: All functions registered via :func:`hot_path`, keyed by
#: ``module.qualname``.
HOT_PATH_REGISTRY: dict[str, Callable] = {}


def hot_path(fn: F) -> F:
    """Mark *fn* as an allocation-free hot path (see module docstring)."""
    fn.__hot_path__ = True  # type: ignore[attr-defined]
    HOT_PATH_REGISTRY[f"{fn.__module__}.{fn.__qualname__}"] = fn
    return fn


def is_hot_path(fn: object) -> bool:
    """True if *fn* carries the :func:`hot_path` marker."""
    return bool(getattr(fn, "__hot_path__", False))
