"""Environment-driven checkpoint policy.

Mirrors the observability layer's ``REPRO_OBS_TRACE`` discovery: the
experiments runner (or any entry point) sets a handful of environment
variables and every solver run in the process checkpoints itself — no
per-experiment plumbing.

Variables
---------
``REPRO_CKPT_DIR``
    Root directory of the checkpoint store (unset = checkpointing off).
``REPRO_CKPT_EVERY``
    Checkpoint interval in steps/phases (default 0 = only explicit
    saves).
``REPRO_CKPT_RESUME``
    Truthy (``1``/``true``/``yes``/``on``): runs look for the latest
    good generation matching their configuration and continue from it.
``REPRO_CKPT_KEEP``
    Retention window (``keep_last``, default 3).

Because one process may run many differently-configured solvers, each
configuration gets its own store subdirectory keyed by a fingerprint
hash — a resumed experiment finds exactly its own checkpoints.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.ckpt.io import sha256_bytes
from repro.ckpt.manifest import config_fingerprint
from repro.ckpt.store import CheckpointStore
from repro.obs.observer import NULL_OBSERVER, ObserverLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lbm.solver import LBMConfig

ENV_DIR = "REPRO_CKPT_DIR"
ENV_EVERY = "REPRO_CKPT_EVERY"
ENV_RESUME = "REPRO_CKPT_RESUME"
ENV_KEEP = "REPRO_CKPT_KEEP"

_TRUTHY = {"1", "true", "yes", "on"}


def fingerprint_key(config: "LBMConfig") -> str:
    """Short stable hash of a configuration fingerprint — the per-config
    store subdirectory name."""
    doc = json.dumps(config_fingerprint(config), sort_keys=True)
    return sha256_bytes(doc.encode())[:12]


@dataclass(frozen=True)
class CheckpointPolicy:
    """How (and whether) a run checkpoints itself."""

    root: Path
    every: int = 0
    resume: bool = False
    keep_last: int = 3
    keep_every: int = 0

    def store_for(
        self,
        config: "LBMConfig",
        *,
        observer: ObserverLike = NULL_OBSERVER,
    ) -> CheckpointStore:
        """The per-configuration store under this policy's root."""
        return CheckpointStore(
            self.root / fingerprint_key(config),
            keep_last=self.keep_last,
            keep_every=self.keep_every,
            observer=observer,
        )


def policy_from_env(environ=os.environ) -> CheckpointPolicy | None:
    """The process-default policy, or ``None`` when ``REPRO_CKPT_DIR``
    is unset/empty."""
    path = str(environ.get(ENV_DIR, "")).strip()
    if not path:
        return None
    every = int(str(environ.get(ENV_EVERY, "0")).strip() or 0)
    resume = str(environ.get(ENV_RESUME, "")).strip().lower() in _TRUTHY
    keep_last = int(str(environ.get(ENV_KEEP, "3")).strip() or 3)
    return CheckpointPolicy(
        root=Path(path), every=every, resume=resume, keep_last=keep_last
    )
