"""Environment-driven checkpoint policy.

Mirrors the observability layer's ``REPRO_OBS_TRACE`` discovery: the
experiments runner (or any entry point) sets a handful of environment
variables and every solver run in the process checkpoints itself — no
per-experiment plumbing.

Variables
---------
``REPRO_CKPT_DIR``
    Root directory of the checkpoint store (unset = checkpointing off).
``REPRO_CKPT_EVERY``
    Checkpoint interval in steps/phases (default 0 = only explicit
    saves).
``REPRO_CKPT_RESUME``
    Truthy (``1``/``true``/``yes``/``on``): runs look for the latest
    good generation matching their configuration and continue from it.
``REPRO_CKPT_KEEP``
    Retention window (``keep_last``, default 3).

Because one process may run many differently-configured solvers, each
configuration gets its own store subdirectory keyed by a fingerprint
hash — a resumed experiment finds exactly its own checkpoints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.ckpt.io import sha256_bytes
from repro.ckpt.manifest import config_fingerprint
from repro.ckpt.store import CheckpointStore
from repro.config import (
    ENV_CKPT_DIR as ENV_DIR,
    ENV_CKPT_EVERY as ENV_EVERY,
    ENV_CKPT_KEEP as ENV_KEEP,
    ENV_CKPT_RESUME as ENV_RESUME,
    from_env,
)
from repro.obs.observer import NULL_OBSERVER, ObserverLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lbm.solver import LBMConfig


def fingerprint_key(config: "LBMConfig") -> str:
    """Short stable hash of a configuration fingerprint — the per-config
    store subdirectory name."""
    doc = json.dumps(config_fingerprint(config), sort_keys=True)
    return sha256_bytes(doc.encode())[:12]


@dataclass(frozen=True)
class CheckpointPolicy:
    """How (and whether) a run checkpoints itself."""

    root: Path
    every: int = 0
    resume: bool = False
    keep_last: int = 3
    keep_every: int = 0

    def store_for(
        self,
        config: "LBMConfig",
        *,
        observer: ObserverLike = NULL_OBSERVER,
    ) -> CheckpointStore:
        """The per-configuration store under this policy's root."""
        return CheckpointStore(
            self.root / fingerprint_key(config),
            keep_last=self.keep_last,
            keep_every=self.keep_every,
            observer=observer,
        )


def policy_from_env(environ=None) -> CheckpointPolicy | None:
    """The process-default policy, or ``None`` when ``REPRO_CKPT_DIR``
    is unset/empty (parsing delegated to :func:`repro.config.from_env`)."""
    env = from_env(environ)
    if env.ckpt_dir is None:
        return None
    return CheckpointPolicy(
        root=Path(env.ckpt_dir),
        every=env.ckpt_every,
        resume=env.ckpt_resume,
        keep_last=env.ckpt_keep,
    )
