"""``repro.ckpt`` — checkpoint/restart with deterministic resume.

Versioned, checksummed, atomically-written snapshots of full solver
state as ``.npz`` shards plus a JSON manifest; a retention policy; a
fault-injection layer for recovery testing; and a CLI
(``python -m repro.ckpt inspect|verify|prune``).

Guarantee (pinned by tests/ckpt and tests/parallel): a run checkpointed
at step *k* and resumed on the same backend continues **bit-exactly** —
``run(n)`` equals ``run(k); save; load; run(n - k)`` to the last ulp,
sequential or parallel, across dynamic plane remapping.

See docs/CHECKPOINTING.md for the on-disk format and the recovery
semantics.
"""

from repro.ckpt.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_file,
    truncate_file,
)
from repro.ckpt.io import (
    atomic_open,
    atomic_savez,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    sha256_bytes,
    sha256_file,
)
from repro.ckpt.manifest import (
    CKPT_FORMAT,
    CheckpointError,
    CheckpointRejected,
    CorruptCheckpointError,
    IncompatibleCheckpointError,
    Manifest,
    ShardInfo,
    check_fingerprint,
    config_fingerprint,
)
from repro.ckpt.policy import (
    CheckpointPolicy,
    fingerprint_key,
    policy_from_env,
)
from repro.ckpt.store import CheckpointStore, GenerationInfo

__all__ = [
    "CKPT_FORMAT",
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointRejected",
    "CheckpointStore",
    "CorruptCheckpointError",
    "FaultPlan",
    "FaultSpec",
    "GenerationInfo",
    "IncompatibleCheckpointError",
    "InjectedFault",
    "Manifest",
    "ShardInfo",
    "atomic_open",
    "atomic_savez",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "check_fingerprint",
    "config_fingerprint",
    "corrupt_file",
    "fingerprint_key",
    "policy_from_env",
    "sha256_bytes",
    "sha256_file",
    "truncate_file",
]
