"""Atomic, checksummed file writes — the only sanctioned way to persist
state from inside ``repro``.

Every helper follows the same discipline: write the full payload to a
temporary file **in the destination directory**, flush and ``fsync`` it,
then ``os.replace`` it over the destination and fsync the directory.  A
crash at any instant leaves either the complete old file or the complete
new file — never a truncated hybrid — which is what lets the checkpoint
store treat "manifest present and parseable" as its commit point.

The REP005 static rule (:mod:`repro.analysis.checkers.atomicwrite`)
enforces that persistent writes elsewhere in the library route through
this module; streaming sinks (``repro.obs.sink``) are the one exemption.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

import numpy as np

#: Chunk size for streaming checksums (1 MiB).
_CHUNK = 1 << 20


def fsync_directory(path: Path) -> None:
    """Flush directory metadata so a completed rename survives a crash
    (best-effort: some filesystems refuse to open directories)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_open(
    path: str | Path, mode: str = "w", **open_kwargs: Any
) -> Iterator[Any]:
    """Context manager yielding a handle onto a same-directory temporary
    file; on clean exit the temp file is fsynced and renamed over *path*,
    on exception it is removed and *path* is untouched.

    *mode* must be a write mode (``"w"``, ``"wb"``); append modes make no
    sense for whole-file replacement.
    """
    if not any(ch in mode for ch in "wx"):
        raise ValueError(f"atomic_open needs a write mode, got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode, **open_kwargs) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_directory(path.parent)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def atomic_write_bytes(path: str | Path, data: bytes) -> int:
    """Atomically replace *path* with *data*; returns the byte count."""
    with atomic_open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> int:
    """Atomically replace *path* with *text* (encoded)."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str | Path, obj: Any) -> int:
    """Atomically replace *path* with *obj* serialized as sorted-key,
    indented JSON (the manifest format)."""
    return atomic_write_text(
        path, json.dumps(obj, indent=2, sort_keys=True) + "\n"
    )


def atomic_savez(path: str | Path, **arrays: np.ndarray) -> int:
    """Atomically replace *path* with a compressed ``.npz`` holding
    *arrays*; returns the final file size in bytes.

    The archive is written through a file handle, so numpy performs no
    suffix games on the temporary name.
    """
    path = Path(path)
    with atomic_open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    return path.stat().st_size


def sha256_file(path: str | Path) -> str:
    """Streaming SHA-256 of a file's contents (hex digest)."""
    digest = hashlib.sha256()
    with open(Path(path), "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def sha256_bytes(data: bytes) -> str:
    """SHA-256 of a byte string (hex digest)."""
    return hashlib.sha256(data).hexdigest()
