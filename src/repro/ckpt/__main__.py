"""Entry point: ``python -m repro.ckpt ...``."""

import sys

from repro.ckpt.cli import main

if __name__ == "__main__":
    sys.exit(main())
