"""Checkpoint manifest: the versioned, checksummed description of one
checkpoint generation.

A generation is a directory ``step-<step:08d>/`` holding one ``.npz``
shard per writer plus a ``manifest.json``.  The manifest is written
*last*, atomically — its presence is the commit point; a generation
without a parseable manifest is an aborted write and is ignored by
:meth:`repro.ckpt.store.CheckpointStore.latest_good`.

Shards are x-plane ranges of the global domain.  The manifest records
each shard's ``plane_start``/``plane_count`` explicitly, so a checkpoint
written by a parallel run *after dynamic remapping has moved planes
between ranks* restores correctly into any target decomposition — the
ownership map travels with the data instead of being implied by rank
order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lbm.solver import LBMConfig

#: Bumped whenever the on-disk layout changes incompatibly.
CKPT_FORMAT = 1

#: Name of the per-generation manifest file (the commit point).
MANIFEST_NAME = "manifest.json"


class CheckpointError(Exception):
    """Base class for checkpoint failures."""


class CorruptCheckpointError(CheckpointError):
    """A shard or manifest failed verification (checksum, size, schema)."""


class IncompatibleCheckpointError(CheckpointError):
    """The checkpoint's configuration fingerprint does not match the
    solver attempting to restore it."""


class CheckpointRejected(CheckpointError):
    """The live state failed its health check; nothing was persisted.

    Raised *before* any shard write, so a rejected checkpoint never
    shadows the last good generation with corrupt physics.
    """


@dataclass(frozen=True)
class ShardInfo:
    """One shard's entry in the manifest.

    ``plane_start``/``plane_count`` delimit the shard's x band;
    ``col_start``/``col_count`` its band along the first cross-section
    axis.  ``col_count=None`` means the full cross extent — the 1-D slab
    layout, and what every pre-2-D manifest implicitly carried, so old
    generations parse unchanged.
    """

    filename: str
    rank: int
    plane_start: int
    plane_count: int
    sha256: str
    nbytes: int
    col_start: int = 0
    col_count: int | None = None

    def to_json(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "ShardInfo":
        col_count = doc.get("col_count")
        return cls(
            filename=str(doc["filename"]),
            rank=int(doc["rank"]),
            plane_start=int(doc["plane_start"]),
            plane_count=int(doc["plane_count"]),
            sha256=str(doc["sha256"]),
            nbytes=int(doc["nbytes"]),
            col_start=int(doc.get("col_start", 0)),
            col_count=None if col_count is None else int(col_count),
        )


@dataclass(frozen=True)
class Manifest:
    """The parsed ``manifest.json`` of one generation."""

    format: int
    step: int
    fingerprint: dict[str, Any]
    shards: tuple[ShardInfo, ...]
    rng_state: dict[str, Any] | None = None

    @property
    def total_planes(self) -> int:
        return sum(s.plane_count for s in self.shards)

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self.shards)

    def shards_in_x_order(self) -> tuple[ShardInfo, ...]:
        return tuple(
            sorted(self.shards, key=lambda s: (s.plane_start, s.col_start))
        )

    def is_two_dimensional(self) -> bool:
        """Whether any shard owns less than the full cross extent."""
        return any(s.col_count is not None for s in self.shards)

    def validate_coverage(self) -> None:
        """Shard rectangles must tile the ``nx × ny`` domain exactly once,
        in any rank order: the x bands tile ``[0, nx)`` and, within each
        x band, the column bands tile ``[0, ny)``."""
        shape = self.fingerprint.get("shape")
        ny = int(shape[1]) if shape is not None and len(shape) > 1 else 1
        bands: dict[tuple[int, int], list[ShardInfo]] = {}
        for shard in self.shards:
            if shard.plane_count < 1:
                raise CorruptCheckpointError(
                    f"shard {shard.filename} owns {shard.plane_count} planes"
                )
            bands.setdefault(
                (shard.plane_start, shard.plane_count), []
            ).append(shard)
        expected = 0
        for (start, count), members in sorted(bands.items()):
            if start != expected:
                raise CorruptCheckpointError(
                    f"shard {members[0].filename} starts at plane "
                    f"{start}, expected {expected} "
                    f"(gap or overlap in the ownership map)"
                )
            expected += count
            col_expected = 0
            for shard in sorted(members, key=lambda s: s.col_start):
                cols = ny if shard.col_count is None else shard.col_count
                if shard.col_start != col_expected or cols < 1:
                    raise CorruptCheckpointError(
                        f"shard {shard.filename} starts at column "
                        f"{shard.col_start} with {cols} columns, expected "
                        f"column {col_expected} (gap or overlap in the "
                        f"ownership map)"
                    )
                col_expected += cols
            if col_expected != ny:
                raise CorruptCheckpointError(
                    f"x band at plane {start} covers {col_expected} columns "
                    f"but the domain has {ny}"
                )
        nx = int(shape[0]) if shape is not None else expected
        if expected != nx:
            raise CorruptCheckpointError(
                f"shards cover {expected} planes but the domain has {nx}"
            )

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "format": self.format,
            "step": self.step,
            "fingerprint": self.fingerprint,
            "shards": [s.to_json() for s in self.shards],
        }
        if self.rng_state is not None:
            doc["rng_state"] = self.rng_state
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Manifest":
        try:
            fmt = int(doc["format"])
            if fmt != CKPT_FORMAT:
                raise CorruptCheckpointError(
                    f"unsupported checkpoint format {fmt} "
                    f"(this build reads format {CKPT_FORMAT})"
                )
            return cls(
                format=fmt,
                step=int(doc["step"]),
                fingerprint=dict(doc["fingerprint"]),
                shards=tuple(
                    ShardInfo.from_json(s) for s in doc["shards"]
                ),
                rng_state=(
                    dict(doc["rng_state"])
                    if doc.get("rng_state") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptCheckpointError(
                f"manifest does not match the schema: {exc!r}"
            ) from exc


def config_fingerprint(config: "LBMConfig") -> dict[str, Any]:
    """Everything that must match for a restore to continue the *same*
    physics.  The kernel backend is deliberately excluded: it selects an
    implementation, not a model (cross-backend restores are legal but
    only same-backend resumes are bit-exact; see docs/CHECKPOINTING.md).
    """
    geo = config.geometry
    return {
        "format": CKPT_FORMAT,
        "lattice": config.lattice.name,
        "shape": [int(s) for s in geo.shape],
        "wall_axes": [int(a) for a in geo.wall_axes],
        "wall_thickness": int(geo.wall_thickness),
        "components": [
            {
                "name": c.name,
                "tau": float(c.tau),
                "mass": float(c.mass),
                "rho_init": float(c.rho_init),
            }
            for c in config.components
        ],
        "g_matrix": np.asarray(config.g_matrix, dtype=np.float64)
        .tolist(),
        "wall_force": (
            None
            if config.wall_force is None
            else {
                "amplitude": float(config.wall_force.amplitude),
                "decay_length": float(config.wall_force.decay_length),
                "component": config.wall_force.component,
            }
        ),
        "body_acceleration": (
            None
            if config.body_acceleration is None
            else [float(a) for a in config.body_acceleration]
        ),
        "collision": config.collision,
        "adhesion": (
            None
            if config.adhesion is None
            else [float(a) for a in config.adhesion]
        ),
        "scenario": (
            None if config.scenario is None else config.scenario.doc()
        ),
        "psi": getattr(config.psi, "__qualname__", repr(config.psi)),
    }


def check_fingerprint(
    manifest: Manifest, config: "LBMConfig"
) -> None:
    """Raise :class:`IncompatibleCheckpointError` unless *manifest* was
    written by a configuration equivalent to *config*."""
    expected = config_fingerprint(config)
    if manifest.fingerprint != expected:
        diffs = sorted(
            key
            for key in set(manifest.fingerprint) | set(expected)
            if manifest.fingerprint.get(key) != expected.get(key)
        )
        raise IncompatibleCheckpointError(
            f"checkpoint incompatible with this configuration "
            f"(differing fields: {diffs})\n"
            f"  checkpoint: {manifest.fingerprint}\n"
            f"  solver:     {expected}"
        )
