"""Fault injection for checkpoint/restart testing.

Two halves:

- :class:`FaultPlan` — deterministic, phase-addressed faults fired from
  instrumented *sites* inside the parallel driver and the checkpoint
  store.  A ``kill`` fault raises :class:`InjectedFault`; a ``stall``
  fault sleeps, simulating a slow writer.  Because the plan is shared by
  every rank thread and addressed by phase number, a "job kill" (every
  rank dies at the same phase, as when one node of an MPI job fails and
  the launcher tears the job down) is exactly reproducible.
- byte-level corruptors (:func:`corrupt_file`, :func:`truncate_file`) —
  post-hoc damage to shards on disk, for proving that verification
  detects what the filesystem can do to a checkpoint.

Fault sites (``site`` strings)
------------------------------
``phase_start``
    Before the phase's collision (driver run loop).
``mid_phase``
    After collision, before the halo exchange — the state is mid-update,
    which is precisely what a checkpoint must never observe.
``shard_written``
    Right after a rank's shard landed on disk, before the manifest
    commit — a crash here must leave the previous generation intact.
``pre_commit``
    On the committing rank, just before the manifest rename.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: The recognised fault sites, in the order a phase visits them.
FAULT_SITES = ("phase_start", "mid_phase", "shard_written", "pre_commit")


class InjectedFault(RuntimeError):
    """A deliberately injected failure (never raised in production)."""

    def __init__(self, site: str, rank: int, at: int):
        super().__init__(
            f"injected fault: rank {rank} killed at {site} of phase {at}"
        )
        self.site = site
        self.rank = rank
        self.at = at


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault."""

    site: str
    at: int
    rank: int | None = None  # None: every rank (a whole-job failure)
    action: str = "kill"  # "kill" | "stall"
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}"
            )
        if self.action not in ("kill", "stall"):
            raise ValueError(f"action must be 'kill' or 'stall', got {self.action!r}")
        if self.action == "stall" and self.stall_seconds <= 0:
            raise ValueError("a stall fault needs stall_seconds > 0")

    def matches(self, site: str, rank: int, at: int) -> bool:
        return (
            site == self.site
            and at == self.at
            and (self.rank is None or rank == self.rank)
        )


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, shared across rank threads.

    ``fired`` records every spec that triggered (list append is atomic
    under the GIL; tests read it after the run joins).
    """

    specs: list[FaultSpec] = field(default_factory=list)
    fired: list[tuple[str, int, int]] = field(default_factory=list)

    # ------------------------------------------------------- construction
    @classmethod
    def kill_job(cls, phase: int, *, site: str = "phase_start") -> "FaultPlan":
        """Every rank dies at *phase* — the MPI fail-stop model: one node
        dropping out takes the whole job with it."""
        return cls([FaultSpec(site=site, at=phase)])

    @classmethod
    def kill_rank(
        cls, rank: int, phase: int, *, site: str = "phase_start"
    ) -> "FaultPlan":
        """Only *rank* dies (its peers will block until their transport
        times out — use short timeouts when testing this mode)."""
        return cls([FaultSpec(site=site, at=phase, rank=rank)])

    @classmethod
    def stall_writer(
        cls, rank: int, step: int, seconds: float
    ) -> "FaultPlan":
        """Rank *rank*'s shard write at *step* takes *seconds* longer."""
        return cls(
            [
                FaultSpec(
                    site="shard_written",
                    at=step,
                    rank=rank,
                    action="stall",
                    stall_seconds=seconds,
                )
            ]
        )

    def also(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    # ------------------------------------------------------------- firing
    def fire(self, site: str, *, rank: int, at: int) -> None:
        """Called by the instrumented sites; raises or stalls per plan."""
        for spec in self.specs:
            if not spec.matches(site, rank, at):
                continue
            self.fired.append((site, rank, at))
            if spec.action == "stall":
                time.sleep(spec.stall_seconds)
            else:
                raise InjectedFault(site, rank, at)


# --------------------------------------------------- byte-level damage
def corrupt_file(
    path, *, offset: int | None = None, xor: int = 0xFF
) -> int:
    """Flip one byte of *path* in place (default: the middle byte);
    returns the offset damaged.  Deterministic — no ambient entropy."""
    from pathlib import Path

    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    if offset is None:
        offset = size // 2
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    # repro: allow[REP005] -- deliberate in-place damage: this helper exists
    # to simulate exactly the torn writes the atomic-io rule prevents
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ (xor & 0xFF) or 0x01]))
    return offset


def truncate_file(path, keep_bytes: int) -> int:
    """Cut *path* down to *keep_bytes* (simulates a crash mid-write on a
    non-atomic writer); returns the bytes removed."""
    from pathlib import Path

    path = Path(path)
    size = path.stat().st_size
    if not 0 <= keep_bytes < size:
        raise ValueError(
            f"keep_bytes must be in [0, {size}), got {keep_bytes}"
        )
    # repro: allow[REP005] -- deliberate truncation for fault-injection tests
    with open(path, "r+b") as fh:
        fh.truncate(keep_bytes)
    return size - keep_bytes
