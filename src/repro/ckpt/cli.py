"""``python -m repro.ckpt`` — inspect, verify and prune checkpoint stores.

Subcommands
-----------
``inspect DIR``
    List every generation: step, commit status, shard count, planes,
    bytes.  ``--json`` emits a machine-readable document.
``verify DIR``
    Re-hash every shard of the latest generation (or ``--step N`` /
    ``--all``).  Exits non-zero when anything fails verification —
    the CI hook for "is this checkpoint restorable?".
``prune DIR --keep-last N [--keep-every M]``
    Apply a retention policy in place and list what was removed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.ckpt.store import CheckpointStore
from repro.util.tables import format_table


def _store(path: str) -> CheckpointStore:
    return CheckpointStore(path, keep_last=0)  # CLI never auto-prunes


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = _store(args.store)
    infos = store.generations()
    if args.json:
        doc = [
            {
                "step": info.step,
                "committed": info.committed,
                "problem": info.problem,
                "shards": (
                    len(info.manifest.shards) if info.manifest else None
                ),
                "planes": (
                    info.manifest.total_planes if info.manifest else None
                ),
                "bytes": (
                    info.manifest.total_bytes if info.manifest else None
                ),
            }
            for info in infos
        ]
        print(json.dumps(doc, indent=2))
        return 0
    if not infos:
        print(f"{args.store}: no generations")
        return 0
    rows = []
    for info in infos:
        if info.manifest is not None:
            rows.append(
                (
                    info.step,
                    "committed",
                    len(info.manifest.shards),
                    info.manifest.total_planes,
                    info.manifest.total_bytes,
                )
            )
        else:
            rows.append((info.step, info.problem or "uncommitted", "-", "-", "-"))
    print(
        format_table(
            ["step", "status", "shards", "planes", "bytes"],
            rows,
            title=args.store,
        )
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    store = _store(args.store)
    infos = store.generations()
    if args.step is not None:
        steps = [args.step]
    elif args.all:
        steps = [info.step for info in infos]
    else:
        committed = [info.step for info in infos if info.committed]
        if not committed:
            print(f"{args.store}: no committed generation to verify")
            return 1
        steps = [committed[-1]]
    failures = 0
    for step in steps:
        problems = store.verify_generation(step)
        if problems:
            failures += 1
            for problem in problems:
                print(f"step {step}: FAIL: {problem}")
        else:
            print(f"step {step}: ok")
    return 1 if failures else 0


def _cmd_prune(args: argparse.Namespace) -> int:
    store = _store(args.store)
    removed = store.prune(
        keep_last=args.keep_last, keep_every=args.keep_every
    )
    if removed:
        print(f"removed {len(removed)} generation(s): {removed}")
    else:
        print("nothing to remove")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ckpt",
        description="Inspect, verify and prune repro checkpoint stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="list generations")
    p_inspect.add_argument("store", help="checkpoint store directory")
    p_inspect.add_argument("--json", action="store_true")
    p_inspect.set_defaults(fn=_cmd_inspect)

    p_verify = sub.add_parser(
        "verify", help="re-hash shards; exit 1 on any failure"
    )
    p_verify.add_argument("store", help="checkpoint store directory")
    p_verify.add_argument("--step", type=int, default=None)
    p_verify.add_argument(
        "--all", action="store_true", help="verify every generation"
    )
    p_verify.set_defaults(fn=_cmd_verify)

    p_prune = sub.add_parser("prune", help="apply a retention policy")
    p_prune.add_argument("store", help="checkpoint store directory")
    p_prune.add_argument("--keep-last", type=int, required=True)
    p_prune.add_argument("--keep-every", type=int, default=0)
    p_prune.set_defaults(fn=_cmd_prune)

    args = parser.parse_args(argv)
    return int(args.fn(args))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
