"""The checkpoint store: generation directories, verification, retention.

Layout under one store root::

    root/
      step-00000040/
        shard-r0000.npz     # x-plane range of the global state (+ extras)
        shard-r0001.npz
        manifest.json       # written last, atomically: the commit point
      step-00000080/
        ...

Writing is two-phase: every shard lands atomically (tempfile + fsync +
rename via :mod:`repro.ckpt.io`), and the manifest — which carries each
shard's SHA-256 — is committed only after all shards exist.  Readers
ignore any generation without a parseable manifest, and
:meth:`CheckpointStore.latest_good` additionally re-hashes every shard,
so a truncated, corrupted or half-written generation is skipped (and
counted) rather than restored.

Instrumentation (through :mod:`repro.obs`): ``ckpt.saves`` /
``ckpt.restores`` / ``ckpt.bytes_written`` / ``ckpt.corrupt_discarded``
counters, ``span.ckpt.save`` / ``span.ckpt.restore`` duration
histograms, and ``ckpt_commit`` / ``ckpt_discard`` / ``ckpt_prune``
trace events.
"""

from __future__ import annotations

import json
import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.ckpt.io import atomic_savez, atomic_write_json, sha256_file
from repro.ckpt.manifest import (
    CKPT_FORMAT,
    MANIFEST_NAME,
    CheckpointRejected,
    CorruptCheckpointError,
    Manifest,
    ShardInfo,
    check_fingerprint,
    config_fingerprint,
)
from repro.obs.observer import NULL_OBSERVER, ObserverLike, resolve_observer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ckpt.faults import FaultPlan
    from repro.lbm.solver import MulticomponentLBM

#: Generation directory name pattern.
GEN_PREFIX = "step-"
_GEN_RE = re.compile(rf"^{GEN_PREFIX}(\d{{8}})$")


@dataclass(frozen=True)
class GenerationInfo:
    """One generation directory as found on disk."""

    step: int
    path: Path
    committed: bool
    manifest: Manifest | None
    problem: str | None = None


class CheckpointStore:
    """Versioned checkpoint generations under one root directory.

    Parameters
    ----------
    root:
        Store directory (created on first write).
    keep_last:
        Retention: number of newest committed generations kept by
        :meth:`prune` (0 disables pruning entirely).
    keep_every:
        Additionally keep every generation whose step is a multiple of
        this (0 disables) — cheap long-horizon history on top of the
        rolling window.
    observer:
        Observability handle (or the shared ``NULL_OBSERVER``).
    faults:
        Optional :class:`repro.ckpt.faults.FaultPlan` consulted at the
        write-path fault sites (tests only).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        keep_last: int = 3,
        keep_every: int = 0,
        observer: ObserverLike = NULL_OBSERVER,
        faults: "FaultPlan | None" = None,
    ):
        if keep_last < 0 or keep_every < 0:
            raise ValueError("keep_last and keep_every must be >= 0")
        self.root = Path(root)
        self.keep_last = keep_last
        self.keep_every = keep_every
        self.observer = resolve_observer(observer)
        self.faults = faults

    # ------------------------------------------------------------- layout
    def generation_dir(self, step: int) -> Path:
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        return self.root / f"{GEN_PREFIX}{step:08d}"

    def manifest_path(self, step: int) -> Path:
        return self.generation_dir(step) / MANIFEST_NAME

    def shard_filename(self, rank: int) -> str:
        return f"shard-r{rank:04d}.npz"

    # ------------------------------------------------------------ reading
    def generations(self) -> list[GenerationInfo]:
        """Every generation directory under the root, oldest first,
        committed or not (aborted writes show ``committed=False``)."""
        if not self.root.is_dir():
            return []
        infos: list[GenerationInfo] = []
        for child in sorted(self.root.iterdir()):
            match = _GEN_RE.match(child.name)
            if match is None or not child.is_dir():
                continue
            step = int(match.group(1))
            manifest: Manifest | None = None
            problem: str | None = None
            try:
                manifest = self.read_manifest(step)
            except FileNotFoundError:
                problem = "no manifest (write never committed)"
            except CorruptCheckpointError as exc:
                problem = str(exc)
            infos.append(
                GenerationInfo(
                    step=step,
                    path=child,
                    committed=manifest is not None,
                    manifest=manifest,
                    problem=problem,
                )
            )
        return infos

    def read_manifest(self, step: int) -> Manifest:
        """Parse one generation's manifest (no shard verification)."""
        path = self.manifest_path(step)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise
        except (OSError, ValueError) as exc:
            raise CorruptCheckpointError(
                f"{path}: manifest unreadable: {exc}"
            ) from exc
        manifest = Manifest.from_json(doc)
        if manifest.step != step:
            raise CorruptCheckpointError(
                f"{path}: manifest claims step {manifest.step}, "
                f"directory says {step}"
            )
        return manifest

    def verify_generation(self, step: int) -> list[str]:
        """Full integrity check of one generation; returns the list of
        problems (empty = good).  Re-hashes every shard."""
        try:
            manifest = self.read_manifest(step)
        except FileNotFoundError:
            return [f"step {step}: no manifest (write never committed)"]
        except CorruptCheckpointError as exc:
            return [str(exc)]
        problems: list[str] = []
        try:
            manifest.validate_coverage()
        except CorruptCheckpointError as exc:
            problems.append(str(exc))
        gen = self.generation_dir(step)
        for shard in manifest.shards:
            path = gen / shard.filename
            if not path.is_file():
                problems.append(f"{path.name}: missing")
                continue
            size = path.stat().st_size
            if size != shard.nbytes:
                problems.append(
                    f"{path.name}: {size} bytes on disk, manifest says "
                    f"{shard.nbytes} (truncated?)"
                )
                continue
            digest = sha256_file(path)
            if digest != shard.sha256:
                problems.append(
                    f"{path.name}: checksum mismatch "
                    f"(disk {digest[:12]}…, manifest {shard.sha256[:12]}…)"
                )
        return problems

    def latest_good(self, *, verify: bool = True) -> Manifest | None:
        """Newest generation that passes verification, or ``None``.

        Bad generations encountered on the way are skipped, counted
        under ``ckpt.corrupt_discarded`` and reported as ``ckpt_discard``
        events — this is the recovery path after a crash mid-write or a
        corrupted shard.
        """
        for info in reversed(self.generations()):
            problems = (
                self.verify_generation(info.step)
                if verify
                else ([] if info.committed else [info.problem or "uncommitted"])
            )
            if not problems:
                return info.manifest or self.read_manifest(info.step)
            if self.observer.enabled:
                self.observer.counter("ckpt.corrupt_discarded").add(1)
                self.observer.emit(
                    "ckpt_discard", step=info.step, problems=problems
                )
        return None

    def load_shard_arrays(
        self, manifest: Manifest, shard: ShardInfo, *, verify: bool = True
    ) -> dict[str, np.ndarray]:
        """Load one shard's arrays, checksum-verified by default."""
        path = self.generation_dir(manifest.step) / shard.filename
        if verify:
            if not path.is_file():
                raise CorruptCheckpointError(f"{path}: missing shard")
            if path.stat().st_size != shard.nbytes or (
                sha256_file(path) != shard.sha256
            ):
                raise CorruptCheckpointError(
                    f"{path}: shard failed verification"
                )
        with np.load(path) as data:
            return {key: np.asarray(data[key]) for key in data.files}

    def load_global_f(
        self, manifest: Manifest, *, verify: bool = True
    ) -> np.ndarray:
        """Reassemble the global population array ``(C, Q, nx, *cross)``
        from the manifest's shards — works for any shard count and for
        both shard layouts (1-D x bands and 2-D ownership rectangles),
        so a 4-rank or 2×2 checkpoint restores into a sequential solver
        or a 2-rank run just as well."""
        manifest.validate_coverage()
        if not manifest.is_two_dimensional():
            pieces = [
                self.load_shard_arrays(manifest, shard, verify=verify)["f"]
                for shard in manifest.shards_in_x_order()
            ]
            return np.concatenate(pieces, axis=2)
        out: np.ndarray | None = None
        spatial = tuple(int(s) for s in manifest.fingerprint["shape"])
        for shard in manifest.shards_in_x_order():
            piece = self.load_shard_arrays(manifest, shard, verify=verify)["f"]
            if out is None:
                out = np.zeros(piece.shape[:2] + spatial, dtype=piece.dtype)
            cols = (
                piece.shape[3] if shard.col_count is None else shard.col_count
            )
            out[
                :,
                :,
                shard.plane_start : shard.plane_start + shard.plane_count,
                shard.col_start : shard.col_start + cols,
            ] = piece
        assert out is not None  # validate_coverage guarantees >= 1 shard
        return out

    # ------------------------------------------------------------ writing
    def write_shard(
        self,
        step: int,
        rank: int,
        arrays: dict[str, np.ndarray],
        *,
        plane_start: int,
        plane_count: int,
        col_start: int = 0,
        col_count: int | None = None,
    ) -> ShardInfo:
        """Atomically write one shard ``.npz`` and return its manifest
        entry (checksummed).  ``col_start``/``col_count`` record a 2-D
        ownership rectangle; the defaults mean the full cross extent
        (the 1-D slab layout).  Safe to call concurrently from rank
        threads — filenames are rank-disjoint."""
        if "f" not in arrays:
            raise ValueError("a shard must carry the 'f' population array")
        gen = self.generation_dir(step)
        filename = self.shard_filename(rank)
        path = gen / filename
        nbytes = atomic_savez(path, **arrays)
        if self.faults is not None:
            self.faults.fire("shard_written", rank=rank, at=step)
        if self.observer.enabled:
            self.observer.counter("ckpt.bytes_written").add(nbytes)
        return ShardInfo(
            filename=filename,
            rank=rank,
            plane_start=plane_start,
            plane_count=plane_count,
            sha256=sha256_file(path),
            nbytes=nbytes,
            col_start=col_start,
            col_count=col_count,
        )

    def commit(
        self,
        step: int,
        fingerprint: dict[str, Any],
        shards: Iterable[ShardInfo],
        *,
        rng_state: dict[str, Any] | None = None,
    ) -> Manifest:
        """Write the manifest (atomically — the commit point), then apply
        the retention policy.  Returns the committed manifest."""
        manifest = Manifest(
            format=CKPT_FORMAT,
            step=step,
            fingerprint=fingerprint,
            shards=tuple(sorted(shards, key=lambda s: s.rank)),
            rng_state=rng_state,
        )
        manifest.validate_coverage()
        if self.faults is not None:
            self.faults.fire("pre_commit", rank=0, at=step)
        atomic_write_json(self.manifest_path(step), manifest.to_json())
        if self.observer.enabled:
            self.observer.counter("ckpt.saves").add(1)
            self.observer.emit(
                "ckpt_commit",
                step=step,
                shards=len(manifest.shards),
                bytes=manifest.total_bytes,
            )
        self.prune()
        return manifest

    # ---------------------------------------------------------- retention
    def prune(
        self, keep_last: int | None = None, keep_every: int | None = None
    ) -> list[int]:
        """Apply the retention policy; returns the steps removed.

        Keeps the newest *keep_last* committed generations plus any
        whose step is a multiple of *keep_every*; removes everything
        else, including aborted (uncommitted) generations older than the
        newest committed one.  ``keep_last=0`` disables pruning.
        """
        keep_last = self.keep_last if keep_last is None else keep_last
        keep_every = self.keep_every if keep_every is None else keep_every
        if keep_last == 0:
            return []
        infos = self.generations()
        committed = [i for i in infos if i.committed]
        if not committed:
            return []
        protected = {i.step for i in committed[-keep_last:]}
        if keep_every:
            protected |= {
                i.step for i in committed if i.step % keep_every == 0
            }
        newest_committed = committed[-1].step
        removed: list[int] = []
        for info in infos:
            if info.step in protected:
                continue
            if not info.committed and info.step >= newest_committed:
                continue  # possibly a write in progress
            shutil.rmtree(info.path, ignore_errors=True)
            removed.append(info.step)
        if removed and self.observer.enabled:
            self.observer.emit("ckpt_prune", removed=removed)
        return removed

    # ------------------------------------------- sequential-solver bridge
    def save_solver(
        self,
        solver: "MulticomponentLBM",
        *,
        rng: "np.random.Generator | None" = None,
    ) -> Manifest:
        """Checkpoint a sequential solver as a single full-domain shard.

        The state is health-checked first; corrupt physics raises
        :class:`CheckpointRejected` and nothing is written.
        """
        try:
            solver.check_health()
        except FloatingPointError as exc:
            raise CheckpointRejected(
                f"refusing to persist unhealthy state at step "
                f"{solver.step_count}: {exc}"
            ) from exc
        step = solver.step_count
        nx = solver.config.geometry.shape[0]
        rng_state = None
        if rng is not None:
            from repro.util.rng import generator_state

            rng_state = generator_state(rng)
        with self.observer.span("ckpt.save", step=step):
            shard = self.write_shard(
                step,
                0,
                {"f": solver.f, "step": np.int64(step)},
                plane_start=0,
                plane_count=nx,
            )
            return self.commit(
                step,
                config_fingerprint(solver.config),
                [shard],
                rng_state=rng_state,
            )

    def restore_solver(
        self,
        solver: "MulticomponentLBM",
        *,
        manifest: Manifest | None = None,
        verify: bool = True,
    ) -> Manifest | None:
        """Restore a sequential solver from *manifest* (default: the
        latest good generation).  Returns the manifest used, or ``None``
        when the store holds no restorable generation."""
        if manifest is None:
            manifest = self.latest_good(verify=verify)
            if manifest is None:
                return None
        check_fingerprint(manifest, solver.config)
        with self.observer.span("ckpt.restore", step=manifest.step):
            f_global = self.load_global_f(manifest, verify=verify)
            solver.restore_state(f_global, manifest.step)
        if self.observer.enabled:
            self.observer.counter("ckpt.restores").add(1)
        return manifest
