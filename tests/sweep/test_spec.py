"""SweepSpec contracts: seeded determinism, LHS stratification, integer
field coercion, compiled RunSpec lists, provenance docs, validation."""

import dataclasses
import json

import numpy as np
import pytest

from repro.lbm.components import ComponentSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9
from repro.lbm.solver import LBMConfig
from repro.scenarios import HomogeneousScenario, PatternedScenario
from repro.sweep import (
    Discrete,
    SweepParameter,
    SweepSpec,
    Uniform,
)


def base_config(scenario=None) -> LBMConfig:
    return LBMConfig(
        geometry=ChannelGeometry(shape=(10, 14)),
        components=(
            ComponentSpec("water", tau=1.0, rho_init=1.0),
            ComponentSpec("air", tau=1.0, rho_init=0.03),
        ),
        g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
        lattice=D2Q9,
        scenario=scenario
        or HomogeneousScenario(amplitude=0.06, decay_length=2.5),
        body_acceleration=(1e-6, 0.0),
    )


def sweep(**overrides) -> SweepSpec:
    defaults = dict(
        base_config=base_config(),
        phases=4,
        parameters=(
            SweepParameter("amplitude", Uniform(0.02, 0.1)),
            SweepParameter("decay_length", Uniform(1.5, 3.5)),
        ),
        n_samples=8,
        seed=7,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def test_samples_are_a_pure_function_of_the_spec():
    assert sweep().samples() == sweep().samples()
    assert sweep(seed=8).samples() != sweep(seed=7).samples()


def test_samples_respect_the_priors():
    for sample in sweep().samples():
        assert 0.02 <= sample["amplitude"] <= 0.1
        assert 1.5 <= sample["decay_length"] <= 3.5


def test_lhs_visits_every_stratum_once_per_dimension():
    spec = sweep(sampler="lhs", n_samples=8)
    u = spec._uniforms()
    for j in range(u.shape[1]):
        strata = np.sort(np.floor(u[:, j] * 8).astype(int))
        assert strata.tolist() == list(range(8))


def test_mc_and_lhs_share_the_prior_support():
    for sampler in ("mc", "lhs"):
        for sample in sweep(sampler=sampler).samples():
            assert 0.02 <= sample["amplitude"] <= 0.1


def test_integer_fields_are_coerced_to_int():
    spec = sweep(
        base_config=base_config(
            PatternedScenario(amplitude_hi=0.06, period=8, duty=0.5)
        ),
        parameters=(
            SweepParameter("period", Discrete((4.0, 8.0, 16.0))),
            SweepParameter("duty", Uniform(0.0, 1.0)),
        ),
    )
    for sample in spec.samples():
        assert isinstance(sample["period"], int)
        assert isinstance(sample["duty"], float)
    for config in spec.configs():
        assert config.scenario.period in (4, 8, 16)


def test_run_specs_expand_repeats_back_to_back():
    spec = sweep(n_samples=3, repeats=2)
    specs = spec.run_specs()
    assert len(specs) == 6
    assert specs[0].fingerprint() == specs[1].fingerprint()
    assert specs[0].fingerprint() != specs[2].fingerprint()
    assert all(s.phases == 4 for s in specs)


def test_configs_replace_only_the_swept_fields():
    spec = sweep()
    for config, sample in zip(spec.configs(), spec.samples()):
        assert config.scenario.amplitude == sample["amplitude"]
        assert config.scenario.component == "water"  # untouched
        assert config.geometry == spec.base_config.geometry


def test_doc_is_canonical_json_provenance():
    doc = sweep(sampler="lhs", repeats=3).doc()
    json.dumps(doc, sort_keys=True)
    assert doc["scenario"]["name"] == "homogeneous"
    assert doc["sampler"] == "lhs"
    assert doc["repeats"] == 3
    assert [p["name"] for p in doc["parameters"]] == [
        "amplitude",
        "decay_length",
    ]


def test_scenarioless_base_config_rejected():
    bare = dataclasses.replace(base_config(), scenario=None)
    with pytest.raises(ValueError, match="scenario"):
        sweep(base_config=bare)


@pytest.mark.parametrize(
    "overrides",
    [
        {"parameters": ()},
        {
            "parameters": (
                SweepParameter("amplitude", Uniform(0.0, 1.0)),
                SweepParameter("amplitude", Uniform(0.0, 1.0)),
            )
        },
        {"parameters": (SweepParameter("no_such_field", Uniform(0.0, 1.0)),)},
        {"n_samples": 0},
        {"phases": 0},
        {"repeats": 0},
        {"sampler": "sobol"},
    ],
)
def test_invalid_specs_rejected(overrides):
    with pytest.raises(ValueError):
        sweep(**overrides)
