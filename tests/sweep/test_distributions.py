"""Distribution contracts: vectorized deterministic ppf, bounds,
medians, canonical docs, and validation."""

import json

import numpy as np
import pytest

from repro.sweep.distributions import Discrete, LogUniform, Uniform

U = np.linspace(0.0, 0.999, 25)


def test_uniform_maps_the_unit_interval_onto_the_range():
    dist = Uniform(low=0.2, high=1.0)
    values = dist.ppf(U)
    assert values.shape == U.shape
    assert values.min() >= 0.2 and values.max() <= 1.0
    assert dist.ppf(np.asarray([0.0]))[0] == 0.2
    assert dist.median() == pytest.approx(0.6)


def test_log_uniform_is_uniform_in_log_space():
    dist = LogUniform(low=1e-3, high=1e-1)
    values = dist.ppf(np.asarray([0.0, 0.5, 1.0]))
    assert values[0] == pytest.approx(1e-3)
    assert values[1] == pytest.approx(1e-2)  # geometric midpoint
    assert values[2] == pytest.approx(1e-1)
    assert dist.median() == pytest.approx(1e-2)


def test_discrete_partitions_the_unit_interval_equiprobably():
    dist = Discrete(values=(3.0, 11.0, 19.0))
    values = dist.ppf(np.asarray([0.0, 0.32, 0.34, 0.66, 0.67, 0.999]))
    assert values.tolist() == [3.0, 3.0, 11.0, 11.0, 19.0, 19.0]
    assert set(dist.ppf(U)) <= {3.0, 11.0, 19.0}


def test_ppf_is_deterministic():
    for dist in (
        Uniform(0.0, 2.0),
        LogUniform(0.01, 1.0),
        Discrete((1.0, 2.0)),
    ):
        assert np.array_equal(dist.ppf(U), dist.ppf(U))


def test_docs_are_canonical_json():
    for dist in (
        Uniform(0.0, 2.0),
        LogUniform(0.01, 1.0),
        Discrete((1.0, 2.0)),
    ):
        doc = dist.doc()
        assert "kind" in doc
        json.dumps(doc, sort_keys=True)


@pytest.mark.parametrize(
    "build",
    [
        lambda: Uniform(1.0, 1.0),
        lambda: Uniform(2.0, 1.0),
        lambda: LogUniform(0.0, 1.0),
        lambda: LogUniform(-1.0, 1.0),
        lambda: LogUniform(1.0, 0.5),
        lambda: Discrete(()),
    ],
)
def test_invalid_parameters_rejected(build):
    with pytest.raises(ValueError):
        build()
