"""Sweep engine: both substrates, serve-side dedup accounting,
batch-vs-serve bitwise parity, and result bookkeeping."""

import numpy as np
import pytest

from repro.lbm.components import ComponentSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9
from repro.lbm.solver import LBMConfig
from repro.scenarios import HomogeneousScenario
from repro.sweep import SweepParameter, SweepSpec, Uniform, run_sweep


def small_sweep(*, repeats: int = 1, n_samples: int = 3) -> SweepSpec:
    config = LBMConfig(
        geometry=ChannelGeometry(shape=(10, 14)),
        components=(
            ComponentSpec("water", tau=1.0, rho_init=1.0),
            ComponentSpec("air", tau=1.0, rho_init=0.03),
        ),
        g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
        lattice=D2Q9,
        scenario=HomogeneousScenario(amplitude=0.06, decay_length=2.5),
        body_acceleration=(1e-6, 0.0),
    )
    return SweepSpec(
        base_config=config,
        phases=4,
        parameters=(SweepParameter("amplitude", Uniform(0.02, 0.1)),),
        n_samples=n_samples,
        seed=3,
        sampler="lhs",
        repeats=repeats,
    )


def test_batch_substrate_runs_every_submission():
    spec = small_sweep()
    result = run_sweep(spec, via="batch")
    assert result.via == "batch"
    assert len(result.samples) == 3
    assert result.submissions == result.executions == 3
    assert result.dedup_ratio == 0.0
    assert all(s.steps == 4 for s in result.samples)
    assert np.isfinite(result.slip_array()).all()
    assert result.param_array("amplitude").shape == (3,)


def test_serve_substrate_dedups_the_repeat_rounds():
    spec = small_sweep(repeats=2)
    result = run_sweep(spec, via="serve", workers=2)
    assert result.submissions == 6
    assert result.executions == 3  # the second round is pure cache
    assert result.dedup_ratio > 0.0
    assert result.cache_hit_rate > 0.0


def test_batch_and_serve_agree_bitwise():
    spec = small_sweep(repeats=2)
    batch = run_sweep(spec, via="batch", keep_results=True)
    serve = run_sweep(spec, via="serve", keep_results=True)
    assert len(batch.results) == len(serve.results) == 6
    for a, b in zip(batch.results, serve.results):
        assert np.array_equal(a.f, b.f)
    for sa, sb in zip(batch.samples, serve.samples):
        assert sa.slip == sb.slip
        assert sa.fingerprint == sb.fingerprint


def test_results_are_dropped_unless_requested():
    assert run_sweep(small_sweep(), via="batch").results is None
    kept = run_sweep(small_sweep(), via="batch", keep_results=True)
    assert kept.results is not None and len(kept.results) == 3


def test_throughput_accounting_is_positive():
    result = run_sweep(small_sweep(), via="batch")
    assert result.elapsed_s > 0.0
    assert result.samples_per_second > 0.0
    assert result.us_per_point > 0.0


def test_unknown_substrate_rejected():
    with pytest.raises(ValueError, match="serve"):
        run_sweep(small_sweep(), via="mpi")
