"""Sensitivity designs: one-at-a-time monotone response on the
homogeneous amplitude, and the variance (eta-squared) decomposition."""

import numpy as np
import pytest

from repro.lbm.components import ComponentSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9
from repro.lbm.solver import LBMConfig
from repro.scenarios import HomogeneousScenario
from repro.sweep import (
    SweepParameter,
    Uniform,
    one_at_a_time,
    variance_sensitivity,
)


def base_config() -> LBMConfig:
    return LBMConfig(
        geometry=ChannelGeometry(shape=(10, 14)),
        components=(
            ComponentSpec("water", tau=1.0, rho_init=1.0),
            ComponentSpec("air", tau=1.0, rho_init=0.03),
        ),
        g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
        lattice=D2Q9,
        scenario=HomogeneousScenario(amplitude=0.06, decay_length=2.5),
        body_acceleration=(1e-6, 0.0),
    )


def test_oat_amplitude_response_is_monotone():
    results = one_at_a_time(
        base_config(),
        40,
        [SweepParameter("amplitude", Uniform(0.02, 0.12))],
        levels=4,
    )
    (amplitude,) = results
    assert amplitude.parameter == "amplitude"
    assert amplitude.values.shape == amplitude.slips.shape == (4,)
    assert np.all(np.diff(amplitude.values) > 0)
    # a stronger hydrophobic repulsion means more slip, at every level
    assert np.all(np.diff(amplitude.slips) > 0)
    assert amplitude.span > 0.0


def test_oat_holds_other_parameters_at_their_medians():
    results = one_at_a_time(
        base_config(),
        4,
        [
            SweepParameter("amplitude", Uniform(0.02, 0.12)),
            SweepParameter("decay_length", Uniform(1.5, 3.5)),
        ],
        levels=2,
    )
    assert [r.parameter for r in results] == ["amplitude", "decay_length"]
    for r in results:
        assert r.values.shape == (2,)


def test_oat_requires_a_scenario():
    import dataclasses

    bare = dataclasses.replace(base_config(), scenario=None)
    with pytest.raises(ValueError, match="scenario"):
        one_at_a_time(
            bare, 4, [SweepParameter("amplitude", Uniform(0.0, 1.0))]
        )


def test_variance_sensitivity_finds_the_dominant_parameter():
    rng = np.random.default_rng(5)
    x = rng.random(64)
    noise = rng.random(64)
    samples = [
        {"driver": float(a), "bystander": float(b)}
        for a, b in zip(x, noise)
    ]
    values = 3.0 * x + 0.05 * noise
    eta2 = variance_sensitivity(samples, values)
    assert eta2["driver"] > 0.8
    assert eta2["bystander"] < 0.3
    assert all(0.0 <= v <= 1.0 for v in eta2.values())


def test_variance_sensitivity_flat_response_is_zero():
    samples = [{"p": float(i)} for i in range(10)]
    eta2 = variance_sensitivity(samples, [1.0] * 10)
    assert eta2["p"] == 0.0


def test_variance_sensitivity_validates_shapes():
    with pytest.raises(ValueError):
        variance_sensitivity([], [])
    with pytest.raises(ValueError):
        variance_sensitivity([{"p": 1.0}], [1.0, 2.0])
