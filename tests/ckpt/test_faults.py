"""Fault-injection primitives: specs, plans, byte-level corruptors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_file,
    truncate_file,
)


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="after_lunch", at=3)

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="kill"):
            FaultSpec(site="phase_start", at=3, action="explode")

    def test_stall_needs_positive_duration(self):
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultSpec(site="phase_start", at=3, action="stall")

    def test_rank_none_matches_every_rank(self):
        spec = FaultSpec(site="mid_phase", at=5)
        assert spec.matches("mid_phase", rank=0, at=5)
        assert spec.matches("mid_phase", rank=7, at=5)
        assert not spec.matches("mid_phase", rank=0, at=6)
        assert not spec.matches("phase_start", rank=0, at=5)

    def test_specific_rank_matches_only_that_rank(self):
        spec = FaultSpec(site="shard_written", at=4, rank=2)
        assert spec.matches("shard_written", rank=2, at=4)
        assert not spec.matches("shard_written", rank=1, at=4)

    def test_all_sites_are_constructible(self):
        for site in FAULT_SITES:
            FaultSpec(site=site, at=0)


class TestFaultPlan:
    def test_kill_job_fires_for_every_rank(self):
        plan = FaultPlan.kill_job(13)
        for rank in range(3):
            with pytest.raises(InjectedFault) as err:
                plan.fire("phase_start", rank=rank, at=13)
            assert err.value.site == "phase_start"
            assert err.value.rank == rank
            assert err.value.at == 13
        assert plan.fired == [
            ("phase_start", 0, 13),
            ("phase_start", 1, 13),
            ("phase_start", 2, 13),
        ]

    def test_kill_rank_spares_other_ranks(self):
        plan = FaultPlan.kill_rank(1, 6, site="mid_phase")
        plan.fire("mid_phase", rank=0, at=6)  # survives
        with pytest.raises(InjectedFault):
            plan.fire("mid_phase", rank=1, at=6)

    def test_non_matching_phase_passes_through(self):
        plan = FaultPlan.kill_job(13)
        for at in (12, 14):
            plan.fire("phase_start", rank=0, at=at)
        assert plan.fired == []

    def test_stall_sleeps_instead_of_raising(self):
        plan = FaultPlan.stall_writer(0, 4, 0.001)
        plan.fire("shard_written", rank=0, at=4)  # no raise
        assert plan.fired == [("shard_written", 0, 4)]

    def test_also_chains_additional_specs(self):
        plan = FaultPlan.kill_job(10).also(
            FaultSpec(site="pre_commit", at=4)
        )
        with pytest.raises(InjectedFault):
            plan.fire("pre_commit", rank=0, at=4)
        with pytest.raises(InjectedFault):
            plan.fire("phase_start", rank=2, at=10)


class TestByteCorruptors:
    def test_corrupt_file_flips_exactly_one_byte(self, tmp_path):
        path = tmp_path / "blob"
        original = bytes(range(256))
        path.write_bytes(original)
        offset = corrupt_file(path)
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        diffs = [i for i in range(256) if damaged[i] != original[i]]
        assert diffs == [offset] == [128]

    def test_corrupt_file_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        payload = b"determinism" * 10
        a.write_bytes(payload)
        b.write_bytes(payload)
        corrupt_file(a)
        corrupt_file(b)
        assert a.read_bytes() == b.read_bytes() != payload

    def test_corrupt_file_never_writes_the_same_byte(self, tmp_path):
        # xor that would be a no-op must still damage the file.
        path = tmp_path / "blob"
        path.write_bytes(b"\x00\x00\x00")
        corrupt_file(path, offset=1, xor=0)
        assert path.read_bytes() != b"\x00\x00\x00"

    def test_corrupt_file_validates_inputs(self, tmp_path):
        empty = tmp_path / "empty"
        empty.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            corrupt_file(empty)
        short = tmp_path / "short"
        short.write_bytes(b"abc")
        with pytest.raises(ValueError, match="outside"):
            corrupt_file(short, offset=3)

    def test_truncate_file_cuts_to_size(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x" * 100)
        removed = truncate_file(path, 37)
        assert removed == 63
        assert path.stat().st_size == 37

    def test_truncate_file_validates_keep_bytes(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x" * 10)
        with pytest.raises(ValueError, match="keep_bytes"):
            truncate_file(path, 10)
        with pytest.raises(ValueError, match="keep_bytes"):
            truncate_file(path, -1)

    def test_corruption_defeats_npz_or_checksum(self, tmp_path):
        """The point of the corruptors: damage that verification (or the
        reader) must catch."""
        from repro.ckpt.io import atomic_savez, sha256_file

        path = tmp_path / "arrays.npz"
        atomic_savez(path, a=np.arange(5, dtype=np.float64))
        before = sha256_file(path)
        corrupt_file(path)
        assert sha256_file(path) != before
