"""``python -m repro.ckpt`` CLI: inspect, verify, prune."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.ckpt import CheckpointStore, corrupt_file
from repro.ckpt.cli import main
from repro.lbm.solver import MulticomponentLBM


@pytest.fixture
def populated_store(two_component_config, tmp_path):
    """A store with committed generations at steps 2, 4 and 6."""
    root = tmp_path / "ckpt"
    store = CheckpointStore(root, keep_last=0)
    solver = MulticomponentLBM(two_component_config)
    for target in (2, 4, 6):
        solver.run(target - solver.step_count)
        store.save_solver(solver)
    return store


class TestInspect:
    def test_lists_generations_as_table(self, populated_store, capsys):
        assert main(["inspect", str(populated_store.root)]) == 0
        out = capsys.readouterr().out
        for token in ("step", "committed", "shards", "planes", "bytes"):
            assert token in out
        assert " 2 " in out and " 4 " in out and " 6 " in out

    def test_json_output_is_machine_readable(
        self, populated_store, capsys
    ):
        assert main(["inspect", str(populated_store.root), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [g["step"] for g in doc] == [2, 4, 6]
        assert all(g["committed"] for g in doc)
        assert all(g["shards"] == 1 for g in doc)
        assert all(g["planes"] == 12 for g in doc)

    def test_empty_store_reports_no_generations(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nowhere")]) == 0
        assert "no generations" in capsys.readouterr().out

    def test_uncommitted_generation_is_visible(
        self, populated_store, capsys
    ):
        (populated_store.manifest_path(6)).unlink()
        main(["inspect", str(populated_store.root), "--json"])
        doc = json.loads(capsys.readouterr().out)
        by_step = {g["step"]: g for g in doc}
        assert not by_step[6]["committed"]
        assert "never committed" in by_step[6]["problem"]


class TestVerify:
    def test_default_verifies_latest_committed(
        self, populated_store, capsys
    ):
        assert main(["verify", str(populated_store.root)]) == 0
        assert "step 6: ok" in capsys.readouterr().out

    def test_corrupted_shard_fails_with_nonzero_exit(
        self, populated_store, capsys
    ):
        shard = populated_store.generation_dir(
            6
        ) / populated_store.shard_filename(0)
        corrupt_file(shard)
        assert main(["verify", str(populated_store.root)]) == 1
        out = capsys.readouterr().out
        assert "step 6: FAIL" in out
        assert "checksum mismatch" in out

    def test_all_flag_verifies_every_generation(
        self, populated_store, capsys
    ):
        corrupt_file(
            populated_store.generation_dir(4)
            / populated_store.shard_filename(0)
        )
        assert main(["verify", str(populated_store.root), "--all"]) == 1
        out = capsys.readouterr().out
        assert "step 2: ok" in out
        assert "step 4: FAIL" in out
        assert "step 6: ok" in out

    def test_step_flag_targets_one_generation(
        self, populated_store, capsys
    ):
        assert (
            main(["verify", str(populated_store.root), "--step", "4"]) == 0
        )
        assert "step 4: ok" in capsys.readouterr().out

    def test_empty_store_exits_nonzero(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "nowhere")]) == 1
        assert "no committed generation" in capsys.readouterr().out


class TestPrune:
    def test_prune_applies_retention(self, populated_store, capsys):
        assert (
            main(
                [
                    "prune",
                    str(populated_store.root),
                    "--keep-last",
                    "1",
                ]
            )
            == 0
        )
        assert "removed 2 generation(s): [2, 4]" in capsys.readouterr().out
        assert [i.step for i in populated_store.generations()] == [6]

    def test_keep_every_spares_multiples(self, populated_store, capsys):
        main(
            [
                "prune",
                str(populated_store.root),
                "--keep-last",
                "1",
                "--keep-every",
                "4",
            ]
        )
        assert [i.step for i in populated_store.generations()] == [4, 6]

    def test_nothing_to_remove(self, populated_store, capsys):
        main(["prune", str(populated_store.root), "--keep-last", "5"])
        assert "nothing to remove" in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m_verify_detects_corruption(
        self, populated_store
    ):
        """Acceptance criterion: ``python -m repro.ckpt verify`` exits
        non-zero when a shard is corrupted."""
        argv = [sys.executable, "-m", "repro.ckpt", "verify"]
        ok = subprocess.run(
            argv + [str(populated_store.root)],
            capture_output=True,
            text=True,
        )
        assert ok.returncode == 0, ok.stderr
        assert "ok" in ok.stdout

        corrupt_file(
            populated_store.generation_dir(6)
            / populated_store.shard_filename(0)
        )
        bad = subprocess.run(
            argv + [str(populated_store.root)],
            capture_output=True,
            text=True,
        )
        assert bad.returncode == 1
        assert "FAIL" in bad.stdout
