"""Atomic-write primitives: crash safety, all-or-nothing semantics."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ckpt.io import (
    atomic_open,
    atomic_savez,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    sha256_bytes,
    sha256_file,
)


class TestAtomicOpen:
    def test_writes_land(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_open(path) as fh:
            fh.write("hello")
        assert path.read_text() == "hello"

    def test_no_temp_residue_on_success(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_open(path) as fh:
            fh.write("x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_exception_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_open(path) as fh:
                fh.write("half of the new conte")
                raise RuntimeError("boom")
        assert path.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_exception_with_no_preexisting_target(self, tmp_path):
        path = tmp_path / "fresh.txt"
        with pytest.raises(RuntimeError):
            with atomic_open(path) as fh:
                fh.write("partial")
                raise RuntimeError("boom")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_rejects_read_and_append_modes(self, tmp_path):
        for mode in ("r", "rb", "a", "r+b"):
            with pytest.raises(ValueError, match="write mode"):
                with atomic_open(tmp_path / "x", mode):
                    pass

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        with atomic_open(path) as fh:
            fh.write("deep")
        assert path.read_text() == "deep"


class TestOneShotHelpers:
    def test_write_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob"
        n = atomic_write_bytes(path, b"\x00\x01\x02")
        assert n == 3
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_write_text_replaces_previous_content(self, tmp_path):
        path = tmp_path / "t.txt"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"

    def test_write_json_is_sorted_and_stable(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"b": 1, "a": [2, 3]})
        text = path.read_text()
        assert json.loads(text) == {"a": [2, 3], "b": 1}
        assert text.index('"a"') < text.index('"b"')
        assert text.endswith("\n")

    def test_savez_roundtrip(self, tmp_path):
        path = tmp_path / "arrays.npz"
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        size = atomic_savez(path, a=a, step=np.int64(7))
        assert size == path.stat().st_size > 0
        with np.load(path) as data:
            assert np.array_equal(data["a"], a)
            assert int(data["step"]) == 7


class TestChecksums:
    def test_file_and_bytes_digests_agree(self, tmp_path):
        payload = b"some bytes" * 1000
        path = tmp_path / "payload"
        path.write_bytes(payload)
        assert sha256_file(path) == sha256_bytes(payload)

    def test_digest_changes_with_content(self, tmp_path):
        path = tmp_path / "payload"
        path.write_bytes(b"aaa")
        before = sha256_file(path)
        path.write_bytes(b"aab")
        assert sha256_file(path) != before
