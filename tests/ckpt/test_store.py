"""CheckpointStore: roundtrips, corruption recovery, retention, faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt import (
    CheckpointRejected,
    CheckpointStore,
    FaultPlan,
    FaultSpec,
    IncompatibleCheckpointError,
    InjectedFault,
    config_fingerprint,
    corrupt_file,
    truncate_file,
)
from repro.lbm.components import ComponentSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9
from repro.lbm.solver import LBMConfig, MulticomponentLBM
from repro.obs.observer import MemorySink, MetricsRegistry, Observer
from repro.util.rng import make_rng, restore_generator


@pytest.fixture
def store(tmp_path) -> CheckpointStore:
    return CheckpointStore(tmp_path / "ckpt")


def _checkpoint_at(solver, store, steps):
    """Run to each step in *steps*, checkpointing at each."""
    for target in steps:
        solver.run(target - solver.step_count)
        store.save_solver(solver)


class TestRoundtrip:
    def test_save_restore_is_bit_exact(self, two_component_config, store):
        solver = MulticomponentLBM(two_component_config)
        solver.run(8)
        store.save_solver(solver)
        solver.run(12)
        final = solver.f.copy()

        resumed = MulticomponentLBM(two_component_config)
        manifest = store.restore_solver(resumed)
        assert manifest is not None and manifest.step == 8
        assert resumed.step_count == 8
        resumed.run(12)
        assert resumed.step_count == 20
        assert np.array_equal(resumed.f, final), "resume must be bit-exact"

    def test_restore_from_empty_store_returns_none(
        self, small_solver, store
    ):
        assert store.restore_solver(small_solver) is None

    def test_rng_state_travels_with_the_manifest(
        self, small_solver, store
    ):
        rng = make_rng(123)
        rng.standard_normal(5)
        expected = rng.standard_normal(3)

        rng2 = make_rng(123)
        rng2.standard_normal(5)
        manifest = store.save_solver(small_solver, rng=rng2)
        assert manifest.rng_state is not None
        reloaded = store.latest_good()
        restored = restore_generator(reloaded.rng_state)
        assert np.array_equal(restored.standard_normal(3), expected)

    def test_fingerprint_mismatch_rejected(
        self, two_component_config, store
    ):
        solver = MulticomponentLBM(two_component_config)
        solver.run(2)
        store.save_solver(solver)

        other_config = LBMConfig(
            geometry=ChannelGeometry(shape=(12, 18), wall_axes=(1,)),
            components=(
                ComponentSpec("water", tau=0.8, rho_init=1.0),
                ComponentSpec("air", tau=1.0, rho_init=0.03),
            ),
            g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
            lattice=D2Q9,
        )
        other = MulticomponentLBM(other_config)
        with pytest.raises(IncompatibleCheckpointError, match="components"):
            store.restore_solver(other)

    def test_unhealthy_state_is_rejected_before_any_write(
        self, small_solver, store
    ):
        small_solver.f[0, 0, 3, 3] = np.nan
        with pytest.raises(CheckpointRejected, match="unhealthy"):
            store.save_solver(small_solver)
        assert store.generations() == []


class TestVerificationAndRecovery:
    def test_latest_good_skips_corrupted_shard(self, small_solver, store):
        _checkpoint_at(small_solver, store, [3, 6])
        shard = store.generation_dir(6) / store.shard_filename(0)
        corrupt_file(shard)
        assert store.verify_generation(6) != []
        good = store.latest_good()
        assert good is not None and good.step == 3

    def test_latest_good_skips_truncated_shard(self, small_solver, store):
        _checkpoint_at(small_solver, store, [3, 6])
        shard = store.generation_dir(6) / store.shard_filename(0)
        truncate_file(shard, shard.stat().st_size // 2)
        problems = store.verify_generation(6)
        assert any("truncated" in p for p in problems)
        assert store.latest_good().step == 3

    def test_uncommitted_generation_is_ignored(self, small_solver, store):
        _checkpoint_at(small_solver, store, [3])
        # A shard without a manifest: an aborted write.
        store.write_shard(
            7,
            0,
            {"f": small_solver.f},
            plane_start=0,
            plane_count=small_solver.config.geometry.shape[0],
        )
        infos = {i.step: i for i in store.generations()}
        assert not infos[7].committed
        assert "never committed" in infos[7].problem
        assert store.latest_good().step == 3

    def test_manifest_step_directory_mismatch_detected(
        self, small_solver, store
    ):
        _checkpoint_at(small_solver, store, [3])
        gen = store.generation_dir(3)
        gen.rename(store.generation_dir(5))
        problems = store.verify_generation(5)
        assert any("claims step 3" in p for p in problems)

    def test_discard_is_counted_and_traced(self, small_solver, tmp_path):
        sink = MemorySink()
        observer = Observer(sink=sink, registry=MetricsRegistry())
        store = CheckpointStore(tmp_path / "ckpt", observer=observer)
        solver = MulticomponentLBM(
            small_solver.config, observer=observer
        )
        _checkpoint_at(solver, store, [2, 4])
        corrupt_file(store.generation_dir(4) / store.shard_filename(0))
        assert store.latest_good().step == 2

        snap = observer.registry.snapshot()
        assert snap["ckpt.saves"]["value"] == 2.0
        assert snap["ckpt.corrupt_discarded"]["value"] == 1.0
        assert snap["ckpt.bytes_written"]["value"] > 0
        kinds = [e["type"] for e in sink.events]
        assert kinds.count("ckpt_commit") == 2
        assert kinds.count("ckpt_discard") == 1


class TestRetention:
    def test_keep_last_window(self, small_solver, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", keep_last=2)
        _checkpoint_at(small_solver, store, [2, 4, 6, 8])
        assert [i.step for i in store.generations()] == [6, 8]

    def test_keep_every_protects_multiples(self, small_solver, tmp_path):
        store = CheckpointStore(
            tmp_path / "ckpt", keep_last=1, keep_every=4
        )
        _checkpoint_at(small_solver, store, [2, 4, 6, 8])
        assert [i.step for i in store.generations()] == [4, 8]

    def test_keep_last_zero_disables_pruning(self, small_solver, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", keep_last=0)
        _checkpoint_at(small_solver, store, [2, 4, 6, 8])
        assert [i.step for i in store.generations()] == [2, 4, 6, 8]

    def test_prune_removes_stale_aborted_writes(
        self, small_solver, tmp_path
    ):
        store = CheckpointStore(tmp_path / "ckpt", keep_last=3)
        _checkpoint_at(small_solver, store, [2])
        nx = small_solver.config.geometry.shape[0]
        # Aborted write older than the newest commit: junk, removed.
        store.write_shard(
            1, 0, {"f": small_solver.f}, plane_start=0, plane_count=nx
        )
        # Aborted write newer than the newest commit: possibly still in
        # progress, left alone.
        store.write_shard(
            9, 0, {"f": small_solver.f}, plane_start=0, plane_count=nx
        )
        removed = store.prune()
        assert removed == [1]
        assert [i.step for i in store.generations()] == [2, 9]

    def test_rejects_negative_retention(self, tmp_path):
        with pytest.raises(ValueError, match=">= 0"):
            CheckpointStore(tmp_path, keep_last=-1)


class TestCrashMidWrite:
    def test_kill_after_shard_leaves_previous_generation_good(
        self, small_solver, tmp_path
    ):
        """A crash between shard write and manifest commit must leave the
        store exactly as restorable as before the attempt."""
        store = CheckpointStore(tmp_path / "ckpt")
        _checkpoint_at(small_solver, store, [4])
        good = store.latest_good()

        small_solver.run(4)
        store.faults = FaultPlan([FaultSpec(site="shard_written", at=8)])
        with pytest.raises(InjectedFault):
            store.save_solver(small_solver)
        store.faults = None
        assert store.latest_good() == good
        infos = {i.step: i for i in store.generations()}
        assert not infos[8].committed

    def test_kill_before_commit_leaves_previous_generation_good(
        self, small_solver, tmp_path
    ):
        store = CheckpointStore(tmp_path / "ckpt")
        _checkpoint_at(small_solver, store, [4])
        small_solver.run(4)
        store.faults = FaultPlan([FaultSpec(site="pre_commit", at=8)])
        with pytest.raises(InjectedFault):
            store.save_solver(small_solver)
        store.faults = None
        assert store.latest_good().step == 4
        # ... and a later successful save commits on top, pruning the
        # aborted generation along the way.
        small_solver.run(4)
        manifest = store.save_solver(small_solver)
        assert manifest.step == 12
        assert store.latest_good().step == 12

    def test_stalled_writer_still_commits(self, small_solver, tmp_path):
        store = CheckpointStore(
            tmp_path / "ckpt",
            faults=FaultPlan.stall_writer(0, 4, 0.01),
        )
        _checkpoint_at(small_solver, store, [4])
        assert store.latest_good().step == 4
        assert store.faults.fired == [("shard_written", 0, 4)]


class TestGlobalAssembly:
    def test_load_global_f_reorders_shards_by_plane(
        self, small_solver, store
    ):
        """Shards written in rank order restore in x order even when rank
        ownership is scrambled (post-remapping checkpoints)."""
        small_solver.run(3)
        f = small_solver.f
        nx = f.shape[2]
        split = nx // 2
        # Rank 0 owns the RIGHT half, rank 1 the left — reversed.
        s0 = store.write_shard(
            3,
            0,
            {"f": np.ascontiguousarray(f[:, :, split:])},
            plane_start=split,
            plane_count=nx - split,
        )
        s1 = store.write_shard(
            3,
            1,
            {"f": np.ascontiguousarray(f[:, :, :split])},
            plane_start=0,
            plane_count=split,
        )
        manifest = store.commit(
            3, config_fingerprint(small_solver.config), [s0, s1]
        )
        assert np.array_equal(store.load_global_f(manifest), f)
