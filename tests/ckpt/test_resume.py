"""Deterministic resume: the checkpoint/restart contract.

The property at the heart of :mod:`repro.ckpt`: for any split point k,
``run(k); save; restore; run(n-k)`` is bit-identical to an uninterrupted
``run(n)`` — on every kernel backend.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt import CheckpointRejected, CheckpointStore
from repro.ckpt.policy import (
    ENV_DIR,
    ENV_EVERY,
    ENV_KEEP,
    ENV_RESUME,
    fingerprint_key,
)
from repro.lbm.components import ComponentSpec
from repro.lbm.forces import WallForceSpec
from repro.lbm.geometry import ChannelGeometry
from repro.lbm.lattice import D2Q9
from repro.lbm.solver import LBMConfig, MulticomponentLBM


def _config(backend=None) -> LBMConfig:
    return LBMConfig(
        geometry=ChannelGeometry(shape=(10, 12), wall_axes=(1,)),
        components=(
            ComponentSpec("water", tau=1.0, rho_init=1.0),
            ComponentSpec("air", tau=1.0, rho_init=0.03),
        ),
        g_matrix=np.array([[0.0, 0.9], [0.9, 0.0]]),
        lattice=D2Q9,
        wall_force=WallForceSpec(amplitude=0.05, decay_length=2.0),
        body_acceleration=(1e-6, 0.0),
        backend=backend,
    )


@st.composite
def _splits(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    k = draw(st.integers(min_value=1, max_value=n - 1))
    return n, k


class TestResumeProperty:
    @pytest.mark.parametrize("backend", ["reference", "fused"])
    @settings(max_examples=10, deadline=None)
    @given(split=_splits())
    def test_split_save_restore_equals_uninterrupted(
        self, backend, split, tmp_path_factory
    ):
        n, k = split
        cfg = _config(backend)

        uninterrupted = MulticomponentLBM(cfg)
        uninterrupted.run(n)

        first = MulticomponentLBM(cfg)
        first.run(k)
        store = CheckpointStore(
            tmp_path_factory.mktemp("store"), keep_last=0
        )
        store.save_solver(first)

        second = MulticomponentLBM(cfg)
        manifest = store.restore_solver(second)
        assert manifest.step == k
        second.run(n - k)

        assert second.step_count == n
        assert np.array_equal(second.f, uninterrupted.f), (
            f"backend={backend}: resume at k={k} of n={n} diverged"
        )

    def test_cross_backend_restore_is_accepted(self, tmp_path):
        """The fingerprint deliberately excludes the kernel backend —
        a reference-written checkpoint restores into a fused solver."""
        ref = MulticomponentLBM(_config("reference"))
        ref.run(5)
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_solver(ref)

        fused = MulticomponentLBM(_config("fused"))
        manifest = store.restore_solver(fused)
        assert manifest.step == 5
        assert np.array_equal(fused.f, ref.f)


class TestRunLoopCheckpointing:
    def test_periodic_checkpoints_and_bit_exact_final_state(
        self, tmp_path
    ):
        cfg = _config()
        store = CheckpointStore(tmp_path / "ckpt", keep_last=0)
        solver = MulticomponentLBM(cfg)
        solver.run(20, checkpoint_every=5, checkpoint_store=store)
        assert [i.step for i in store.generations()] == [5, 10, 15, 20]

        plain = MulticomponentLBM(cfg)
        plain.run(20)
        assert np.array_equal(solver.f, plain.f)

    def test_interval_without_store_is_rejected(self):
        solver = MulticomponentLBM(_config())
        with pytest.raises(ValueError, match="checkpoint_store"):
            solver.run(4, checkpoint_every=2)

    def test_unhealthy_state_aborts_run_keeping_last_good(
        self, tmp_path
    ):
        cfg = _config()
        store = CheckpointStore(tmp_path / "ckpt", keep_last=0)
        solver = MulticomponentLBM(cfg)

        def poison(s):
            if s.step_count == 9:
                s.f[0, 0, 2, 2] = np.nan

        with pytest.raises(CheckpointRejected):
            solver.run(
                20,
                checkpoint_every=5,
                checkpoint_store=store,
                callback=poison,
            )
        assert store.latest_good().step == 5


class TestEnvPolicyResume:
    def _env(self, monkeypatch, root, *, every, resume):
        monkeypatch.setenv(ENV_DIR, str(root))
        monkeypatch.setenv(ENV_EVERY, str(every))
        monkeypatch.setenv(ENV_RESUME, "1" if resume else "0")
        monkeypatch.setenv(ENV_KEEP, "0")

    def test_env_driven_checkpoint_then_resume(
        self, tmp_path, monkeypatch
    ):
        cfg = _config()
        root = tmp_path / "ckpt"

        self._env(monkeypatch, root, every=3, resume=False)
        first = MulticomponentLBM(cfg)
        first.run(6)
        # Per-config store subdirectory, keyed by fingerprint hash.
        store_dir = root / fingerprint_key(cfg)
        store = CheckpointStore(store_dir, keep_last=0)
        assert [i.step for i in store.generations()] == [3, 6]

        # A fresh process resumes from step 6 and runs only the
        # remaining 4 steps toward the 10-step TOTAL target.
        self._env(monkeypatch, root, every=3, resume=True)
        resumed = MulticomponentLBM(cfg)
        resumed.run(10)
        assert resumed.step_count == 10

        monkeypatch.delenv(ENV_DIR)
        plain = MulticomponentLBM(cfg)
        plain.run(10)
        assert np.array_equal(resumed.f, plain.f)

    def test_resume_past_target_runs_nothing(self, tmp_path, monkeypatch):
        cfg = _config()
        root = tmp_path / "ckpt"
        self._env(monkeypatch, root, every=0, resume=False)
        first = MulticomponentLBM(cfg)
        first.run(8)
        CheckpointStore(
            root / fingerprint_key(cfg), keep_last=0
        ).save_solver(first)

        self._env(monkeypatch, root, every=0, resume=True)
        resumed = MulticomponentLBM(cfg)
        resumed.run(5)  # total target already surpassed at step 8
        assert resumed.step_count == 8
        assert np.array_equal(resumed.f, first.f)

    def test_different_config_does_not_cross_resume(
        self, tmp_path, monkeypatch
    ):
        """Two configurations sharing one REPRO_CKPT_DIR stay isolated."""
        cfg_a = _config()
        cfg_b = dataclasses.replace(
            cfg_a, body_acceleration=(2e-6, 0.0)
        )
        assert fingerprint_key(cfg_a) != fingerprint_key(cfg_b)

        root = tmp_path / "ckpt"
        self._env(monkeypatch, root, every=0, resume=False)
        solver_a = MulticomponentLBM(cfg_a)
        solver_a.run(6)
        CheckpointStore(
            root / fingerprint_key(cfg_a), keep_last=0
        ).save_solver(solver_a)

        # cfg_b finds nothing to resume: it starts from scratch.
        self._env(monkeypatch, root, every=0, resume=True)
        solver_b = MulticomponentLBM(cfg_b)
        solver_b.run(4)
        assert solver_b.step_count == 4
