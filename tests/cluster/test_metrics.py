import pytest

from repro.cluster.costmodel import PAPER_COST_MODEL
from repro.cluster.metrics import (
    normalized_efficiency,
    overhead_percent,
    sequential_time,
    slowdown_ratio,
    speedup,
)


class TestSequentialTime:
    def test_paper_sequential(self):
        t = sequential_time(400 * 200 * 20, 20_000, PAPER_COST_MODEL)
        assert t == pytest.approx(43.56 * 3600, rel=0.01)

    def test_zero_phases(self):
        assert sequential_time(100, 0, PAPER_COST_MODEL) == 0.0


class TestSpeedup:
    def test_basic(self):
        assert speedup(100.0, 5.0) == 20.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            speedup(0.0, 5.0)
        with pytest.raises(ValueError):
            speedup(5.0, 0.0)


class TestNormalizedEfficiency:
    def test_paper_formula(self):
        # speedup / (20 - 0.7 m)
        assert normalized_efficiency(16.0, 20, 1) == pytest.approx(16 / 19.3)
        assert normalized_efficiency(13.0, 20, 5) == pytest.approx(13 / 16.5)

    def test_dedicated(self):
        assert normalized_efficiency(19.0, 20, 0) == pytest.approx(0.95)

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_efficiency(10.0, 5, 6)


class TestSlowdown:
    def test_ratio(self):
        assert slowdown_ratio(120.0, 100.0) == pytest.approx(0.2)

    def test_overhead_percent(self):
        assert overhead_percent(717.0, 251.0) == pytest.approx(185.66, rel=0.01)
