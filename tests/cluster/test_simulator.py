import numpy as np
import pytest

from repro.cluster.machine import ClusterSpec, paper_cluster
from repro.cluster.simulator import PhaseSimulator, simulate
from repro.cluster.workload import (
    dedicated_traces,
    duty_cycle_trace,
    fixed_slow_traces,
    transient_spike_traces,
)
from repro.core.policies import RemappingConfig, make_policy


def run(policy_name, traces=None, phases=200, **spec_kw):
    spec = paper_cluster(traces, **spec_kw)
    return simulate(spec, make_policy(policy_name), phases), spec


class TestDedicated:
    def test_paper_dedicated_total(self):
        result, _ = run("no-remap", dedicated_traces(20), phases=600)
        assert result.total_time == pytest.approx(251.0, rel=0.02)

    def test_all_nodes_finish_together(self):
        result, _ = run("no-remap", dedicated_traces(20), phases=100)
        assert np.ptp(result.node_times) < 0.05 * result.total_time

    def test_near_linear_speedup(self):
        result, spec = run("no-remap", None, phases=300)
        s = result.speedup_vs_sequential(spec)
        assert 18.0 < s < 20.0

    def test_profile_mostly_computation(self):
        result, _ = run("no-remap", dedicated_traces(20), phases=100)
        p = result.profile
        assert p.computation.sum() > 10 * p.communication.sum()
        assert p.remapping.sum() == 0.0


class TestSlowNodeNoRemap:
    def test_paper_717(self):
        result, _ = run("no-remap", fixed_slow_traces(20, [9]), phases=600)
        assert result.total_time == pytest.approx(717.0, rel=0.03)

    def test_ripple_effect(self):
        """Within a few phases every node is dragged to the slow node's
        pace: all finish times converge despite only node 9 being slow."""
        result, _ = run("no-remap", fixed_slow_traces(20, [9]), phases=100)
        assert np.ptp(result.node_times) < 0.1 * result.total_time

    def test_far_nodes_wait_in_communication(self):
        result, _ = run("no-remap", fixed_slow_traces(20, [9]), phases=200)
        p = result.profile
        assert p.communication[0] > 0.5 * p.computation[0]
        # The slow node itself is compute-bound, not waiting.
        assert p.communication[9] < 0.2 * p.computation[9]


class TestRemappingSchemes:
    def test_filtered_beats_all_with_one_slow_node(self):
        totals = {}
        for name in ("no-remap", "conservative", "filtered"):
            result, _ = run(name, fixed_slow_traces(20, [9]), phases=600)
            totals[name] = result.total_time
        assert totals["filtered"] < totals["conservative"] < totals["no-remap"]

    def test_filtered_paper_ratio(self):
        result, _ = run("filtered", fixed_slow_traces(20, [9]), phases=600)
        # Paper: 313 s (+24.7% over dedicated). Accept the right ballpark.
        assert 290 < result.total_time < 345

    def test_filtered_evacuates_slow_node(self):
        result, _ = run("filtered", fixed_slow_traces(20, [9]), phases=600)
        assert result.final_plane_counts[9] <= 3

    def test_conservative_keeps_slow_node_loaded(self):
        result, _ = run("conservative", fixed_slow_traces(20, [9]), phases=600)
        assert result.final_plane_counts[9] >= 5

    def test_global_charges_collective(self):
        ded_global, _ = run("global", dedicated_traces(20), phases=200)
        ded_local, _ = run("filtered", dedicated_traces(20), phases=200)
        assert ded_global.total_time > ded_local.total_time

    def test_remapping_cost_is_low(self):
        """The paper notes lazy remapping keeps the remap cost small."""
        result, _ = run("filtered", fixed_slow_traces(20, [9]), phases=600)
        p = result.profile
        assert p.remapping.sum() < 0.1 * p.computation.sum()

    def test_planes_conserved(self):
        result, spec = run("filtered", fixed_slow_traces(20, [9, 3]), phases=300)
        assert sum(result.final_plane_counts) == spec.total_planes


class TestDutyCycleKnee:
    def test_overhead_convex(self):
        """Figure 3's shape: overhead grows faster past 60% disturbance."""
        times = {}
        for duty in (0.0, 0.3, 0.6, 1.0):
            traces = dedicated_traces(20)
            traces[9] = duty_cycle_trace(duty)
            result, _ = run("no-remap", traces, phases=300)
            times[duty] = result.total_time
        low_slope = (times[0.3] - times[0.0]) / 0.3
        high_slope = (times[1.0] - times[0.6]) / 0.4
        assert high_slope > 1.5 * low_slope


class TestTransientSpikes:
    def test_lazy_schemes_track_noremap(self):
        spec_args = dict(phases=100)
        base, _ = run("no-remap", transient_spike_traces(20, 2.0, seed=11), **spec_args)
        filt, _ = run("filtered", transient_spike_traces(20, 2.0, seed=11), **spec_args)
        assert filt.total_time < 1.15 * base.total_time

    def test_global_suffers(self):
        base, _ = run("no-remap", transient_spike_traces(20, 2.0, seed=11), phases=100)
        glob, _ = run("global", transient_spike_traces(20, 2.0, seed=11), phases=100)
        assert glob.total_time > 1.1 * base.total_time


class TestValidationAndAccounting:
    def test_phase_count_respected(self):
        result, _ = run("no-remap", None, phases=123)
        assert result.phases == 123

    def test_invalid_phases(self):
        spec = paper_cluster(None)
        sim = PhaseSimulator(spec, make_policy("no-remap"))
        with pytest.raises(ValueError):
            sim.run(0)

    def test_profile_accounts_total_time(self):
        """comp + comm + remap per node ~ that node's finish time."""
        result, _ = run("filtered", fixed_slow_traces(20, [9]), phases=200)
        totals = result.profile.totals()
        assert np.allclose(totals, result.node_times, rtol=0.02)

    def test_single_node_world(self):
        spec = ClusterSpec(n_nodes=1, total_planes=10, plane_points=100)
        result = simulate(spec, make_policy("no-remap"), 50)
        assert result.total_time > 0


class TestCheckpointCost:
    def test_checkpointing_charges_time(self):
        base = simulate(
            paper_cluster(dedicated_traces(20)), make_policy("no-remap"), 100
        )
        ck = simulate(
            paper_cluster(dedicated_traces(20)),
            make_policy("no-remap"),
            100,
            checkpoint_every=10,
            checkpoint_cost=0.5,
        )
        assert ck.total_time > base.total_time
        assert ck.profile.checkpoint.sum() > 0
        assert base.profile.checkpoint.sum() == 0.0

    def test_profile_still_accounts_total_time(self):
        result = simulate(
            paper_cluster(fixed_slow_traces(20, [9])),
            make_policy("filtered"),
            200,
            checkpoint_every=20,
            checkpoint_cost=0.2,
        )
        totals = result.profile.totals()
        assert np.allclose(totals, result.node_times, rtol=0.02)

    def test_validation(self):
        spec = paper_cluster(None)
        with pytest.raises(ValueError):
            PhaseSimulator(
                spec, make_policy("no-remap"), checkpoint_every=-1
            )
        with pytest.raises(ValueError):
            PhaseSimulator(
                spec, make_policy("no-remap"), checkpoint_cost=-0.1
            )
