import pytest

from repro.cluster.machine import ClusterSpec, paper_cluster
from repro.cluster.workload import dedicated_traces


class TestClusterSpec:
    def test_defaults_are_paper(self):
        spec = ClusterSpec()
        assert spec.n_nodes == 20
        assert spec.total_planes == 400
        assert spec.plane_points == 4000
        assert spec.total_points == 1_600_000  # 400 x 200 x 20
        assert spec.average_points == 80_000

    def test_traces_defaulted(self):
        spec = ClusterSpec(n_nodes=3)
        assert len(spec.traces) == 3
        assert spec.traces[0].availability(0.0) == 1.0

    def test_trace_count_checked(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=3, traces=dedicated_traces(2))

    def test_planes_at_least_nodes(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=10, total_planes=5)


class TestPaperCluster:
    def test_default_shape(self):
        spec = paper_cluster()
        assert spec.total_planes == 400
        assert spec.plane_points == 4000

    def test_node_count_override(self):
        spec = paper_cluster(None, n_nodes=10)
        assert spec.n_nodes == 10
        assert len(spec.traces) == 10
