"""Contended vs. merely-slow trace semantics."""

import pytest

from repro.cluster.trace import AvailabilityTrace
from repro.cluster.workload import fixed_slow_traces, heterogeneous_traces


class TestPenaltyAvailability:
    def test_contended_trace_exposes_real_availability(self):
        tr = AvailabilityTrace(tail=0.35, contended=True)
        assert tr.penalty_availability(5.0) == 0.35

    def test_non_contended_trace_hides_slowness(self):
        tr = AvailabilityTrace(tail=0.35, contended=False)
        assert tr.penalty_availability(5.0) == 1.0
        assert tr.availability(5.0) == 0.35  # compute still slow

    def test_default_is_contended(self):
        assert AvailabilityTrace(tail=0.5).contended


class TestWorkloadSemantics:
    def test_background_jobs_are_contended(self):
        traces = fixed_slow_traces(3, [1])
        assert traces[1].contended

    def test_heterogeneous_not_contended(self):
        traces = heterogeneous_traces([1.0, 0.5])
        assert not traces[1].contended

    def test_heterogeneous_speed_validation(self):
        with pytest.raises(ValueError):
            heterogeneous_traces([1.5])
        with pytest.raises(ValueError):
            heterogeneous_traces([0.0])
        with pytest.raises(ValueError):
            heterogeneous_traces([])


class TestSimulatorEffect:
    def test_no_penalties_for_dedicated_slow_hardware(self):
        """A merely-slow node drags via computation only: the no-remap run
        on a heterogeneous cluster is *faster* than the same availability
        under a contended background job (which also delays messages)."""
        from repro.cluster.machine import paper_cluster
        from repro.cluster.simulator import simulate
        from repro.core import make_policy

        het = paper_cluster(heterogeneous_traces([1.0] * 19 + [0.35]))
        contended = paper_cluster(fixed_slow_traces(20, [19]))
        t_het = simulate(het, make_policy("no-remap"), 200).total_time
        t_cont = simulate(contended, make_policy("no-remap"), 200).total_time
        assert t_het < t_cont
